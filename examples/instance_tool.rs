//! `instance_tool` — generate, solve and verify problem instances from the
//! command line, using the plain-text instance format of `owp_graph::io`.
//!
//! ```text
//! cargo run --release --example instance_tool -- gen gnp 30 0.2 3 42 > inst.txt
//! cargo run --release --example instance_tool -- solve < inst.txt
//! cargo run --release --example instance_tool -- verify < inst.txt
//! ```
//!
//! Subcommands:
//! * `gen <gnp|ba|ws|regular> <n> <param> <b> <seed>` — emit an instance
//!   (graph + random preferences + uniform quota `b`) to stdout;
//! * `solve` — read an instance from stdin, run LIC and the distributed LID,
//!   print both reports (they must agree);
//! * `verify` — read an instance, run LIC, and machine-check the Lemma 3/4
//!   certificates.

use owp_graph::io::{read_instance, write_instance, Instance};
use owp_graph::{PreferenceTable, Quotas};
use owp_matching::lic::{lic_with_order, SelectionPolicy};
use owp_matching::{verify, MatchingReport, Problem};
use owp_core::run_lid;
use owp_simnet::{MessageKind, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Read;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: instance_tool gen <gnp|ba|ws|regular> <n> <param> <b> <seed>");
    eprintln!("       instance_tool solve   (instance on stdin)");
    eprintln!("       instance_tool verify  (instance on stdin)");
    std::process::exit(2);
}

fn read_problem_from_stdin() -> Problem {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
    let inst = read_instance(&text).unwrap_or_else(|e| die(&format!("parse failure: {e}")));
    let prefs = inst
        .preferences
        .unwrap_or_else(|| die("instance has no preference lists"));
    let quotas = inst
        .quotas
        .unwrap_or_else(|| die("instance has no quotas"));
    Problem::new(inst.graph, prefs, quotas)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            if args.len() != 6 {
                die("gen needs 5 arguments");
            }
            let kind = args[1].as_str();
            let n: usize = args[2].parse().unwrap_or_else(|_| die("bad n"));
            let param: f64 = args[3].parse().unwrap_or_else(|_| die("bad param"));
            let b: u32 = args[4].parse().unwrap_or_else(|_| die("bad b"));
            let seed: u64 = args[5].parse().unwrap_or_else(|_| die("bad seed"));
            let mut rng = StdRng::seed_from_u64(seed);
            let g = match kind {
                "gnp" => owp_graph::generators::erdos_renyi(n, param, &mut rng),
                "ba" => owp_graph::generators::barabasi_albert(n, param as usize, &mut rng),
                "ws" => owp_graph::generators::watts_strogatz(n, param as usize, 0.2, &mut rng),
                "regular" => owp_graph::generators::random_regular(n, param as usize, &mut rng),
                _ => die("unknown topology kind"),
            };
            let prefs = PreferenceTable::random(&g, &mut rng);
            let quotas = Quotas::uniform(&g, b);
            print!(
                "{}",
                write_instance(&Instance {
                    graph: g,
                    preferences: Some(prefs),
                    quotas: Some(quotas),
                })
            );
        }
        Some("solve") => {
            let p = read_problem_from_stdin();
            let (m_lic, _) = lic_with_order(&p, SelectionPolicy::InOrder);
            let lid = run_lid(&p, SimConfig::with_seed(0));
            assert!(lid.terminated, "LID failed to terminate");
            assert!(
                lid.matching.same_edges(&m_lic),
                "LID diverged from LIC — this would falsify Lemma 6"
            );
            let report = MatchingReport::compute(&p, &m_lic);
            println!(
                "nodes {}  edges {}  matched {}",
                p.node_count(),
                p.edge_count(),
                report.edges
            );
            println!("total weight        {:.4}", report.total_weight);
            println!("total satisfaction  {:.4}", report.satisfaction_total);
            println!("mean satisfaction   {:.4}", report.satisfaction_mean);
            println!("min  satisfaction   {:.4}", report.satisfaction_min);
            println!("Jain fairness       {:.4}", report.jain_index);
            println!(
                "LID messages        {} PROP + {} REJ",
                lid.stats.sent_of(MessageKind::Prop),
                lid.stats.sent_of(MessageKind::Rej)
            );
            for i in p.nodes() {
                let conns: Vec<String> = m_lic
                    .connections(i)
                    .iter()
                    .map(|j| j.to_string())
                    .collect();
                println!("match {i}: {}", conns.join(" "));
            }
        }
        Some("verify") => {
            let p = read_problem_from_stdin();
            verify::check_weights(&p).unwrap_or_else(|e| die(&e));
            let (m, order) = lic_with_order(&p, SelectionPolicy::InOrder);
            verify::check_valid(&p, &m).unwrap_or_else(|e| die(&e));
            verify::check_maximal(&p, &m).unwrap_or_else(|e| die(&e));
            verify::check_selection_order(&p, &order).unwrap_or_else(|e| die(&e));
            verify::check_greedy_certificate(&p, &m).unwrap_or_else(|e| die(&e));
            println!(
                "OK: {} nodes, {} edges, {} matched — eq. 9 weights, validity, \
                 maximality, Lemma 3 history and Lemma 4 certificate all hold",
                p.node_count(),
                p.edge_count(),
                m.size()
            );
        }
        _ => die("missing subcommand"),
    }
}
