//! Quickstart: build an overlay with preferences in ~20 lines.
//!
//! A hundred peers, each with an arbitrary private taste, a quota of 4
//! connections, running the distributed LID protocol over an asynchronous
//! network. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use overlays_preferences::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The potential-connection graph: who *could* talk to whom.
    let graph = owp_graph::generators::erdos_renyi(100, 0.12, &mut StdRng::seed_from_u64(42));
    println!(
        "overlay universe: {} peers, {} potential connections",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Every peer ranks its neighbours with a private metric and wants at
    //    most 4 connections.
    let network = OverlayBuilder::new(graph)
        .default_metric(RandomTaste { seed: 7 })
        .uniform_quota(4)
        .build();

    // 3. Run the distributed protocol under exponential link latencies.
    let overlay = network.run(
        SimConfig::with_seed(1).latency(LatencyModel::Exponential { mean: 10.0 }),
    );

    // 4. Inspect the result.
    assert!(overlay.lid.terminated, "LID always terminates (Lemma 5)");
    println!("\nprotocol finished at simulated time {}", overlay.lid.end_time);
    println!(
        "messages: {} PROP, {} REJ ({:.2} per peer)",
        overlay.stats().sent_of(MessageKind::Prop),
        overlay.stats().sent_of(MessageKind::Rej),
        overlay.stats().sent_per_node(network.problem.node_count())
    );
    println!(
        "connections established: {} (quota sum / 2 = {})",
        overlay.matching().size(),
        network.problem.quotas.total() / 2
    );
    println!(
        "mean satisfaction: {:.4}   min: {:.4}   fairness (Jain): {:.4}",
        overlay.report.satisfaction_mean,
        overlay.report.satisfaction_min,
        overlay.report.jain_index
    );
    println!(
        "Theorem 3 guarantee: total satisfaction ≥ {:.3} × optimal",
        overlay.guaranteed_fraction
    );

    // 5. Who did peer 0 end up connected to, and how does it feel about it?
    let me = NodeId(0);
    let mine = overlay.connections(me);
    println!("\npeer 0 connections: {mine:?}");
    for &j in mine {
        let rank = network.problem.prefs.rank(me, j).unwrap();
        println!("  peer {j}: my preference rank {rank} (0 = favourite)");
    }

    // 6. Privacy: what did everyone disclose to get here?
    let disclosure = DisclosureReport::compute(&network.problem);
    println!(
        "\ndisclosed {} scalars total ({} per peer on average) — {}x less \
         than shipping full preference lists",
        disclosure.scalars_disclosed,
        disclosure.per_node_avg,
        disclosure.saving_factor().round()
    );
}
