//! Churn: peers leaving and joining, with greedy local repair.
//!
//! The paper leaves dynamicity as future work and conjectures the same
//! greedy strategy handles it. This example exercises that extension: build
//! an overlay, evict 15% of the peers, repair locally, let them rejoin,
//! repair again — and track how much total satisfaction each phase recovers
//! compared with rebuilding the whole overlay from scratch.
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use overlays_preferences::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 400;
    let graph = owp_graph::generators::barabasi_albert(n, 3, &mut rng);

    let network = OverlayBuilder::new(graph)
        .default_metric(RandomTaste { seed: 5 })
        .uniform_quota(4)
        .build();
    let p = &network.problem;

    // Fresh overlay via the distributed protocol.
    let overlay = network.run(SimConfig::with_seed(1));
    assert!(overlay.lid.terminated);
    let initial_sat = overlay.report.satisfaction_total;
    println!("initial overlay: total satisfaction {initial_sat:.2} over {n} peers");

    let mut sim = ChurnSim::new(p, overlay.lid.matching);

    // 15% of peers leave at once.
    let mut peers: Vec<NodeId> = p.nodes().collect();
    peers.shuffle(&mut rng);
    let leavers: Vec<NodeId> = peers[..n * 15 / 100].to_vec();
    for &i in &leavers {
        sim.leave(i);
    }
    let after_leave = sim.active_satisfaction();
    println!(
        "\n{} peers left → active satisfaction {:.2} ({:.1}% of pre-churn level)",
        leavers.len(),
        after_leave,
        100.0 * after_leave / initial_sat
    );

    // Local repair: survivors with freed quota re-match greedily.
    let stats = sim.repair();
    let after_repair = sim.active_satisfaction();
    println!(
        "local repair added {} links → active satisfaction {:.2} ({:.1}%)",
        stats.edges_added,
        after_repair,
        100.0 * after_repair / initial_sat
    );

    // The leavers come back.
    for &i in &leavers {
        sim.join(i);
    }
    let stats = sim.repair();
    let after_rejoin = sim.active_satisfaction();
    println!(
        "rejoin + repair added {} links → total satisfaction {:.2} ({:.1}%)",
        stats.edges_added,
        after_rejoin,
        100.0 * after_rejoin / initial_sat
    );

    // Reference: a full rebuild from scratch (what a non-incremental system
    // would do — and what the repair result should stay close to).
    let rebuilt = network.run(SimConfig::with_seed(2));
    println!(
        "\nfull rebuild would reach {:.2} — local repair kept {:.1}% of that \
         without touching surviving links",
        rebuilt.report.satisfaction_total,
        100.0 * after_rejoin / rebuilt.report.satisfaction_total
    );
}
