//! Churn: peers leaving and joining under continuous certified repair.
//!
//! The paper leaves dynamicity as future work and conjectures the same
//! greedy strategy handles it. This example exercises the engine that
//! makes the conjecture concrete: build an overlay, evict 15% of the
//! peers, let them rejoin — after *every* event the engine has already
//! repaired the matching back to the exact locally-heaviest matching of
//! the current population (`certify()` checks it against a from-scratch
//! run), touching only a bounded dirty region per event.
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use overlays_preferences::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 400;
    let graph = owp_graph::generators::barabasi_albert(n, 3, &mut rng);

    let network = OverlayBuilder::new(graph)
        .default_metric(RandomTaste { seed: 5 })
        .uniform_quota(4)
        .build();
    let p = &network.problem;

    // Fresh overlay via the distributed protocol.
    let overlay = network.run(SimConfig::with_seed(1));
    assert!(overlay.lid.terminated);
    let initial_sat = overlay.report.satisfaction_total;
    println!("initial overlay: total satisfaction {initial_sat:.2} over {n} peers");

    // The engine starts from the same (canonical) matching LID converged
    // to, and keeps it exact through every membership change.
    let mut sim = ChurnSim::new(p);

    // 15% of peers leave at once.
    let mut peers: Vec<NodeId> = p.nodes().collect();
    peers.shuffle(&mut rng);
    let leavers: Vec<NodeId> = peers[..n * 15 / 100].to_vec();
    let mut torn = 0usize;
    let mut rebuilt = 0usize;
    let mut dirty = 0usize;
    for &i in &leavers {
        let report = sim.leave(i).expect("active peer leaves");
        torn += report.edges_removed.len();
        rebuilt += report.edges_added.len();
        dirty += report.evaluated;
    }
    let after_leave = sim.active_satisfaction();
    println!(
        "\n{} peers left → {torn} links dissolved, {rebuilt} replacement links formed\n\
         repair examined {dirty} edges in total ({:.1} per event, of {} in the overlay)\n\
         active satisfaction {after_leave:.2} ({:.1}% of pre-churn level)",
        leavers.len(),
        dirty as f64 / leavers.len() as f64,
        p.edge_count(),
        100.0 * after_leave / initial_sat
    );
    sim.certify()
        .expect("matching is bit-identical to a from-scratch run on the survivors");
    println!("certified: survivors hold exactly the from-scratch locally-heaviest matching");

    // The leavers come back; the engine reconnects them exactly.
    let mut regained = 0usize;
    for &i in &leavers {
        regained += sim.join(i).expect("peer rejoins").edges_added.len();
    }
    let after_rejoin = sim.active_satisfaction();
    println!(
        "\nrejoin formed {regained} links → total satisfaction {after_rejoin:.2} ({:.1}%)",
        100.0 * after_rejoin / initial_sat
    );
    sim.certify().expect("round-trip returns to the canonical matching");
    println!(
        "certified: after rejoin the overlay is back to the exact pre-churn matching \
         — no rebuild, {} epochs of bounded repair",
        sim.engine().epoch().0
    );
}
