//! Content-sharing overlay: peers with topical interests.
//!
//! The scenario from the paper's introduction: a file-sharing / content
//! network where peers want neighbours with *similar interests* (so queries
//! hit quickly) but also value *transaction history* (peers that delivered
//! before). Each peer combines the two with its own weighting — a fully
//! heterogeneous, private-metric deployment.
//!
//! ```text
//! cargo run --release --example content_sharing
//! ```

use overlays_preferences::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const TOPICS: usize = 8;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let n = 200;

    // Potential connections: a scale-free overlay (preferential attachment),
    // the usual shape of unstructured P2P networks.
    let graph = owp_graph::generators::barabasi_albert(n, 4, &mut rng);

    // Each peer is interested in a random mix of topics...
    let interests: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            let mut v: Vec<f64> = (0..TOPICS).map(|_| rng.gen_range(0.0..1.0)).collect();
            // Sharpen: each peer has 2 dominant topics.
            for _ in 0..2 {
                let k = rng.gen_range(0..TOPICS);
                v[k] += 2.0;
            }
            v
        })
        .collect();

    // ...and some past-transaction goodwill toward random peers.
    let mut history = TransactionHistory::new();
    for _ in 0..n * 3 {
        let a = NodeId(rng.gen_range(0..n as u32));
        let b = NodeId(rng.gen_range(0..n as u32));
        if a != b {
            history.record(a, b, rng.gen_range(0.5..2.0));
        }
    }
    let history = Arc::new(history);
    let similarity = Arc::new(InterestSimilarity { interests });

    // Every peer blends the two metrics with a private weighting.
    let mut builder = OverlayBuilder::new(graph);
    for i in 0..n {
        let alpha = rng.gen_range(0.3..0.9); // how much this peer trusts history
        builder = builder.metric_for(
            NodeId(i as u32),
            Composite::new(vec![
                (1.0 - alpha, similarity.clone() as Arc<dyn SuitabilityMetric + Send + Sync>),
                (alpha, history.clone() as Arc<dyn SuitabilityMetric + Send + Sync>),
            ]),
        );
    }
    let network = builder.uniform_quota(5).build();

    let overlay = network.run(
        SimConfig::with_seed(3).latency(LatencyModel::LogNormal { mu: 2.5, sigma: 0.7 }),
    );
    assert!(overlay.lid.terminated);

    println!("content-sharing overlay over {n} peers");
    println!(
        "  established {} connections ({:.1}% of quota capacity)",
        overlay.matching().size(),
        200.0 * overlay.matching().size() as f64 / network.problem.quotas.total() as f64
    );
    println!(
        "  mean satisfaction {:.4}, min {:.4}, Jain fairness {:.4}",
        overlay.report.satisfaction_mean,
        overlay.report.satisfaction_min,
        overlay.report.jain_index
    );
    println!(
        "  messages: {} total ({:.1}/peer), finished at t = {}",
        overlay.stats().sent,
        overlay.stats().sent_per_node(n),
        overlay.lid.end_time
    );

    // Are peers actually connected to like-minded peers? Compare the mean
    // preference rank of established connections against the random
    // expectation (half the list).
    let p = &network.problem;
    let mut rank_sum = 0.0;
    let mut half_sum = 0.0;
    let mut count = 0;
    for i in p.nodes() {
        for &j in overlay.connections(i) {
            rank_sum += p.prefs.rank(i, j).unwrap() as f64;
            half_sum += (p.prefs.list_len(i) as f64 - 1.0) / 2.0;
            count += 1;
        }
    }
    if count > 0 {
        println!(
            "  mean connection rank {:.2} vs {:.2} for random pairing \
             (lower = closer to each peer's favourites)",
            rank_sum / count as f64,
            half_sum / count as f64
        );
    }

    // Theorem 3's floor for this deployment.
    println!(
        "  guaranteed ≥ {:.3} of the optimal total satisfaction (b_max = {})",
        overlay.guaranteed_fraction,
        p.bmax()
    );
}
