//! Proximity overlay: latency-aware neighbour selection.
//!
//! Peers embedded in a 2-D latency space (network coordinates) prefer
//! *nearby* neighbours. We build the overlay with LID and then check the
//! outcome against what the metric wanted: how much farther are my
//! connections than my ideal (closest) neighbours?
//!
//! ```text
//! cargo run --release --example proximity_overlay
//! ```

use overlays_preferences::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 300;

    // Peers scattered in the unit square; potential connections limited to
    // peers within radius 0.22 (e.g. a RTT budget).
    let gg = owp_graph::generators::random_geometric(n, 0.22, &mut rng);
    let positions = gg.positions.clone();
    let graph = gg.graph;
    println!(
        "proximity universe: {} peers, {} candidate links, avg degree {:.1}",
        n,
        graph.edge_count(),
        graph.avg_degree()
    );

    let network = OverlayBuilder::new(graph)
        .default_metric(DistanceMetric {
            positions: positions.clone(),
        })
        .uniform_quota(4)
        .build();

    // Latency proportional-ish to distance: uniform 1..50 ticks.
    let overlay = network.run(
        SimConfig::with_seed(8).latency(LatencyModel::Uniform { lo: 1, hi: 50 }),
    );
    assert!(overlay.lid.terminated);

    let p = &network.problem;
    let dist = |a: NodeId, b: NodeId| -> f64 {
        let (x1, y1) = positions[a.index()];
        let (x2, y2) = positions[b.index()];
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    };

    // Stretch: mean connection distance vs mean distance to the same number
    // of *closest* neighbours (the per-node ideal, usually unattainable for
    // everyone at once because closeness is contended).
    let mut got = 0.0;
    let mut ideal = 0.0;
    let mut links = 0usize;
    for i in p.nodes() {
        let conns = overlay.connections(i);
        if conns.is_empty() {
            continue;
        }
        for &j in conns {
            got += dist(i, j);
            links += 1;
        }
        for &j in p.prefs.list(i).iter().take(conns.len()) {
            ideal += dist(i, j);
        }
    }
    println!(
        "  connections: {} — mean link distance {:.4}, per-node ideal {:.4} \
         (stretch {:.2}x)",
        overlay.matching().size(),
        got / links as f64,
        ideal / links as f64,
        got / ideal.max(f64::MIN_POSITIVE)
    );
    println!(
        "  mean satisfaction {:.4}  (Theorem 3 floor: {:.3} of optimal)",
        overlay.report.satisfaction_mean, overlay.guaranteed_fraction
    );
    println!(
        "  protocol: {} msgs, finished t = {}",
        overlay.stats().sent,
        overlay.lid.end_time
    );

    // Sanity: the overlay must connect peers that were mutually desirable —
    // show the three longest links (contention forces some long edges).
    let mut edges: Vec<(f64, NodeId, NodeId)> = overlay
        .matching()
        .edge_ids()
        .into_iter()
        .map(|e| {
            let (u, v) = p.graph.endpoints(e);
            (dist(u, v), u, v)
        })
        .collect();
    edges.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("  three longest accepted links:");
    for (d, u, v) in edges.into_iter().take(3) {
        println!(
            "    {u} ↔ {v}: distance {:.3} (ranks {} and {})",
            d,
            p.prefs.rank(u, v).unwrap(),
            p.prefs.rank(v, u).unwrap()
        );
    }
}
