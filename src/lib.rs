//! # overlays-preferences
//!
//! Full reproduction of Georgiadis & Papatriantafilou, *Overlays with
//! preferences: Approximation algorithms for matching with preference
//! lists* (IPDPS 2010; Chalmers TR 09-06).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`owp_graph`] — graph substrate (storage, generators, preference
//!   lists, quotas, properties, I/O);
//! * [`owp_simnet`] — discrete-event message-passing simulator (the
//!   distributed substrate LID runs on);
//! * [`owp_matching`] — satisfaction metric, eq. 9 weights, LIC, baselines,
//!   exact solvers, stability machinery, verification, bounds;
//! * [`owp_engine`] — the event-driven dynamic engine: certified bounded
//!   repair of the locally-heaviest matching under joins, leaves, edge
//!   churn and preference/quota updates, plus the always-on flight
//!   recorder and divergence forensics (auto-shrunk reproducers,
//!   post-mortem bundles);
//! * [`owp_core`] — the LID protocol and the overlay-construction API;
//! * [`owp_metrics`] — lock-free metrics registry (counters, gauges, log₂
//!   histograms), Prometheus/JSON exporters, and the online invariant
//!   auditor that scores live runs against the paper's guarantees;
//! * [`owp_matchd`] — the durable matchmaking daemon: TCP event ingest
//!   with adaptive batching, an append-only CRC-framed WAL plus periodic
//!   snapshots, and crash recovery that must pass `certify()` before the
//!   daemon serves (`matchd` binary; `matchd_bench` load driver;
//!   `owp-inspect wal` offline auditor);
//! * [`owp_telemetry`] — structured tracing (event log, convergence
//!   series, causal span records) and the happens-before DAG analysis
//!   behind the empirical Lemma 5 certificate.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//! Runnable examples live in `examples/`; start with
//! `cargo run --example quickstart`.

#![forbid(unsafe_code)]

pub use owp_core;
pub use owp_engine;
pub use owp_graph;
pub use owp_matchd;
pub use owp_matching;
pub use owp_metrics;
pub use owp_simnet;
pub use owp_telemetry;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use owp_core::metric::{
        Composite, DistanceMetric, InterestSimilarity, RandomTaste, ResourceCapacity,
        SuitabilityMetric, TransactionHistory,
    };
    pub use owp_core::overlay::{Overlay, OverlayBuilder, OverlayNetwork};
    pub use owp_core::{
        replay_lid_trace, run_lid, run_lid_causal, run_lid_sync, run_lid_sync_series,
        run_lid_traced, ChurnSim, DisclosureReport, LidResult,
    };
    pub use owp_engine::{
        DeltaReport, DynamicProblem, Engine, EngineBuilder, EngineError, EngineEvent, Epoch,
        ForensicBundle, InjectedFault, Partitioner, RangePartitioner, ShardMap, ShrinkResult,
    };
    pub use owp_graph::{Graph, GraphBuilder, NodeId, PreferenceTable, Quotas};
    pub use owp_matchd::{Matchd, MatchdClient, MatchdConfig, SubmitOutcome};
    pub use owp_matching::{
        lic, BMatching, MatchingReport, Problem, SelectionPolicy,
    };
    pub use owp_metrics::{
        AuditViolation, Auditor, Counter, Gauge, Histogram, MetricsRecorder, MetricsRegistry,
        MetricsSnapshot,
    };
    pub use owp_simnet::{EventLog, FaultPlan, LatencyModel, MessageKind, SimConfig};
    pub use owp_telemetry::{CausalDag, CriticalPath, SpanId};
}
