//! Offline vendored `serde_derive`: each derive emits an *empty* impl of the
//! corresponding marker trait from the local `serde` stand-in.
//!
//! Parsing is done on the raw token stream (syn/quote are unreachable
//! offline): skip attributes and visibility, find the `struct`/`enum`/`union`
//! keyword, take the following identifier as the type name. Generic types are
//! rejected with a clear error — no type in this workspace derives serde with
//! generics, and supporting them without syn is not worth the complexity.

use proc_macro::{TokenStream, TokenTree};

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Extracts the type name from a `struct`/`enum`/`union` item, panicking on
/// generic parameters (unsupported by this offline stand-in).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => panic!("expected type name after `{kw}`, found {other:?}"),
                    };
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            panic!(
                                "offline serde_derive stand-in does not support generic type \
                                 `{name}`; write the marker impls by hand"
                            );
                        }
                    }
                    return name;
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            // Outer attributes arrive as `#` punct + bracket group; skip both.
            TokenTree::Punct(_) | TokenTree::Group(_) | TokenTree::Literal(_) => {}
        }
    }
    panic!("derive input contains no struct/enum/union")
}
