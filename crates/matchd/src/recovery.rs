//! Crash recovery: snapshot restore + WAL replay + certification.
//!
//! The recovery invariant (DESIGN.md §13): after an unclean stop, the
//! engine rebuilt from the latest snapshot plus the WAL suffix is
//! **certified** — its matching is bit-identical to a from-scratch
//! `lic()` over the recovered instance — before the daemon accepts a
//! single connection. A daemon that cannot prove this refuses to start.

use crate::snapshot::SnapshotStore;
use crate::wal::{FsyncPolicy, Wal};
use owp_engine::{Engine, Epoch};
use owp_matching::Problem;
use std::path::Path;

/// File name of the WAL inside a matchd data directory.
pub const WAL_FILE: &str = "matchd.wal";

/// The outcome of a successful recovery: a certified engine plus the
/// open WAL, positioned for append.
pub struct Recovery {
    /// The recovered, certified engine.
    pub engine: Engine,
    /// The WAL, torn tail already truncated.
    pub wal: Wal,
    /// Epoch the snapshot provided (0 when starting from the universe).
    pub snapshot_epoch: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// Bytes of torn tail the WAL open truncated (0 on a clean stop).
    pub torn_bytes: u64,
}

/// Rebuilds the engine state of `data_dir`, or starts fresh from
/// `universe` when the directory holds no snapshot and no WAL. Fails —
/// and the daemon must not serve — if the WAL cannot replay or the
/// recovered engine fails [`Engine::certify`].
pub fn recover(data_dir: &Path, universe: &Problem, policy: FsyncPolicy) -> Result<Recovery, String> {
    std::fs::create_dir_all(data_dir)
        .map_err(|e| format!("cannot create data dir {}: {e}", data_dir.display()))?;
    let store = SnapshotStore::new(data_dir);
    let (mut engine, snapshot_epoch) = match store.load()? {
        Some(snap) => {
            let engine = Engine::from_snapshot(&snap.origin, Epoch(snap.epoch))?;
            (engine, snap.epoch)
        }
        None => (Engine::new(universe.clone()), 0),
    };
    let (wal, records, summary) = Wal::open(&data_dir.join(WAL_FILE), policy)
        .map_err(|e| format!("cannot open WAL: {e}"))?;
    let mut replayed = 0usize;
    for rec in &records {
        if rec.epoch <= snapshot_epoch {
            continue; // already inside the snapshot
        }
        engine
            .apply_batch(&rec.events)
            .map_err(|e| format!("WAL record at epoch {} no longer validates: {e}", rec.epoch))?;
        if engine.epoch().0 != rec.epoch {
            return Err(format!(
                "WAL epoch discontinuity: replay reached {} but the record says {}",
                engine.epoch().0,
                rec.epoch
            ));
        }
        replayed += 1;
    }
    engine.certify().map_err(|e| format!("recovered engine failed certification: {e}"))?;
    Ok(Recovery { engine, wal, snapshot_epoch, replayed, torn_bytes: summary.torn_bytes })
}
