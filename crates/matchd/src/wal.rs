//! Append-only `EngineEvent` write-ahead log (DESIGN.md §13).
//!
//! One record per *committed* batch, framed exactly like a wire frame —
//! `[u32 len][u32 crc32][payload]` — with payload
//! `[u64 epoch][u32 count][events…]` in the codec's binary event format.
//! The daemon appends **after** the engine validates and applies a batch
//! and **before** acknowledging it, so:
//!
//! * every record replays cleanly (validation already passed), and
//! * an acknowledged batch is in the log (durable up to the fsync
//!   policy), while a batch lost to a crash was never acknowledged.
//!
//! On open the log is scanned front to back; the first bad record —
//! truncated header, truncated payload, oversized length, CRC mismatch,
//! or undecodable events — marks the *torn tail* left by a crash
//! mid-append, and everything from that offset on is truncated away.
//! [`scan`] is the read-only version of the same walk (used by
//! `owp-inspect wal`), reporting what open would truncate without
//! touching the file.

use crate::codec::{self, CodecError, Cursor, FRAME_HEADER, MAX_FRAME};
use owp_engine::EngineEvent;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// When the WAL file is flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record — maximum durability, the ack
    /// implies the record is on disk.
    Always,
    /// `fsync` only when a snapshot is taken (and on graceful shutdown).
    /// An OS crash can lose the un-synced suffix; a process crash cannot.
    OnSnapshot,
    /// Never `fsync` explicitly (tests/benchmarks).
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always` | `snapshot` | `never`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "snapshot" => Ok(FsyncPolicy::OnSnapshot),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy {other:?} (always|snapshot|never)")),
        }
    }
}

/// One decoded WAL record: the batch applied at `epoch`.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Engine epoch the batch produced.
    pub epoch: u64,
    /// The batch, in application order.
    pub events: Vec<EngineEvent>,
}

/// What a front-to-back scan found (the `owp-inspect wal` summary).
#[derive(Clone, Debug, Default)]
pub struct WalSummary {
    /// CRC-valid, decodable records.
    pub records: u64,
    /// Bytes of valid records including their 8-byte headers.
    pub valid_bytes: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Epoch of the first valid record.
    pub first_epoch: Option<u64>,
    /// Epoch of the last valid record.
    pub last_epoch: Option<u64>,
    /// Bytes after the last valid record (0 = clean).
    pub torn_bytes: u64,
    /// Why the tail is torn, when it is.
    pub torn_reason: Option<String>,
}

impl WalSummary {
    /// `true` iff the file is wholly made of valid records.
    pub fn is_clean(&self) -> bool {
        self.torn_bytes == 0
    }
}

fn record_payload(epoch: u64, events: &[EngineEvent]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + events.len() * 9);
    codec::put_u64(&mut payload, epoch);
    codec::put_u32(&mut payload, events.len() as u32);
    for ev in events {
        codec::put_event(&mut payload, ev);
    }
    payload
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut cur = Cursor::new(payload);
    let epoch = cur.u64("record epoch")?;
    let events = codec::get_events(&mut cur)?;
    cur.done()?;
    Ok(WalRecord { epoch, events })
}

/// Walks `bytes` front to back, returning every valid record plus the
/// summary. Stops at the first bad record; resynchronization past a
/// corrupt region is impossible without record markers, so — as in any
/// length-prefixed log — corruption truncates the suffix.
fn scan_bytes(bytes: &[u8]) -> (WalSummary, Vec<WalRecord>) {
    let mut summary = WalSummary { file_bytes: bytes.len() as u64, ..WalSummary::default() };
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let left = bytes.len() - off;
        if left < FRAME_HEADER as usize {
            summary.torn_reason = Some(format!("{left}-byte partial record header"));
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            summary.torn_reason = Some(format!("oversized record length {len}"));
            break;
        }
        let body_end = off + FRAME_HEADER as usize + len as usize;
        if body_end > bytes.len() {
            summary.torn_reason = Some(format!(
                "record declares {len} payload bytes but only {} remain",
                left - FRAME_HEADER as usize
            ));
            break;
        }
        let payload = &bytes[off + FRAME_HEADER as usize..body_end];
        let got = codec::crc32(payload);
        if got != crc {
            summary.torn_reason =
                Some(format!("CRC mismatch (header {crc:#010x}, payload {got:#010x})"));
            break;
        }
        match decode_record(payload) {
            Ok(rec) => {
                if summary.first_epoch.is_none() {
                    summary.first_epoch = Some(rec.epoch);
                }
                summary.last_epoch = Some(rec.epoch);
                summary.records += 1;
                records.push(rec);
                off = body_end;
                summary.valid_bytes = off as u64;
            }
            Err(e) => {
                summary.torn_reason = Some(format!("undecodable record payload: {e}"));
                break;
            }
        }
    }
    summary.torn_bytes = summary.file_bytes - summary.valid_bytes;
    (summary, records)
}

/// Read-only scan of a WAL file: records + summary, file untouched.
pub fn scan(path: &Path) -> std::io::Result<(WalSummary, Vec<WalRecord>)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan_bytes(&bytes))
}

/// The open, appendable write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
    policy: FsyncPolicy,
}

impl Wal {
    /// Opens (or creates) the log at `path`, truncating any torn tail so
    /// the file ends at the last valid record. Returns the log positioned
    /// for append plus everything it already held — the recovery replay
    /// input.
    pub fn open(
        path: &Path,
        policy: FsyncPolicy,
    ) -> std::io::Result<(Wal, Vec<WalRecord>, WalSummary)> {
        let mut bytes = Vec::new();
        if path.exists() {
            File::open(path)?.read_to_end(&mut bytes)?;
        }
        let (summary, records) = scan_bytes(&bytes);
        let file = OpenOptions::new().create(true).read(true).write(true).open(path)?;
        if summary.torn_bytes > 0 {
            file.set_len(summary.valid_bytes)?;
            file.sync_data()?;
        }
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            bytes: summary.valid_bytes,
            records: summary.records,
            policy,
        };
        Ok((wal, records, summary))
    }

    /// Appends one committed batch. Syncs iff the policy is
    /// [`FsyncPolicy::Always`].
    pub fn append(&mut self, epoch: u64, events: &[EngineEvent]) -> std::io::Result<()> {
        use std::io::Seek;
        let payload = record_payload(epoch, events);
        let mut rec = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
        codec::put_u32(&mut rec, payload.len() as u32);
        codec::put_u32(&mut rec, codec::crc32(&payload));
        rec.extend_from_slice(&payload);
        self.file.seek(std::io::SeekFrom::Start(self.bytes))?;
        self.file.write_all(&rec)?;
        self.bytes += rec.len() as u64;
        self.records += 1;
        if self.policy == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Forces the log to stable storage regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.policy != FsyncPolicy::Never {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Empties the log — called right after a snapshot durably covers
    /// every record (recovery skips records at or below the snapshot
    /// epoch anyway, so a crash between snapshot and reset is safe).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.bytes = 0;
        self.records = 0;
        if self.policy != FsyncPolicy::Never {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Current log size in bytes (headers included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::NodeId;

    fn batch(i: u32) -> Vec<EngineEvent> {
        vec![
            EngineEvent::NodeLeave { node: NodeId(i) },
            EngineEvent::NodeJoin { node: NodeId(i) },
        ]
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("owp-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("matchd.wal")
    }

    #[test]
    fn append_reopen_replays_everything() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, records, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
            assert!(records.is_empty());
            for e in 1..=5u64 {
                wal.append(e, &batch(e as u32)).expect("append");
            }
        }
        let (wal, records, summary) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(records.len(), 5);
        assert_eq!(summary.first_epoch, Some(1));
        assert_eq!(summary.last_epoch, Some(5));
        assert!(summary.is_clean());
        assert_eq!(wal.records(), 5);
        assert_eq!(records[2], WalRecord { epoch: 3, events: batch(3) });
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
            wal.append(1, &batch(1)).expect("append");
            wal.append(2, &batch(2)).expect("append");
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).expect("append mode");
        f.write_all(&[0x55, 0x00, 0x00, 0x00, 0xde, 0xad]).expect("garbage");
        drop(f);
        let before = std::fs::metadata(&path).expect("meta").len();
        let (summary, records) = scan(&path).expect("scan");
        assert_eq!(records.len(), 2);
        assert_eq!(summary.torn_bytes, 6);
        assert!(summary.torn_reason.as_deref().unwrap().contains("partial record header"));
        // Open truncates; the file shrinks back and a fresh scan is clean.
        let (_, records, open_summary) = Wal::open(&path, FsyncPolicy::Never).expect("open");
        assert_eq!(records.len(), 2);
        assert_eq!(open_summary.torn_bytes, 6);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), before - 6);
        let (clean, _) = scan(&path).expect("rescan");
        assert!(clean.is_clean());
    }

    #[test]
    fn bit_flip_truncates_from_flip_point() {
        let path = tmp("flip");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
            for e in 1..=3u64 {
                wal.append(e, &batch(e as u32)).expect("append");
            }
        }
        let mut bytes = std::fs::read(&path).expect("read");
        let rec_len = bytes.len() / 3;
        bytes[rec_len + rec_len / 2] ^= 0x01; // inside record 2's payload
        std::fs::write(&path, &bytes).expect("write");
        let (summary, records) = scan(&path).expect("scan");
        assert_eq!(records.len(), 1);
        assert!(summary.torn_reason.as_deref().unwrap().contains("CRC mismatch"));
        assert_eq!(summary.torn_bytes, (bytes.len() - rec_len) as u64);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
        wal.append(1, &batch(1)).expect("append");
        assert!(wal.bytes() > 0);
        wal.reset().expect("reset");
        assert_eq!(wal.bytes(), 0);
        wal.append(9, &batch(2)).expect("append after reset");
        let (_, records, _) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 9);
    }
}
