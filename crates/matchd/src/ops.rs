//! The live operations plane: admin HTTP endpoint, continuous auditor,
//! and the slow-request ring (DESIGN.md §14).
//!
//! Everything here runs *beside* the ingest path, never inside it:
//!
//! * The **admin listener** serves `GET /metrics` (Prometheus text),
//!   `GET /healthz` (liveness — 200 while the process serves),
//!   `GET /readyz` (readiness — 200 iff every audit pass so far was
//!   clean *and* the ingest queue sits below the high-watermark), and
//!   `GET /status` (one [`OpsStatus`] JSON document). One thread per
//!   request, [`crate::http`]'s HTTP/1.0, no new dependencies.
//! * The **continuous auditor** periodically rendezvous-probes the
//!   engine owner for an epoch-stamped [`owp_engine::OriginSnapshot`]
//!   (captured at a batch boundary), restores it *off* the hot path,
//!   and runs [`owp_metrics::Auditor::audit_live`] over the alive
//!   sub-instance: quota feasibility, mutuality, the Lemma 4
//!   locally-heaviest certificate, and the ε-blocking-edge gauge of
//!   Floréen et al. On a violation it escalates: captures a
//!   [`owp_engine::ForensicBundle`] from the live engine, spools it to
//!   [`crate::MatchdConfig::spool_dir`], and latches `/readyz` to 503.
//!
//! Readiness is deliberately *latched* on audit failure: a daemon whose
//! published matching ever broke its own certificate should fall out of
//! a load balancer until an operator replays the spooled bundle and
//! decides — it must not flap back to ready on the next clean pass.

use crate::http;
use crate::server::{AuditProbe, Ingest};
use owp_engine::OriginSnapshot;
use owp_matching::{BMatching, Problem};
use owp_metrics::{Auditor, Counter, Gauge, MetricsRegistry};
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many slow requests the ring retains (the worst N by total span).
pub const SLOW_RING_CAPACITY: usize = 16;

/// One completed request span, as kept by the slow-request ring and
/// rendered in `/status`. `SUBMIT` spans carry the full queue/apply/ack
/// split measured by the engine owner; read and control frames are
/// served inline off the published view, so their legs are zero and
/// `total_us` is the handler round-trip.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowSpan {
    /// Daemon-wide monotone request id.
    pub req: u64,
    /// Connection the frame arrived on.
    pub conn: u64,
    /// Frame kind label (`SUBMIT`, `QUERY_EPOCH`, ...).
    pub kind: String,
    /// Engine epoch the span completed at.
    pub epoch: u64,
    /// Microseconds spent queued before the owning flush started.
    pub queue_us: u64,
    /// Microseconds inside `apply_batch` + WAL append.
    pub apply_us: u64,
    /// Microseconds from engine completion to the ack leaving the owner.
    pub ack_us: u64,
    /// End-to-end microseconds.
    pub total_us: u64,
}

impl SlowSpan {
    fn to_json(&self) -> String {
        format!(
            "{{\"req\":{},\"conn\":{},\"kind\":\"{}\",\"epoch\":{},\"queue_us\":{},\"apply_us\":{},\"ack_us\":{},\"total_us\":{}}}",
            self.req, self.conn, self.kind, self.epoch, self.queue_us, self.apply_us,
            self.ack_us, self.total_us
        )
    }
}

/// The worst-N ring: requests only enter when they beat the current
/// N-th worst total, so the lock hold in steady state is one comparison.
#[derive(Debug)]
pub struct SlowRing {
    worst: Mutex<Vec<SlowSpan>>,
}

impl SlowRing {
    pub(crate) fn new() -> SlowRing {
        SlowRing { worst: Mutex::new(Vec::with_capacity(SLOW_RING_CAPACITY)) }
    }

    /// Offers a completed span; it is kept iff it ranks in the worst N.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note(
        &self,
        req: u64,
        conn: u64,
        kind: &'static str,
        epoch: u64,
        queue_us: u64,
        apply_us: u64,
        ack_us: u64,
        total_us: u64,
    ) {
        let mut w = self.worst.lock().expect("slow ring lock");
        if w.len() == SLOW_RING_CAPACITY
            && w.last().map(|s| s.total_us >= total_us).unwrap_or(false)
        {
            return;
        }
        let span = SlowSpan {
            req,
            conn,
            kind: kind.to_string(),
            epoch,
            queue_us,
            apply_us,
            ack_us,
            total_us,
        };
        let at = w.partition_point(|s| s.total_us >= total_us);
        w.insert(at, span);
        w.truncate(SLOW_RING_CAPACITY);
    }

    /// The current worst-N, slowest first.
    pub fn snapshot(&self) -> Vec<SlowSpan> {
        self.worst.lock().expect("slow ring lock").clone()
    }
}

/// State shared between the ingest path, the engine owner, and the ops
/// threads. Lives in an `Arc` owned by [`crate::Matchd`].
#[derive(Debug)]
pub struct OpsShared {
    /// Latched false by the first audit violation.
    pub(crate) audit_clean: AtomicBool,
    /// Worst-N completed request spans.
    pub(crate) slow: SlowRing,
    /// Daemon start instant (uptime base).
    pub(crate) started: Instant,
}

impl OpsShared {
    pub(crate) fn new() -> OpsShared {
        OpsShared {
            audit_clean: AtomicBool::new(true),
            slow: SlowRing::new(),
            started: Instant::now(),
        }
    }
}

/// The `/status` document: everything an operator (or `owp-inspect
/// ops`) needs in one scrape. Serialized by [`OpsStatus::to_json`] and
/// parsed back by [`OpsStatus::parse`] — the parser is keyed to this
/// emitter, not a general JSON reader.
#[derive(Clone, Debug, PartialEq)]
pub struct OpsStatus {
    /// Engine epoch of the published view.
    pub epoch: u64,
    /// ΣS of the published view.
    pub sigma_s: f64,
    /// Active node count.
    pub active: u32,
    /// Matched edge count.
    pub matched: u32,
    /// Submissions queued between acceptors and the engine owner.
    pub queue_depth: u64,
    /// The bounded queue's capacity.
    pub queue_capacity: u64,
    /// Bytes currently in the WAL.
    pub wal_bytes: u64,
    /// Records currently in the WAL.
    pub wal_records: u64,
    /// Epoch of the newest durable snapshot (0 before the first).
    pub snapshot_epoch: u64,
    /// Epochs elapsed since that snapshot (view epoch − snapshot epoch).
    pub snapshot_age_epochs: u64,
    /// Connections currently served.
    pub connections: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections_total: u64,
    /// Wire frames decoded over the daemon's lifetime.
    pub requests_total: u64,
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Current `/readyz` verdict.
    pub ready: bool,
    /// `false` once any audit pass found a violation (latched).
    pub audit_clean: bool,
    /// Clean continuous-audit passes so far.
    pub audit_passes: u64,
    /// Failed continuous-audit passes so far.
    pub audit_failures: u64,
    /// Engine epoch of the most recent completed audit pass.
    pub last_audit_epoch: u64,
    /// Forensic bundles spooled by the auditor.
    pub bundles_spooled: u64,
    /// Build provenance: the compiler that produced this daemon.
    pub rustc: String,
    /// The slow-request ring, slowest first.
    pub slow: Vec<SlowSpan>,
}

impl OpsStatus {
    /// One JSON object. The `slow` array is emitted last so the scalar
    /// fields parse unambiguously (slow spans reuse key names).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"epoch\":{},\"sigma_s\":{:.6},\"active\":{},\"matched\":{},\
             \"queue_depth\":{},\"queue_capacity\":{},\"wal_bytes\":{},\"wal_records\":{},\
             \"snapshot_epoch\":{},\"snapshot_age_epochs\":{},\
             \"connections\":{},\"connections_total\":{},\"requests_total\":{},\
             \"uptime_ms\":{},\"ready\":{},\"audit_clean\":{},\
             \"audit_passes\":{},\"audit_failures\":{},\"last_audit_epoch\":{},\
             \"bundles_spooled\":{},\"rustc\":\"{}\",\"slow\":[",
            self.epoch,
            self.sigma_s,
            self.active,
            self.matched,
            self.queue_depth,
            self.queue_capacity,
            self.wal_bytes,
            self.wal_records,
            self.snapshot_epoch,
            self.snapshot_age_epochs,
            self.connections,
            self.connections_total,
            self.requests_total,
            self.uptime_ms,
            self.ready,
            self.audit_clean,
            self.audit_passes,
            self.audit_failures,
            self.last_audit_epoch,
            self.bundles_spooled,
            self.rustc.replace('\\', "\\\\").replace('"', "\\\""),
        );
        for (i, span) in self.slow.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&span.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Parses a document produced by [`OpsStatus::to_json`].
    pub fn parse(doc: &str) -> Result<OpsStatus, String> {
        let slow_at = doc.find("\"slow\":[").ok_or("missing slow array")?;
        let head = &doc[..slow_at];
        let num = |key: &str| -> Result<u64, String> {
            scalar(head, key)?.parse().map_err(|e| format!("field {key}: {e}"))
        };
        let f64v = |key: &str| -> Result<f64, String> {
            scalar(head, key)?.parse().map_err(|e| format!("field {key}: {e}"))
        };
        let boolean = |key: &str| -> Result<bool, String> {
            match scalar(head, key)? {
                "true" => Ok(true),
                "false" => Ok(false),
                other => Err(format!("field {key}: {other:?} is not a bool")),
            }
        };
        let rustc = {
            let tag = "\"rustc\":\"";
            let at = head.find(tag).ok_or("missing rustc")? + tag.len();
            let end = head[at..].find('"').ok_or("unterminated rustc")?;
            head[at..at + end].replace("\\\"", "\"").replace("\\\\", "\\")
        };
        let tail = &doc[slow_at + "\"slow\":[".len()..];
        let close = tail.rfind(']').ok_or("unterminated slow array")?;
        let mut slow = Vec::new();
        for obj in tail[..close].split("},") {
            let obj = obj.trim().trim_start_matches('{').trim_end_matches('}');
            if obj.is_empty() {
                continue;
            }
            let get = |key: &str| -> Result<&str, String> { scalar(obj, key) };
            let kind = {
                let tag = "\"kind\":\"";
                let at = obj.find(tag).ok_or("missing span kind")? + tag.len();
                let end = obj[at..].find('"').ok_or("unterminated span kind")?;
                obj[at..at + end].to_string()
            };
            slow.push(SlowSpan {
                req: get("req")?.parse().map_err(|e| format!("span req: {e}"))?,
                conn: get("conn")?.parse().map_err(|e| format!("span conn: {e}"))?,
                kind,
                epoch: get("epoch")?.parse().map_err(|e| format!("span epoch: {e}"))?,
                queue_us: get("queue_us")?.parse().map_err(|e| format!("span queue_us: {e}"))?,
                apply_us: get("apply_us")?.parse().map_err(|e| format!("span apply_us: {e}"))?,
                ack_us: get("ack_us")?.parse().map_err(|e| format!("span ack_us: {e}"))?,
                total_us: get("total_us")?.parse().map_err(|e| format!("span total_us: {e}"))?,
            });
        }
        Ok(OpsStatus {
            epoch: num("epoch")?,
            sigma_s: f64v("sigma_s")?,
            active: num("active")? as u32,
            matched: num("matched")? as u32,
            queue_depth: num("queue_depth")?,
            queue_capacity: num("queue_capacity")?,
            wal_bytes: num("wal_bytes")?,
            wal_records: num("wal_records")?,
            snapshot_epoch: num("snapshot_epoch")?,
            snapshot_age_epochs: num("snapshot_age_epochs")?,
            connections: num("connections")?,
            connections_total: num("connections_total")?,
            requests_total: num("requests_total")?,
            uptime_ms: num("uptime_ms")?,
            ready: boolean("ready")?,
            audit_clean: boolean("audit_clean")?,
            audit_passes: num("audit_passes")?,
            audit_failures: num("audit_failures")?,
            last_audit_epoch: num("last_audit_epoch")?,
            bundles_spooled: num("bundles_spooled")?,
            rustc,
            slow,
        })
    }
}

/// Extracts the raw token following `"key":` in `doc` (terminated by
/// `,`, `}`, or end). Errors if the key is absent.
fn scalar<'d>(doc: &'d str, key: &str) -> Result<&'d str, String> {
    let tag = format!("\"{key}\":");
    let at = doc.find(&tag).ok_or_else(|| format!("missing field {key}"))? + tag.len();
    let rest = &doc[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

/// Everything the ops threads need, bundled once at spawn.
pub(crate) struct OpsCtx {
    pub registry: MetricsRegistry,
    pub view: Arc<Mutex<Arc<crate::server::View>>>,
    pub depth: Arc<AtomicUsize>,
    pub ingest: SyncSender<Ingest>,
    pub shared: Arc<OpsShared>,
    pub stop: Arc<AtomicBool>,
    pub queue_capacity: usize,
    pub ready_watermark: f64,
    pub audit_every: Duration,
    pub spool_dir: Option<PathBuf>,
}

/// A running ops plane; joined by [`crate::Matchd`] at shutdown.
pub(crate) struct OpsHandle {
    pub addr: SocketAddr,
    pub listener: JoinHandle<()>,
    pub auditor: JoinHandle<()>,
}

impl OpsCtx {
    fn queue_high(&self) -> usize {
        ((self.queue_capacity as f64) * self.ready_watermark).ceil() as usize
    }

    /// The readiness predicate behind `/readyz`: every audit pass so far
    /// clean, and the ingest queue below the high-watermark.
    fn ready(&self) -> (bool, &'static str) {
        if !self.shared.audit_clean.load(Ordering::SeqCst) {
            return (false, "audit violation latched; inspect the spool dir\n");
        }
        if self.depth.load(Ordering::SeqCst) >= self.queue_high() {
            return (false, "ingest queue above high-watermark\n");
        }
        (true, "ready\n")
    }

    fn status(&self) -> OpsStatus {
        let view = self.view.lock().expect("view lock").clone();
        let g = |key: &'static str| self.registry.gauge(key).get();
        let c = |key: &'static str| self.registry.counter(key).get();
        let (ready, _) = self.ready();
        let snapshot_epoch = g(owp_metrics::MATCHD_SNAPSHOT_EPOCH) as u64;
        OpsStatus {
            epoch: view.epoch,
            sigma_s: view.sigma_s,
            active: view.active,
            matched: view.matched,
            queue_depth: self.depth.load(Ordering::SeqCst) as u64,
            queue_capacity: self.queue_capacity as u64,
            wal_bytes: g(owp_metrics::MATCHD_WAL_BYTES) as u64,
            wal_records: g(owp_metrics::MATCHD_WAL_RECORDS) as u64,
            snapshot_epoch,
            snapshot_age_epochs: view.epoch.saturating_sub(snapshot_epoch),
            connections: g(owp_metrics::MATCHD_CONNECTIONS) as u64,
            connections_total: c(owp_metrics::MATCHD_CONNECTIONS_TOTAL),
            requests_total: c(owp_metrics::MATCHD_REQUESTS_TOTAL),
            uptime_ms: self.shared.started.elapsed().as_millis() as u64,
            ready,
            audit_clean: self.shared.audit_clean.load(Ordering::SeqCst),
            audit_passes: c(owp_metrics::MATCHD_AUDIT_PASSES),
            audit_failures: c(owp_metrics::MATCHD_AUDIT_FAILURES),
            last_audit_epoch: g(owp_metrics::MATCHD_AUDIT_LAST_EPOCH) as u64,
            bundles_spooled: c(owp_metrics::MATCHD_BUNDLES_SPOOLED),
            rustc: owp_engine::forensics::RUSTC_VERSION.to_string(),
            slow: self.shared.slow.snapshot(),
        }
    }
}

/// Binds the admin listener and spawns the two ops threads. Called by
/// [`crate::Matchd::start`] when `ops_addr` is configured; a bind
/// failure fails daemon startup (an ops plane you asked for but did not
/// get is worse than none).
pub(crate) fn spawn<A: ToSocketAddrs>(addr: A, ctx: OpsCtx) -> Result<OpsHandle, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind ops addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set ops listener nonblocking: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("no ops local addr: {e}"))?;
    let ctx = Arc::new(ctx);

    // The daemon is ready-at-start by construction: Matchd::start only
    // returns after recovery certified, and no audit has failed yet.
    ctx.registry.gauge(owp_metrics::MATCHD_READY).set(1.0);
    ctx.registry.gauge(owp_metrics::MATCHD_AUDIT_CLEAN).set(1.0);

    let listener_thread = {
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name("matchd-ops".into())
            .spawn(move || listener_loop(listener, ctx))
            .map_err(|e| format!("cannot spawn ops listener: {e}"))?
    };
    let auditor_thread = {
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name("matchd-audit".into())
            .spawn(move || auditor_loop(ctx))
            .map_err(|e| format!("cannot spawn continuous auditor: {e}"))?
    };
    Ok(OpsHandle { addr: local, listener: listener_thread, auditor: auditor_thread })
}

fn listener_loop(listener: TcpListener, ctx: Arc<OpsCtx>) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let ctx = Arc::clone(&ctx);
                let _ = std::thread::Builder::new()
                    .name("matchd-ops-conn".into())
                    .spawn(move || serve_one(stream, ctx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn serve_one(mut stream: std::net::TcpStream, ctx: Arc<OpsCtx>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    ctx.registry.counter(owp_metrics::MATCHD_OPS_REQUESTS).inc();
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(http::HttpError::Eof) => return,
        Err(e) => {
            let _ = http::respond(&mut stream, 400, "text/plain", &format!("{e}\n"));
            return;
        }
    };
    if req.method != "GET" {
        let _ = http::respond(&mut stream, 405, "text/plain", "admin plane is GET-only\n");
        return;
    }
    match req.path.as_str() {
        "/metrics" => {
            let body = ctx.registry.snapshot().to_prometheus();
            let _ = http::respond(&mut stream, 200, "text/plain; version=0.0.4", &body);
        }
        "/healthz" => {
            let _ = http::respond(&mut stream, 200, "text/plain", "ok\n");
        }
        "/readyz" => {
            let (ready, why) = ctx.ready();
            ctx.registry
                .gauge(owp_metrics::MATCHD_READY)
                .set(if ready { 1.0 } else { 0.0 });
            let status = if ready { 200 } else { 503 };
            let _ = http::respond(&mut stream, status, "text/plain", why);
        }
        "/status" => {
            let _ = http::respond(&mut stream, 200, "application/json", &ctx.status().to_json());
        }
        other => {
            let _ = http::respond(
                &mut stream,
                404,
                "text/plain",
                &format!("no route {other}; try /metrics /healthz /readyz /status\n"),
            );
        }
    }
}

/// The auditor's cached independent re-derivation of the universe
/// [`Problem`]. Rebuilt only when a probe's *structure* — edge list,
/// quotas, preference lists — differs from the snapshot the cache was
/// built from; in steady state consecutive probes differ only in
/// membership flags and the matched set, and the audit runs masked
/// against this cache without reconstructing anything.
struct UniverseCache {
    origin: OriginSnapshot,
    problem: Problem,
}

/// What one audit pass produced.
struct AuditOutcome {
    violations: usize,
    reason: String,
    /// Time spent (re)deriving the universe cache this pass — one-off
    /// structural work, excluded from the duty-cycle cap.
    rebuild: Duration,
}

impl AuditOutcome {
    fn failed(reason: String, rebuild: Duration) -> Self {
        AuditOutcome { violations: 1, reason, rebuild }
    }
}

/// One audit pass over a probe: re-derive the universe from the
/// epoch-stamped snapshot if its structure changed (otherwise reuse the
/// cache), parse the membership flags, and run the masked live audit of
/// the alive sub-instance directly in universe edge ids.
fn audit_probe(
    probe: &AuditProbe,
    reg: &MetricsRegistry,
    cache: &mut Option<UniverseCache>,
) -> AuditOutcome {
    let mut rebuild = Duration::ZERO;
    if !cache.as_ref().is_some_and(|c| c.origin.same_structure(&probe.origin)) {
        let t = Instant::now();
        let problem = match probe.origin.restore_universe() {
            Ok(p) => p,
            Err(e) => {
                return AuditOutcome::failed(
                    format!("probe snapshot does not restore: {e}"),
                    Duration::ZERO,
                )
            }
        };
        *cache = Some(UniverseCache { origin: probe.origin.clone(), problem });
        rebuild = t.elapsed();
    }
    let cache = cache.as_ref().expect("universe cache populated above");
    let g = &cache.problem.graph;
    let (active, present) = match probe.origin.flags() {
        Ok(f) => f,
        Err(e) => {
            return AuditOutcome::failed(
                format!("probe snapshot does not restore: {e}"),
                rebuild,
            )
        }
    };
    let alive: Vec<bool> = g
        .edges()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            present[e.index()] && active[u.index()] && active[v.index()]
        })
        .collect();
    let mut m = BMatching::empty(g);
    for &e in &probe.matched {
        if !alive.get(e.index()).copied().unwrap_or(false) {
            return AuditOutcome::failed(
                format!("selected edge {} is not alive in the probed instance", e.0),
                rebuild,
            );
        }
        m.insert_unchecked(g, e);
    }
    let mut auditor = Auditor::new(reg);
    let added = auditor.audit_live_masked(&cache.problem, &alive, &m, probe.epoch);
    let reason = if added == 0 {
        String::new()
    } else {
        auditor
            .report()
            .first()
            .map(|v| format!("{} at epoch {}: {}", v.kind.tag(), probe.epoch, v.detail))
            .unwrap_or_else(|| "audit violation".into())
    };
    AuditOutcome { violations: added, reason, rebuild }
}

/// How much farther out than its own recurring cost each audit cycle is
/// scheduled: with the next cycle at least `99 ×` the cost of the last one
/// away, the auditor's duty cycle stays under 1% of a core no matter how
/// big the instance or how slow the machine — the cadence knob
/// (`--audit-every-ms`) is a *floor*, the cap is the guarantee. One-off
/// universe rebuilds (first probe, structural change) are excluded: they
/// are not recurring load.
const AUDIT_DUTY_FACTOR: u32 = 99;

fn auditor_loop(ctx: Arc<OpsCtx>) {
    let passes: Counter = ctx.registry.counter(owp_metrics::MATCHD_AUDIT_PASSES);
    let failures: Counter = ctx.registry.counter(owp_metrics::MATCHD_AUDIT_FAILURES);
    let last_epoch: Gauge = ctx.registry.gauge(owp_metrics::MATCHD_AUDIT_LAST_EPOCH);
    let cost_g: Gauge = ctx.registry.gauge(owp_metrics::MATCHD_AUDIT_COST_US);
    let clean_g: Gauge = ctx.registry.gauge(owp_metrics::MATCHD_AUDIT_CLEAN);
    let ready_g: Gauge = ctx.registry.gauge(owp_metrics::MATCHD_READY);
    let spooled: Counter = ctx.registry.counter(owp_metrics::MATCHD_BUNDLES_SPOOLED);
    let mut cache: Option<UniverseCache> = None;
    let mut next = Instant::now() + ctx.audit_every;
    while !ctx.stop.load(Ordering::SeqCst) {
        if Instant::now() < next {
            std::thread::sleep(Duration::from_millis(10).min(ctx.audit_every));
            continue;
        }
        next = Instant::now() + ctx.audit_every;

        let cycle = Instant::now();
        let (tx, rx) = std::sync::mpsc::channel();
        match ctx.ingest.try_send(Ingest::Probe(tx)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => continue, // saturated: skip a round
            Err(TrySendError::Disconnected(_)) => return, // owner gone
        }
        let probe = match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(p) => p,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let out = audit_probe(&probe, &ctx.registry, &mut cache);
        // Duty-cycle cap: schedule the next cycle at least
        // `AUDIT_DUTY_FACTOR ×` this cycle's recurring cost out. The
        // rendezvous wait is included on purpose — a loaded owner flushes
        // slowly, and backing off under load is the point.
        let recurring = cycle.elapsed().saturating_sub(out.rebuild);
        cost_g.set(recurring.as_micros() as f64);
        next = Instant::now() + ctx.audit_every.max(recurring * AUDIT_DUTY_FACTOR);
        let (violations, reason) = (out.violations, out.reason);
        last_epoch.set(probe.epoch as f64);
        if violations == 0 {
            passes.inc();
            continue;
        }
        failures.inc();
        // Escalate: latch readiness off, pull a forensic bundle from the
        // live engine, and spool it for offline replay.
        ctx.shared.audit_clean.store(false, Ordering::SeqCst);
        clean_g.set(0.0);
        ready_g.set(0.0);
        let (btx, brx) = std::sync::mpsc::channel();
        if ctx.ingest.send(Ingest::Capture { reason: reason.clone(), reply: btx }).is_ok() {
            if let Ok(bundle) = brx.recv_timeout(Duration::from_secs(10)) {
                if let Some(dir) = &ctx.spool_dir {
                    match bundle.spool(dir) {
                        Ok(path) => {
                            spooled.inc();
                            eprintln!(
                                "matchd: AUDIT VIOLATION ({reason}); bundle spooled to {}",
                                path.display()
                            );
                        }
                        Err(e) => eprintln!(
                            "matchd: AUDIT VIOLATION ({reason}); spool failed: {e}"
                        ),
                    }
                } else {
                    eprintln!("matchd: AUDIT VIOLATION ({reason}); no spool dir configured");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpsStatus {
        OpsStatus {
            epoch: 42,
            sigma_s: 12.345678,
            active: 100,
            matched: 55,
            queue_depth: 3,
            queue_capacity: 1024,
            wal_bytes: 2048,
            wal_records: 7,
            snapshot_epoch: 40,
            snapshot_age_epochs: 2,
            connections: 4,
            connections_total: 9,
            requests_total: 1234,
            uptime_ms: 98765,
            ready: true,
            audit_clean: true,
            audit_passes: 11,
            audit_failures: 0,
            last_audit_epoch: 41,
            bundles_spooled: 0,
            rustc: "rustc 1.80.0 (test)".into(),
            slow: vec![
                SlowSpan {
                    req: 900,
                    conn: 2,
                    kind: "SUBMIT".into(),
                    epoch: 41,
                    queue_us: 120,
                    apply_us: 340,
                    ack_us: 15,
                    total_us: 520,
                },
                SlowSpan {
                    req: 7,
                    conn: 1,
                    kind: "QUERY_EPOCH".into(),
                    epoch: 40,
                    queue_us: 0,
                    apply_us: 0,
                    ack_us: 0,
                    total_us: 90,
                },
            ],
        }
    }

    #[test]
    fn status_round_trips() {
        let s = sample();
        let back = OpsStatus::parse(&s.to_json()).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn status_round_trips_empty_ring_and_not_ready() {
        let mut s = sample();
        s.slow.clear();
        s.ready = false;
        s.audit_clean = false;
        s.audit_failures = 3;
        let back = OpsStatus::parse(&s.to_json()).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(OpsStatus::parse("").is_err());
        assert!(OpsStatus::parse("{}").is_err());
        assert!(OpsStatus::parse("{\"epoch\":1,\"slow\":[").is_err());
    }

    #[test]
    fn slow_ring_keeps_the_worst_n() {
        let ring = SlowRing::new();
        for i in 0..(SLOW_RING_CAPACITY as u64 + 20) {
            ring.note(i, 1, "SUBMIT", i, 0, 0, 0, i * 10);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), SLOW_RING_CAPACITY);
        // Slowest first, and only the largest totals survived.
        assert!(snap.windows(2).all(|w| w[0].total_us >= w[1].total_us));
        assert_eq!(snap[0].total_us, (SLOW_RING_CAPACITY as u64 + 19) * 10);
        assert!(snap.iter().all(|s| s.total_us >= 200));
    }
}
