//! A deliberately minimal HTTP/1.0 server-side codec for the ops plane.
//!
//! The admin endpoint speaks just enough HTTP for `curl`, Prometheus
//! scrapers, and `owp-inspect ops`: one request per connection, `GET`
//! only, headers read and discarded, response carries `Content-Length`
//! and `Connection: close`. No keep-alive, no chunking, no new
//! dependencies — `std::io` in, `std::io` out, so both halves unit-test
//! against byte buffers.
//!
//! Robustness contract (pinned by `tests/ops_http.rs`): any byte stream
//! whatsoever must produce either a parsed [`Request`] or a structured
//! [`HttpError`] — never a panic, never unbounded memory. The request
//! line plus headers are capped at [`MAX_REQUEST_BYTES`].

use std::io::{Read, Write};

/// Upper bound on the request head (request line + headers). Admin
/// requests are a few dozen bytes; anything larger is hostile or lost.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Why a request could not be parsed. Every variant maps to a 400
/// response (or silence, for an empty connection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed before sending a full request head.
    Eof,
    /// The socket failed mid-read.
    Io(String),
    /// The head exceeded [`MAX_REQUEST_BYTES`].
    TooLarge,
    /// The request line is not `METHOD PATH VERSION`.
    Malformed(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Eof => f.write_str("connection closed before a full request"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::TooLarge => write!(f, "request head exceeds {MAX_REQUEST_BYTES} bytes"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
        }
    }
}

/// A parsed request head. The body (if any) is ignored — every admin
/// route is a `GET`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, query string stripped (`/metrics`).
    pub path: String,
}

/// Reads one request head off `r`: bytes up to the `\r\n\r\n` (or
/// `\n\n`) terminator, capped at [`MAX_REQUEST_BYTES`], then parses the
/// request line. Headers are discarded.
pub fn read_request<R: Read>(r: &mut R) -> Result<Request, HttpError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(HttpError::Eof);
                }
                // No blank line, but a request line may still be complete.
                break;
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_REQUEST_BYTES {
                    return Err(HttpError::TooLarge);
                }
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    parse_head(&head)
}

fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let line_end = head
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| if i > 0 && head[i - 1] == b'\r' { i - 1 } else { i })
        .unwrap_or(head.len());
    let line = &head[..line_end];
    if line.iter().any(|&b| b == 0 || b >= 0x80) {
        return Err(HttpError::Malformed("non-ASCII byte in request line".into()));
    }
    let line = std::str::from_utf8(line)
        .map_err(|_| HttpError::Malformed("request line is not UTF-8".into()))?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "request line {:?} is not METHOD PATH VERSION",
                line.chars().take(60).collect::<String>()
            )))
        }
    };
    if parts.next().is_some() {
        return Err(HttpError::Malformed("trailing tokens on the request line".into()));
    }
    if !version.starts_with("HTTP/") {
        return Err(HttpError::Malformed(format!("bad version token {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!("target {target:?} is not absolute")));
    }
    let path = target.split('?').next().unwrap_or(target);
    Ok(Request { method: method.to_string(), path: path.to_string() })
}

/// The standard reason phrase for the status codes the ops plane emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete HTTP/1.0 response and flushes. `Content-Length`
/// is always present so clients that ignore `Connection: close` still
/// frame the body correctly.
pub fn respond<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.0 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(status),
        body.len(),
    )?;
    w.flush()
}

/// Reads one HTTP response off `r` (the client half, used by
/// `owp-inspect ops` and the tests): returns `(status, body)`. The
/// response is bounded by `cap` bytes.
pub fn read_response<R: Read>(r: &mut R, cap: usize) -> Result<(u16, String), String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        match r.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > cap {
                    return Err(format!("response exceeds {cap} bytes"));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("socket error: {e}")),
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut lines = text.splitn(2, '\n');
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => match text.find("\n\n") {
            Some(i) => text[i + 2..].to_string(),
            None => String::new(),
        },
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut std::io::Cursor::new(bytes))
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn strips_query_strings_and_tolerates_bare_lf() {
        let req = parse(b"GET /status?pretty=1 HTTP/1.1\n\n").unwrap();
        assert_eq!(req.path, "/status");
        // A request line without a blank line still parses at EOF (curl
        // --http0.9 style minimal clients).
        let req = parse(b"GET /healthz HTTP/1.0\r\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        assert_eq!(parse(b""), Err(HttpError::Eof));
        assert!(matches!(parse(b"\x00\x01\x02\n\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET /x HTTP/1.0 extra\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET relative HTTP/1.0\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse(b"GET /x FTP/9\r\n\r\n"), Err(HttpError::Malformed(_))));
        let huge = vec![b'A'; MAX_REQUEST_BYTES + 2];
        assert_eq!(parse(&huge), Err(HttpError::TooLarge));
    }

    #[test]
    fn response_round_trips() {
        let mut out: Vec<u8> = Vec::new();
        respond(&mut out, 503, "text/plain", "not ready\n").unwrap();
        let (status, body) = read_response(&mut std::io::Cursor::new(&out), 4096).unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "not ready\n");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.0 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Content-Length: 10\r\n"), "{text}");
    }
}
