//! The daemon: acceptor → bounded queue → engine owner → published view.
//!
//! Thread layout (DESIGN.md §13):
//!
//! * one **acceptor** thread polls a non-blocking listener and spawns a
//!   handler thread per connection (`std::net`, no async runtime);
//! * handler threads decode frames, answer **reads** directly from the
//!   epoch-stamped published view (an `Arc` swap — readers never touch
//!   the engine), and forward **submissions** into a bounded
//!   `sync_channel`; a full channel is answered `BUSY` + retry-after
//!   *without blocking* — that is the admission control;
//! * a single **engine owner** thread drains the channel, batching
//!   adaptively: a batch flushes when it reaches
//!   [`MatchdConfig::max_batch`] events or when the oldest queued
//!   submission has lingered [`MatchdConfig::max_linger`] — the
//!   latency/throughput knob. Each flush applies the merged batch,
//!   appends it to the WAL, *then* acknowledges every submitter, so an
//!   acknowledged write is always recoverable.
//!
//! If a merged batch fails engine validation the owner falls back to
//! applying each submission separately: good submissions commit with
//! their own epochs, bad ones are `REJECTED` with the engine's error,
//! and one client's invalid event can never poison another's.

use crate::codec::{self, CodecError, Frame, PROTO_VERSION};
use crate::ops::{self, OpsCtx, OpsHandle, OpsShared};
use crate::recovery::recover;
use crate::snapshot::SnapshotStore;
use crate::wal::{FsyncPolicy, Wal};
use owp_engine::{Engine, EngineEvent, ForensicBundle, InjectedFault, OriginSnapshot};
use owp_graph::EdgeId;
use owp_metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, MATCHD_ADMISSION_REJECTS, MATCHD_BATCH_EVENTS,
    MATCHD_BATCH_LINGER_US, MATCHD_CONNECTIONS, MATCHD_CONNECTIONS_TOTAL, MATCHD_QUEUE_DEPTH,
    MATCHD_REQUESTS_TOTAL, MATCHD_REQ_CONTROL_US, MATCHD_REQ_QUERY_US, MATCHD_REQ_SUBMIT_US,
    MATCHD_SNAPSHOT_EPOCH, MATCHD_SPAN_ACK_US, MATCHD_SPAN_APPLY_US, MATCHD_SPAN_QUEUE_US,
    MATCHD_WAL_BYTES, MATCHD_WAL_RECORDS,
};
use owp_telemetry::{EventLog, MessageKind, Recorder, TelemetryEvent};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration. `Default` is a reasonable latency-leaning
/// middle ground; the bench driver sweeps the knobs.
#[derive(Clone, Debug)]
pub struct MatchdConfig {
    /// Directory holding `matchd.wal` and `snapshot.bin`.
    pub data_dir: PathBuf,
    /// Flush a batch once it holds this many events.
    pub max_batch: usize,
    /// Flush a batch once its oldest submission is this old.
    pub max_linger: Duration,
    /// Bounded ingest queue capacity (submissions, not events); beyond
    /// it, admission control answers `BUSY`.
    pub queue_capacity: usize,
    /// Take a snapshot (and reset the WAL) every this many epochs;
    /// 0 disables snapshots entirely.
    pub snapshot_every: u64,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Record codec-level wire telemetry + the engine trace into an
    /// [`EventLog`] returned by [`MatchdStats::trace`].
    pub trace: bool,
    /// Bind the ops plane (admin HTTP endpoint + continuous auditor) on
    /// this address (`"127.0.0.1:0"` picks an ephemeral port). `None`
    /// disables the ops plane entirely — the ingest path then pays no
    /// span bookkeeping beyond the lock-free histogram observations.
    pub ops_addr: Option<String>,
    /// How often the continuous auditor probes the engine owner.
    pub audit_every: Duration,
    /// Where the auditor spools [`ForensicBundle`]s on a violation;
    /// `None` still latches `/readyz` to 503 but keeps no bundle.
    pub spool_dir: Option<PathBuf>,
    /// `/readyz` turns 503 once the ingest queue reaches this fraction
    /// of [`MatchdConfig::queue_capacity`].
    pub ready_watermark: f64,
}

impl MatchdConfig {
    /// Defaults rooted at `data_dir`.
    pub fn new(data_dir: impl Into<PathBuf>) -> MatchdConfig {
        MatchdConfig {
            data_dir: data_dir.into(),
            max_batch: 256,
            max_linger: Duration::from_micros(2000),
            queue_capacity: 1024,
            snapshot_every: 256,
            fsync: FsyncPolicy::OnSnapshot,
            trace: false,
            ops_addr: None,
            audit_every: Duration::from_millis(200),
            spool_dir: None,
            ready_watermark: 0.9,
        }
    }
}

/// The epoch-stamped published view: everything the read path may
/// answer, frozen at a batch boundary. Handlers clone an `Arc` to it
/// under a short lock and never touch the engine.
#[derive(Clone, Debug)]
pub struct View {
    /// Engine epoch this view reflects.
    pub epoch: u64,
    /// ΣS over active peers.
    pub sigma_s: f64,
    /// Active node count.
    pub active: u32,
    /// Matched edge count.
    pub matched: u32,
    matches: Vec<Vec<u32>>,
    sat: Vec<f64>,
}

impl View {
    fn from_engine(engine: &Engine) -> View {
        let dp = engine.dynamic();
        let g = dp.graph();
        View {
            epoch: engine.epoch().0,
            sigma_s: engine.total_satisfaction(),
            active: g.nodes().filter(|&i| dp.is_active(i)).count() as u32,
            matched: engine.matching().size() as u32,
            matches: g
                .nodes()
                .map(|i| engine.matching().connections(i).iter().map(|p| p.0).collect())
                .collect(),
            sat: g.nodes().map(|i| engine.satisfaction(i)).collect(),
        }
    }

    /// The node's matched peers (empty for unknown ids).
    pub fn matches_of(&self, node: u32) -> &[u32] {
        self.matches.get(node as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The node's satisfaction (0 for inactive or unknown ids).
    pub fn satisfaction_of(&self, node: u32) -> f64 {
        self.sat.get(node as usize).copied().unwrap_or(0.0)
    }
}

type SharedView = Arc<Mutex<Arc<View>>>;

type Reply = Result<u64, String>;

pub(crate) struct Submission {
    events: Vec<EngineEvent>,
    enqueued: Instant,
    conn: u64,
    /// Daemon-wide request id of the carrying frame (the span key).
    req: u64,
    bytes: u32,
    reply: Sender<Reply>,
}

/// An epoch-stamped copy of the engine's live state, captured by the
/// owner at a batch boundary for the continuous auditor. Restoring the
/// [`OriginSnapshot`] happens on the auditor thread — the owner only
/// pays the O(n + m) copy.
pub(crate) struct AuditProbe {
    /// Engine epoch the probe reflects.
    pub(crate) epoch: u64,
    /// Full dynamic-problem state (graph, prefs, quotas, membership).
    pub(crate) origin: OriginSnapshot,
    /// Universe edge ids currently selected by the maintained matching.
    pub(crate) matched: Vec<EdgeId>,
}

pub(crate) enum Ingest {
    Submit(Submission),
    /// Continuous-auditor rendezvous: the owner flushes any pending
    /// batch, then answers with an [`AuditProbe`] of the applied state.
    Probe(Sender<AuditProbe>),
    /// Escalation rendezvous: capture a [`ForensicBundle`] from the
    /// live engine (trigger `"audit"`).
    Capture {
        reason: String,
        reply: Sender<ForensicBundle>,
    },
    /// Chaos hook: corrupt the live engine through
    /// [`owp_engine::Engine::inject_fault`], then ack. The next audit
    /// pass (and final certification) will catch the damage.
    Inject(InjectedFault, Sender<()>),
    /// Graceful stop: flush, snapshot, certify.
    Shutdown,
    /// Crash simulation: stop *now*, dropping pending submissions —
    /// nothing past the last WAL append survives, exactly like SIGKILL.
    Abort,
}

/// What the owner thread hands back when it stops.
struct OwnerExit {
    engine: Engine,
    batches: u64,
    graceful: bool,
    certify: Result<(), String>,
    trace: Option<EventLog>,
}

/// Final daemon state, returned by [`Matchd::shutdown`] /
/// [`Matchd::abort`] / [`Matchd::wait`].
pub struct MatchdStats {
    /// Final engine epoch.
    pub epoch: u64,
    /// Final ΣS.
    pub sigma_s: f64,
    /// Batches flushed over the daemon's lifetime (this run).
    pub batches: u64,
    /// `true` for a clean shutdown, `false` for [`Matchd::abort`].
    pub graceful: bool,
    /// Certification of the final state (always computed, even on abort).
    pub certify: Result<(), String>,
    /// Wire + engine telemetry, when [`MatchdConfig::trace`] was on.
    pub trace: Option<EventLog>,
    /// The final engine itself, for tests and experiments.
    pub engine: Engine,
}

/// A running daemon. Start with [`Matchd::start`]; stop with
/// [`Matchd::shutdown`] (graceful) or [`Matchd::abort`] (simulated
/// crash), or [`Matchd::wait`] for a client-initiated shutdown.
pub struct Matchd {
    addr: SocketAddr,
    ingest: SyncSender<Ingest>,
    owner: JoinHandle<OwnerExit>,
    acceptor: JoinHandle<()>,
    stop: Arc<AtomicBool>,
    ops: Option<OpsHandle>,
    /// Epoch recovered from snapshot + WAL before serving.
    pub recovered_epoch: u64,
    /// WAL records replayed during recovery.
    pub replayed: usize,
    /// Torn-tail bytes truncated from the WAL on open.
    pub torn_bytes: u64,
}

/// A detachable shutdown trigger: lets a signal-watcher (or any other
/// thread) request the same graceful drain a client `SHUTDOWN` frame
/// produces, while the main thread blocks in [`Matchd::wait`].
#[derive(Clone)]
pub struct ShutdownHandle {
    ingest: SyncSender<Ingest>,
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Asks the daemon to drain, snapshot, fsync, and exit. Idempotent;
    /// safe to call after the daemon already stopped.
    pub fn request_shutdown(&self) {
        let _ = self.ingest.send(Ingest::Shutdown);
        self.stop.store(true, Ordering::SeqCst);
    }
}

struct ConnCtx {
    ingest: SyncSender<Ingest>,
    view: SharedView,
    registry: MetricsRegistry,
    depth: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    rejects: Counter,
    retry_ms: u32,
    nodes: u32,
    /// Daemon-wide monotone request id source (one id per decoded frame).
    req_ids: AtomicU64,
    /// Live handler-thread count backing the connections gauge.
    live: AtomicUsize,
    requests_total: Counter,
    req_submit_us: Histogram,
    req_query_us: Histogram,
    req_control_us: Histogram,
    conns: Gauge,
    conns_total: Counter,
    shared: Arc<OpsShared>,
}

impl ConnCtx {
    fn view(&self) -> Arc<View> {
        self.view.lock().expect("view lock").clone()
    }
}

/// Keeps the live-connection gauge honest however the handler returns.
struct ConnGuard<'a>(&'a ConnCtx);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        let now = self.0.live.fetch_sub(1, Ordering::SeqCst) - 1;
        self.0.conns.set(now as f64);
    }
}

impl Matchd {
    /// Recovers `config.data_dir` (certifying the result), binds `addr`
    /// (`"127.0.0.1:0"` picks an ephemeral port), and starts serving.
    /// Recovery failure means no socket is ever bound.
    pub fn start<A: ToSocketAddrs>(
        addr: A,
        universe: &owp_matching::Problem,
        config: MatchdConfig,
        registry: MetricsRegistry,
    ) -> Result<Matchd, String> {
        owp_metrics::register_matchd_metrics(&registry);
        let rec = recover(&config.data_dir, universe, config.fsync)?;
        let recovered_epoch = rec.engine.epoch().0;
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind: {e}"))?;
        listener.set_nonblocking(true).map_err(|e| format!("cannot set nonblocking: {e}"))?;
        let local = listener.local_addr().map_err(|e| format!("no local addr: {e}"))?;
        let view: SharedView = Arc::new(Mutex::new(Arc::new(View::from_engine(&rec.engine))));
        let stop = Arc::new(AtomicBool::new(false));
        let depth = Arc::new(AtomicUsize::new(0));
        let shared = Arc::new(OpsShared::new());
        let (tx, rx) = sync_channel::<Ingest>(config.queue_capacity);
        let nodes = universe.graph.node_count() as u32;

        let owner = {
            let view = Arc::clone(&view);
            let depth = Arc::clone(&depth);
            let shared = Arc::clone(&shared);
            let registry = registry.clone();
            let config = config.clone();
            let engine = rec.engine;
            let wal = rec.wal;
            std::thread::Builder::new()
                .name("matchd-engine".into())
                .spawn(move || owner_loop(engine, wal, rx, view, depth, shared, registry, config))
                .map_err(|e| format!("cannot spawn engine owner: {e}"))?
        };

        let acceptor = {
            let ctx = Arc::new(ConnCtx {
                ingest: tx.clone(),
                view: Arc::clone(&view),
                registry: registry.clone(),
                depth: Arc::clone(&depth),
                stop: Arc::clone(&stop),
                rejects: registry.counter(MATCHD_ADMISSION_REJECTS),
                retry_ms: (config.max_linger.as_millis() as u32).max(1),
                nodes,
                req_ids: AtomicU64::new(0),
                live: AtomicUsize::new(0),
                requests_total: registry.counter(MATCHD_REQUESTS_TOTAL),
                req_submit_us: registry.histogram(MATCHD_REQ_SUBMIT_US),
                req_query_us: registry.histogram(MATCHD_REQ_QUERY_US),
                req_control_us: registry.histogram(MATCHD_REQ_CONTROL_US),
                conns: registry.gauge(MATCHD_CONNECTIONS),
                conns_total: registry.counter(MATCHD_CONNECTIONS_TOTAL),
                shared: Arc::clone(&shared),
            });
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("matchd-accept".into())
                .spawn(move || acceptor_loop(listener, stop, ctx))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };

        let ops_handle = match &config.ops_addr {
            Some(ops_addr) => Some(ops::spawn(
                ops_addr.as_str(),
                OpsCtx {
                    registry: registry.clone(),
                    view: Arc::clone(&view),
                    depth: Arc::clone(&depth),
                    ingest: tx.clone(),
                    shared: Arc::clone(&shared),
                    stop: Arc::clone(&stop),
                    queue_capacity: config.queue_capacity,
                    ready_watermark: config.ready_watermark,
                    audit_every: config.audit_every,
                    spool_dir: config.spool_dir.clone(),
                },
            )?),
            None => None,
        };

        Ok(Matchd {
            addr: local,
            ingest: tx,
            owner,
            acceptor,
            stop,
            ops: ops_handle,
            recovered_epoch,
            replayed: rec.replayed,
            torn_bytes: rec.torn_bytes,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ops plane's bound address, when configured.
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(|o| o.addr)
    }

    /// A detachable trigger for a graceful stop (the signal-handler
    /// path of the `matchd` binary).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { ingest: self.ingest.clone(), stop: Arc::clone(&self.stop) }
    }

    /// Corrupts the live engine with `fault` (a chaos/testing hook —
    /// the continuous auditor and final certification are expected to
    /// catch the damage). Blocks until the owner applied it.
    pub fn inject_fault(&self, fault: InjectedFault) -> Result<(), String> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.ingest
            .send(Ingest::Inject(fault, tx))
            .map_err(|_| "daemon is shutting down".to_string())?;
        rx.recv().map_err(|_| "daemon stopped before injecting".to_string())
    }

    fn join(self) -> MatchdStats {
        let exit = self.owner.join().expect("engine owner thread panicked");
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.acceptor.join();
        if let Some(ops) = self.ops {
            let _ = ops.listener.join();
            let _ = ops.auditor.join();
        }
        MatchdStats {
            epoch: exit.engine.epoch().0,
            sigma_s: exit.engine.total_satisfaction(),
            batches: exit.batches,
            graceful: exit.graceful,
            certify: exit.certify,
            trace: exit.trace,
            engine: exit.engine,
        }
    }

    /// Graceful stop: flush pending batches, snapshot, certify, join.
    pub fn shutdown(self) -> MatchdStats {
        let _ = self.ingest.send(Ingest::Shutdown);
        self.join()
    }

    /// Simulated crash: the owner stops without flushing pending
    /// submissions, final snapshot, or sync — in-memory state is thrown
    /// away and only WAL appends that already happened survive, the
    /// same durability cut SIGKILL produces.
    pub fn abort(self) -> MatchdStats {
        let _ = self.ingest.send(Ingest::Abort);
        self.join()
    }

    /// Blocks until a *client* sends [`Frame::Shutdown`], then joins.
    pub fn wait(self) -> MatchdStats {
        self.join()
    }
}

fn acceptor_loop(listener: TcpListener, stop: Arc<AtomicBool>, ctx: Arc<ConnCtx>) {
    let mut conn_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                conn_id += 1;
                let ctx = Arc::clone(&ctx);
                let id = conn_id;
                let _ = std::thread::Builder::new()
                    .name(format!("matchd-conn-{id}"))
                    .spawn(move || handle_conn(stream, ctx, id));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, ctx: Arc<ConnCtx>, conn: u64) {
    let _ = stream.set_nodelay(true);
    ctx.conns_total.inc();
    let live_now = ctx.live.fetch_add(1, Ordering::SeqCst) + 1;
    ctx.conns.set(live_now as f64);
    let _guard = ConnGuard(&ctx);
    loop {
        let frame = match codec::read_frame(&mut stream) {
            Ok(f) => f,
            Err(CodecError::Eof) => return,
            Err(_) => return, // framing is lost; nothing safe to say
        };
        // Every decoded frame opens a request span: a daemon-wide
        // monotone id plus a wall-clock start. SUBMIT spans thread the
        // id through the ingest queue so the owner can attribute the
        // queue/apply/ack legs; read and control frames close their
        // span right here.
        let req = ctx.req_ids.fetch_add(1, Ordering::SeqCst) + 1;
        ctx.requests_total.inc();
        let span_start = Instant::now();
        let req_kind = frame.kind_label();
        let is_submit = matches!(frame, Frame::Submit { .. });
        let response = match frame {
            Frame::Hello { proto } => {
                if proto == PROTO_VERSION {
                    let v = ctx.view();
                    Frame::Welcome { proto: PROTO_VERSION, epoch: v.epoch, nodes: ctx.nodes }
                } else {
                    Frame::Rejected { error: format!("unsupported protocol version {proto}") }
                }
            }
            Frame::Submit { events } => {
                let bytes = events.len() as u32;
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                let sub = Submission {
                    events,
                    enqueued: Instant::now(),
                    conn,
                    req,
                    bytes,
                    reply: reply_tx,
                };
                match ctx.ingest.try_send(Ingest::Submit(sub)) {
                    Ok(()) => {
                        ctx.depth.fetch_add(1, Ordering::SeqCst);
                        match reply_rx.recv() {
                            Ok(Ok(epoch)) => Frame::Accepted { epoch },
                            Ok(Err(error)) => Frame::Rejected { error },
                            Err(_) => {
                                Frame::Rejected { error: "daemon stopped before applying".into() }
                            }
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        ctx.rejects.inc();
                        Frame::Busy { retry_after_ms: ctx.retry_ms }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        Frame::Rejected { error: "daemon is shutting down".into() }
                    }
                }
            }
            Frame::QueryMatches { node } => {
                let v = ctx.view();
                Frame::Matches { epoch: v.epoch, peers: v.matches_of(node).to_vec() }
            }
            Frame::QuerySatisfaction { node } => {
                let v = ctx.view();
                Frame::Satisfaction { epoch: v.epoch, value: v.satisfaction_of(node) }
            }
            Frame::QueryEpoch => {
                let v = ctx.view();
                Frame::EpochInfo {
                    epoch: v.epoch,
                    sigma_s: v.sigma_s,
                    active: v.active,
                    matched: v.matched,
                }
            }
            Frame::QueryMetrics => {
                Frame::Metrics { json: ctx.registry.snapshot().to_json() }
            }
            Frame::Shutdown => {
                let epoch = ctx.view().epoch;
                let _ = ctx.ingest.send(Ingest::Shutdown);
                ctx.stop.store(true, Ordering::SeqCst);
                let _ = codec::write_frame(&mut stream, &Frame::Bye { epoch });
                return;
            }
            other => Frame::Rejected {
                error: format!("unexpected {} frame from a client", other.kind_label()),
            },
        };
        if codec::write_frame(&mut stream, &response).is_err() {
            return;
        }
        let total_us = span_start.elapsed().as_micros() as u64;
        if is_submit {
            // End-to-end as the client saw it; the queue/apply/ack legs
            // (and the slow-ring entry) come from the engine owner.
            ctx.req_submit_us.observe(total_us);
        } else {
            let hist = if req_kind.starts_with("QUERY") {
                &ctx.req_query_us
            } else {
                &ctx.req_control_us
            };
            hist.observe(total_us);
            let epoch = ctx.view().epoch;
            ctx.shared.slow.note(req, conn, req_kind, epoch, 0, 0, 0, total_us);
        }
    }
}

/// The single engine-owner thread: adaptive batching, WAL-before-ack,
/// periodic snapshots, view publication.
#[allow(clippy::too_many_arguments)]
fn owner_loop(
    mut engine: Engine,
    mut wal: Wal,
    rx: Receiver<Ingest>,
    view: SharedView,
    depth: Arc<AtomicUsize>,
    shared: Arc<OpsShared>,
    registry: MetricsRegistry,
    config: MatchdConfig,
) -> OwnerExit {
    let started = Instant::now();
    let queue_depth: Gauge = registry.gauge(MATCHD_QUEUE_DEPTH);
    let wal_bytes: Gauge = registry.gauge(MATCHD_WAL_BYTES);
    let wal_records: Gauge = registry.gauge(MATCHD_WAL_RECORDS);
    let snapshot_epoch_g: Gauge = registry.gauge(MATCHD_SNAPSHOT_EPOCH);
    let linger_us: Histogram = registry.histogram(MATCHD_BATCH_LINGER_US);
    let batch_events: Histogram = registry.histogram(MATCHD_BATCH_EVENTS);
    let span_queue_us: Histogram = registry.histogram(MATCHD_SPAN_QUEUE_US);
    let span_apply_us: Histogram = registry.histogram(MATCHD_SPAN_APPLY_US);
    let span_ack_us: Histogram = registry.histogram(MATCHD_SPAN_ACK_US);
    let store = SnapshotStore::new(&config.data_dir);
    let mut trace = config.trace.then(EventLog::enabled);
    let mut pending: Vec<Submission> = Vec::new();
    let mut pending_events = 0usize;
    let mut merged: Vec<EngineEvent> = Vec::new();
    let mut batches = 0u64;
    let mut last_snapshot = engine.epoch().0;
    wal_bytes.set(wal.bytes() as f64);
    wal_records.set(wal.records() as f64);

    let mut flush = |pending: &mut Vec<Submission>,
                     pending_events: &mut usize,
                     engine: &mut Engine,
                     wal: &mut Wal,
                     trace: &mut Option<EventLog>,
                     batches: &mut u64,
                     last_snapshot: &mut u64| {
        if pending.is_empty() {
            return;
        }
        let oldest = pending[0].enqueued;
        linger_us.observe(oldest.elapsed().as_micros() as u64);
        batch_events.observe(*pending_events as u64);
        let now_us = || started.elapsed().as_micros() as u64;
        if let Some(log) = trace.as_mut() {
            for sub in pending.iter() {
                log.record(TelemetryEvent::WireFrameReceived {
                    time: now_us(),
                    conn: sub.conn,
                    req: sub.req,
                    kind: MessageKind::Other("SUBMIT"),
                    bytes: sub.bytes,
                });
            }
        }
        merged.clear();
        for sub in pending.iter() {
            merged.extend_from_slice(&sub.events);
        }
        // The span legs: every submission in this flush shares the
        // apply leg (one merged engine call + WAL append), while its
        // queue leg is individual — enqueue to flush start.
        let flush_start = Instant::now();
        let merged_result = match trace.as_mut() {
            Some(log) => engine.apply_batch_traced(&merged, log).map(|r| r.epoch.0),
            None => engine.apply_batch(&merged).map(|r| r.epoch.0),
        };
        // Replies are deferred until after the view is published, so a
        // client that sees its ack is guaranteed to read its own write.
        let mut replies: Vec<(Submission, Reply)> = Vec::with_capacity(pending.len());
        match merged_result {
            Ok(epoch) => {
                *batches += 1;
                match wal.append(epoch, &merged) {
                    Ok(()) => {
                        for sub in pending.drain(..) {
                            replies.push((sub, Ok(epoch)));
                        }
                    }
                    Err(e) => {
                        // Disk trouble: the batch is applied but not
                        // logged. Refuse the ack so no client believes
                        // it durable.
                        for sub in pending.drain(..) {
                            replies.push((sub, Err(format!("WAL append failed: {e}"))));
                        }
                    }
                }
            }
            Err(_) => {
                // The merged batch fails validation as a whole; isolate
                // the offender(s) by applying each submission alone.
                for sub in pending.drain(..) {
                    let one = match trace.as_mut() {
                        Some(log) => {
                            engine.apply_batch_traced(&sub.events, log).map(|r| r.epoch.0)
                        }
                        None => engine.apply_batch(&sub.events).map(|r| r.epoch.0),
                    };
                    let reply = match one {
                        Ok(epoch) => match wal.append(epoch, &sub.events) {
                            Ok(()) => {
                                *batches += 1;
                                Ok(epoch)
                            }
                            Err(e) => Err(format!("WAL append failed: {e}")),
                        },
                        Err(e) => Err(e.to_string()),
                    };
                    replies.push((sub, reply));
                }
            }
        }
        *pending_events = 0;
        let apply_done = Instant::now();
        let apply_us = apply_done.duration_since(flush_start).as_micros() as u64;
        let epoch_now = engine.epoch().0;
        *view.lock().expect("view lock") = Arc::new(View::from_engine(engine));
        for (sub, reply) in replies {
            let kind = if reply.is_ok() { "ACCEPTED" } else { "REJECTED" };
            if let Some(log) = trace.as_mut() {
                log.record(TelemetryEvent::WireFrameSent {
                    time: now_us(),
                    conn: sub.conn,
                    req: sub.req,
                    kind: MessageKind::Other(kind),
                    bytes: 9,
                });
            }
            let queue_us = flush_start.duration_since(sub.enqueued).as_micros() as u64;
            let ack_us = apply_done.elapsed().as_micros() as u64;
            span_queue_us.observe(queue_us);
            span_apply_us.observe(apply_us);
            span_ack_us.observe(ack_us);
            shared.slow.note(
                sub.req,
                sub.conn,
                "SUBMIT",
                epoch_now,
                queue_us,
                apply_us,
                ack_us,
                queue_us + apply_us + ack_us,
            );
            let _ = sub.reply.send(reply);
        }
        wal_bytes.set(wal.bytes() as f64);
        wal_records.set(wal.records() as f64);
        if config.snapshot_every > 0 && epoch_now - *last_snapshot >= config.snapshot_every {
            if store.save(epoch_now, &OriginSnapshot::capture(engine.dynamic())).is_ok() {
                let _ = wal.reset();
                *last_snapshot = epoch_now;
                snapshot_epoch_g.set(epoch_now as f64);
                wal_bytes.set(wal.bytes() as f64);
                wal_records.set(wal.records() as f64);
            }
        }
    };

    let graceful = loop {
        let msg = if pending.is_empty() {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break true, // all senders gone: clean stop
            }
        } else {
            let deadline = pending[0].enqueued + config.max_linger;
            let wait = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    flush(
                        &mut pending,
                        &mut pending_events,
                        &mut engine,
                        &mut wal,
                        &mut trace,
                        &mut batches,
                        &mut last_snapshot,
                    );
                    queue_depth.set(depth.load(Ordering::SeqCst) as f64);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break true,
            }
        };
        match msg {
            Ingest::Submit(sub) => {
                depth.fetch_sub(1, Ordering::SeqCst);
                queue_depth.set(depth.load(Ordering::SeqCst) as f64);
                pending_events += sub.events.len();
                pending.push(sub);
                if pending_events >= config.max_batch {
                    flush(
                        &mut pending,
                        &mut pending_events,
                        &mut engine,
                        &mut wal,
                        &mut trace,
                        &mut batches,
                        &mut last_snapshot,
                    );
                }
            }
            // Control rendezvous from the ops plane: flush any pending
            // batch first so the probe/capture reflects a consistent
            // state at a batch boundary, then answer on the sender the
            // requester supplied.
            Ingest::Probe(reply) => {
                flush(
                    &mut pending,
                    &mut pending_events,
                    &mut engine,
                    &mut wal,
                    &mut trace,
                    &mut batches,
                    &mut last_snapshot,
                );
                let dp = engine.dynamic();
                let g = dp.graph();
                let matched: Vec<EdgeId> =
                    g.edges().filter(|&e| engine.matching().contains(e)).collect();
                let probe = AuditProbe {
                    epoch: engine.epoch().0,
                    origin: OriginSnapshot::capture(dp),
                    matched,
                };
                let _ = reply.send(probe);
            }
            Ingest::Capture { reason, reply } => {
                flush(
                    &mut pending,
                    &mut pending_events,
                    &mut engine,
                    &mut wal,
                    &mut trace,
                    &mut batches,
                    &mut last_snapshot,
                );
                let metrics_json = registry.snapshot().to_json();
                let bundle = engine.capture_bundle("audit", &reason, None, Some(&metrics_json));
                let _ = reply.send(bundle);
            }
            Ingest::Inject(fault, ack) => {
                flush(
                    &mut pending,
                    &mut pending_events,
                    &mut engine,
                    &mut wal,
                    &mut trace,
                    &mut batches,
                    &mut last_snapshot,
                );
                engine.inject_fault(fault);
                *view.lock().expect("view lock") = Arc::new(View::from_engine(&engine));
                let _ = ack.send(());
            }
            Ingest::Shutdown => break true,
            Ingest::Abort => break false,
        }
    };

    if graceful {
        flush(
            &mut pending,
            &mut pending_events,
            &mut engine,
            &mut wal,
            &mut trace,
            &mut batches,
            &mut last_snapshot,
        );
        let epoch_now = engine.epoch().0;
        if config.snapshot_every > 0 && epoch_now > last_snapshot {
            if store.save(epoch_now, &OriginSnapshot::capture(engine.dynamic())).is_ok() {
                let _ = wal.reset();
                snapshot_epoch_g.set(epoch_now as f64);
                wal_records.set(wal.records() as f64);
            }
        }
        let _ = wal.sync();
    }
    // Pending, unacknowledged submissions on an abort are dropped — the
    // crash semantics. Their reply senders hang up, which handlers
    // surface as "daemon stopped before applying".
    let certify = engine.certify();
    OwnerExit { engine, batches, graceful, certify, trace }
}
