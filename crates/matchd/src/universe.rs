//! Deterministic universe construction + the standard client workload.
//!
//! A matchd universe (the fixed node/edge ground set the engine ranges
//! over) must be reconstructible on restart from the same spec string —
//! the daemon only persists *dynamic* state (snapshot + WAL). Spec
//! grammar, all fields seeded and deterministic:
//!
//! * `ba:<n>,<m>,<b>,<seed>` — Barabási–Albert, `m` links per arrival;
//! * `gnp:<n>,<milli_p>,<b>,<seed>` — Erdős–Rényi with `p = milli_p/1000`;
//! * `ring:<n>,<b>,<seed>` — a cycle.
//!
//! `b` is the uniform quota; preferences are `Problem::random_over`
//! with the given seed, so the same spec yields the same eq. 9 weights
//! everywhere (daemon, bench driver, reference engine).

use owp_engine::EngineEvent;
use owp_graph::NodeId;
use owp_matching::Problem;
use rand::{rngs::StdRng, SeedableRng};

/// Parses a universe spec (see module docs) into a [`Problem`].
pub fn from_spec(spec: &str) -> Result<Problem, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("universe spec {spec:?} lacks a `kind:` prefix"))?;
    let nums: Vec<u64> = rest
        .split(',')
        .map(|s| s.trim().parse::<u64>().map_err(|_| format!("bad number {s:?} in {spec:?}")))
        .collect::<Result<_, _>>()?;
    let arity = |want: usize| -> Result<(), String> {
        if nums.len() == want {
            Ok(())
        } else {
            Err(format!("{kind}: expected {want} comma-separated numbers, got {}", nums.len()))
        }
    };
    match kind {
        "ba" => {
            arity(4)?;
            let mut rng = StdRng::seed_from_u64(nums[3]);
            let g = owp_graph::generators::barabasi_albert(nums[0] as usize, nums[1] as usize, &mut rng);
            Ok(Problem::random_over(g, nums[2] as u32, nums[3]))
        }
        "gnp" => {
            arity(4)?;
            let mut rng = StdRng::seed_from_u64(nums[3]);
            let g = owp_graph::generators::erdos_renyi(nums[0] as usize, nums[1] as f64 / 1000.0, &mut rng);
            Ok(Problem::random_over(g, nums[2] as u32, nums[3]))
        }
        "ring" => {
            arity(3)?;
            let g = owp_graph::generators::ring(nums[0] as usize);
            Ok(Problem::random_over(g, nums[1] as u32, nums[2]))
        }
        other => Err(format!("unknown universe kind {other:?} (ba|gnp|ring)")),
    }
}

/// The standard multi-client workload: client `c` of `clients` owns the
/// nodes `i ≡ c (mod clients)` and emits a self-inverse stream of
/// leave/rejoin pairs plus remove/add pairs over edges whose *both*
/// endpoints it owns. Ownership partitions the mutable state, so any
/// interleaving of the per-client streams — which is exactly what the
/// daemon's adaptive batching produces — stays valid, and the final
/// instance equals the initial one whenever `events` is a multiple of 2.
pub fn client_stream(problem: &Problem, client: usize, clients: usize, events: usize) -> Vec<EngineEvent> {
    let g = &problem.graph;
    let owned: Vec<u32> = (0..g.node_count() as u32)
        .filter(|i| (*i as usize) % clients == client)
        .collect();
    let owned_edges: Vec<(u32, u32)> = g
        .edges()
        .map(|e| g.endpoints(e))
        .map(|(u, v)| (u.0, v.0))
        .filter(|(u, v)| (*u as usize) % clients == client && (*v as usize) % clients == client)
        .collect();
    let mut out = Vec::with_capacity(events);
    if owned.is_empty() {
        return out;
    }
    let mut ni = 0usize;
    let mut ei = 0usize;
    while out.len() + 2 <= events {
        // Three node toggles for every edge toggle, when edges exist.
        for _ in 0..3 {
            if out.len() + 2 > events {
                break;
            }
            let x = NodeId(owned[ni % owned.len()]);
            ni += 1;
            out.push(EngineEvent::NodeLeave { node: x });
            out.push(EngineEvent::NodeJoin { node: x });
        }
        if !owned_edges.is_empty() && out.len() + 2 <= events {
            let (u, v) = owned_edges[ei % owned_edges.len()];
            ei += 1;
            out.push(EngineEvent::EdgeRemove { u: NodeId(u), v: NodeId(v) });
            out.push(EngineEvent::EdgeAdd { u: NodeId(u), v: NodeId(v) });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic() {
        let a = from_spec("ba:200,3,2,42").expect("spec");
        let b = from_spec("ba:200,3,2,42").expect("spec");
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert!(from_spec("ba:200,3,2").is_err());
        assert!(from_spec("nope:1,2,3").is_err());
        assert!(from_spec("ring:50,2,1").is_ok());
        assert!(from_spec("gnp:100,50,2,9").is_ok());
    }

    #[test]
    fn client_streams_are_valid_under_any_interleaving() {
        use owp_engine::Engine;
        let problem = from_spec("ba:120,3,2,7").expect("spec");
        let clients = 3;
        let streams: Vec<_> =
            (0..clients).map(|c| client_stream(&problem, c, clients, 40)).collect();
        // Round-robin interleave one event at a time — harsher than any
        // real batching — and apply in a single engine.
        let mut engine = Engine::new(problem);
        let mut idx = vec![0usize; clients];
        let mut merged = Vec::new();
        loop {
            let mut progressed = false;
            for (c, stream) in streams.iter().enumerate() {
                if idx[c] < stream.len() {
                    merged.push(stream[idx[c]].clone());
                    idx[c] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for chunk in merged.chunks(7) {
            engine.apply_batch(chunk).expect("valid interleaving");
        }
        engine.certify().expect("certified");
        // Self-inverse: everything returned to the initial state.
        assert_eq!(engine.epoch().0 as usize, (merged.len() + 6) / 7);
    }
}
