//! A small blocking client for the matchd wire protocol.
//!
//! One `MatchdClient` wraps one TCP connection; the protocol is strict
//! request/response, so a client is cheap and callers wanting
//! concurrency open several. Used by `matchd_bench`, the E23
//! experiment, and the integration tests.

use crate::codec::{self, CodecError, Frame, PROTO_VERSION};
use owp_engine::EngineEvent;
use std::net::{TcpStream, ToSocketAddrs};

/// Result of a submission attempt, mirroring the three server answers.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitOutcome {
    /// Applied and WAL-durable at this epoch.
    Accepted {
        /// Epoch of the batch the submission landed in.
        epoch: u64,
    },
    /// Admission control turned the submission away; retry later.
    Busy {
        /// Server's suggested backoff.
        retry_after_ms: u32,
    },
    /// The engine refused the events (or the daemon is stopping).
    Rejected {
        /// Human-readable reason from the server.
        error: String,
    },
}

/// Snapshot of the daemon's published aggregate state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochInfo {
    /// Engine epoch of the published view.
    pub epoch: u64,
    /// ΣS over active peers.
    pub sigma_s: f64,
    /// Active node count.
    pub active: u32,
    /// Matched edge count.
    pub matched: u32,
}

/// A connected, handshaken client.
pub struct MatchdClient {
    stream: TcpStream,
    /// Server epoch at handshake time.
    pub hello_epoch: u64,
    /// Universe size the server reported.
    pub nodes: u32,
}

impl MatchdClient {
    /// Connects and performs the `HELLO`/`WELCOME` handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<MatchdClient, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
        let _ = stream.set_nodelay(true);
        codec::write_frame(&mut stream, &Frame::Hello { proto: PROTO_VERSION })
            .map_err(|e| format!("handshake send failed: {e}"))?;
        match codec::read_frame(&mut stream) {
            Ok(Frame::Welcome { epoch, nodes, .. }) => {
                Ok(MatchdClient { stream, hello_epoch: epoch, nodes })
            }
            Ok(Frame::Rejected { error }) => Err(format!("server rejected handshake: {error}")),
            Ok(other) => Err(format!("unexpected {} frame in handshake", other.kind_label())),
            Err(e) => Err(format!("handshake read failed: {e}")),
        }
    }

    fn call(&mut self, frame: &Frame) -> Result<Frame, String> {
        codec::write_frame(&mut self.stream, frame).map_err(|e| format!("send failed: {e}"))?;
        match codec::read_frame(&mut self.stream) {
            Ok(f) => Ok(f),
            Err(CodecError::Eof) => Err("server closed the connection".into()),
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    /// Submits a batch of events; blocks until the server acknowledges.
    pub fn submit(&mut self, events: &[EngineEvent]) -> Result<SubmitOutcome, String> {
        match self.call(&Frame::Submit { events: events.to_vec() })? {
            Frame::Accepted { epoch } => Ok(SubmitOutcome::Accepted { epoch }),
            Frame::Busy { retry_after_ms } => Ok(SubmitOutcome::Busy { retry_after_ms }),
            Frame::Rejected { error } => Ok(SubmitOutcome::Rejected { error }),
            other => Err(format!("unexpected {} reply to SUBMIT", other.kind_label())),
        }
    }

    /// Submits with bounded retry on `BUSY`, sleeping the server's hint.
    pub fn submit_with_retry(
        &mut self,
        events: &[EngineEvent],
        max_retries: usize,
    ) -> Result<SubmitOutcome, String> {
        let mut tries = 0;
        loop {
            match self.submit(events)? {
                SubmitOutcome::Busy { retry_after_ms } if tries < max_retries => {
                    tries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(retry_after_ms as u64));
                }
                outcome => return Ok(outcome),
            }
        }
    }

    /// The node's matched peers from the published view.
    pub fn my_matches(&mut self, node: u32) -> Result<(u64, Vec<u32>), String> {
        match self.call(&Frame::QueryMatches { node })? {
            Frame::Matches { epoch, peers } => Ok((epoch, peers)),
            other => Err(format!("unexpected {} reply to QUERY_MATCHES", other.kind_label())),
        }
    }

    /// The node's satisfaction from the published view.
    pub fn satisfaction(&mut self, node: u32) -> Result<(u64, f64), String> {
        match self.call(&Frame::QuerySatisfaction { node })? {
            Frame::Satisfaction { epoch, value } => Ok((epoch, value)),
            other => Err(format!("unexpected {} reply to QUERY_SAT", other.kind_label())),
        }
    }

    /// Epoch + aggregate stats of the published view.
    pub fn epoch(&mut self) -> Result<EpochInfo, String> {
        match self.call(&Frame::QueryEpoch)? {
            Frame::EpochInfo { epoch, sigma_s, active, matched } => {
                Ok(EpochInfo { epoch, sigma_s, active, matched })
            }
            other => Err(format!("unexpected {} reply to QUERY_EPOCH", other.kind_label())),
        }
    }

    /// The daemon's metrics registry as a JSON document.
    pub fn metrics_json(&mut self) -> Result<String, String> {
        match self.call(&Frame::QueryMetrics)? {
            Frame::Metrics { json } => Ok(json),
            other => Err(format!("unexpected {} reply to QUERY_METRICS", other.kind_label())),
        }
    }

    /// Asks the daemon to shut down gracefully; returns its final epoch.
    pub fn shutdown(&mut self) -> Result<u64, String> {
        match self.call(&Frame::Shutdown)? {
            Frame::Bye { epoch } => Ok(epoch),
            other => Err(format!("unexpected {} reply to SHUTDOWN", other.kind_label())),
        }
    }
}
