//! The matchd daemon binary.
//!
//! ```text
//! matchd --addr 127.0.0.1:7311 --universe ba:2000,3,2,42 --data-dir /var/lib/matchd \
//!        [--batch-max 256] [--linger-us 2000] [--queue-cap 1024] \
//!        [--snapshot-every 256] [--fsync always|snapshot|never] \
//!        [--port-file PATH] [--trace-out PATH] \
//!        [--ops-addr HOST:PORT] [--ops-port-file PATH] \
//!        [--audit-every-ms N] [--spool-dir DIR] [--ready-watermark PCT]
//! ```
//!
//! Recovers the data directory (certifying the result), then serves
//! until a client sends SHUTDOWN — or the process receives SIGTERM or
//! SIGINT, which trigger the *same* graceful drain (flush pending
//! batches, final snapshot, WAL fsync) and exit 0. `--port-file` writes
//! the bound port (useful with `--addr 127.0.0.1:0`) once the daemon is
//! accepting, so scripts can wait on the file instead of racing the
//! bind; `--ops-port-file` does the same for the admin endpoint.
//!
//! `--ops-addr` turns on the live operations plane: `GET /metrics`,
//! `/healthz`, `/readyz`, `/status` over HTTP/1.0, plus the continuous
//! auditor (every `--audit-every-ms`, default 200) that spools a
//! forensic bundle to `--spool-dir` and latches `/readyz` to 503 on any
//! invariant violation.
//!
//! Exit codes: 0 clean shutdown with certified final state; 1 certify
//! failure at shutdown; 2 bad usage or startup failure.

use owp_matchd::{Matchd, MatchdConfig};
use owp_metrics::MetricsRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: matchd --addr HOST:PORT --universe SPEC --data-dir DIR\n\
         \x20                [--batch-max N] [--linger-us N] [--queue-cap N]\n\
         \x20                [--snapshot-every N] [--fsync always|snapshot|never]\n\
         \x20                [--port-file PATH] [--trace-out PATH]\n\
         \x20                [--ops-addr HOST:PORT] [--ops-port-file PATH]\n\
         \x20                [--audit-every-ms N] [--spool-dir DIR] [--ready-watermark PCT]\n\
         universe specs: ba:n,m,b,seed | gnp:n,milli_p,b,seed | ring:n,b,seed"
    );
    std::process::exit(2);
}

/// Set by the signal handler; polled by the watcher thread. A handler
/// may only do async-signal-safe work — storing a relaxed atomic is.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGTERM and SIGINT via libc's `signal(2)`
/// (std links libc already; the workspace vendors no libc crate). The
/// daemon lib forbids `unsafe`; this binary is the one place process
/// plumbing is allowed, mirroring `owp-bench`'s alloc shim.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut universe_spec = None;
    let mut data_dir = None;
    let mut batch_max = 256usize;
    let mut linger_us = 2000u64;
    let mut queue_cap = 1024usize;
    let mut snapshot_every = 256u64;
    let mut fsync = owp_matchd::FsyncPolicy::OnSnapshot;
    let mut port_file: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut ops_addr: Option<String> = None;
    let mut ops_port_file: Option<String> = None;
    let mut audit_every_ms = 200u64;
    let mut spool_dir: Option<String> = None;
    let mut ready_watermark = 90u32;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--universe" => universe_spec = Some(value()),
            "--data-dir" => data_dir = Some(value()),
            "--batch-max" => batch_max = value().parse().unwrap_or_else(|_| usage()),
            "--linger-us" => linger_us = value().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => queue_cap = value().parse().unwrap_or_else(|_| usage()),
            "--snapshot-every" => snapshot_every = value().parse().unwrap_or_else(|_| usage()),
            "--fsync" => {
                fsync = owp_matchd::FsyncPolicy::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("matchd: {e}");
                    std::process::exit(2);
                })
            }
            "--port-file" => port_file = Some(value()),
            "--trace-out" => trace_out = Some(value()),
            "--ops-addr" => ops_addr = Some(value()),
            "--ops-port-file" => ops_port_file = Some(value()),
            "--audit-every-ms" => audit_every_ms = value().parse().unwrap_or_else(|_| usage()),
            "--spool-dir" => spool_dir = Some(value()),
            "--ready-watermark" => {
                ready_watermark = value().parse().unwrap_or_else(|_| usage());
                if ready_watermark == 0 || ready_watermark > 100 {
                    eprintln!("matchd: --ready-watermark wants a percentage in 1..=100");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("matchd: unknown flag {other:?}");
                usage();
            }
        }
    }
    let (addr, spec, dir) = match (addr, universe_spec, data_dir) {
        (Some(a), Some(s), Some(d)) => (a, s, d),
        _ => usage(),
    };

    let universe = owp_matchd::from_spec(&spec).unwrap_or_else(|e| {
        eprintln!("matchd: {e}");
        std::process::exit(2);
    });
    let mut config = MatchdConfig::new(&dir);
    config.max_batch = batch_max;
    config.max_linger = Duration::from_micros(linger_us);
    config.queue_capacity = queue_cap;
    config.snapshot_every = snapshot_every;
    config.fsync = fsync;
    config.trace = trace_out.is_some();
    config.ops_addr = ops_addr;
    config.audit_every = Duration::from_millis(audit_every_ms.max(1));
    config.spool_dir = spool_dir.map(Into::into);
    config.ready_watermark = ready_watermark as f64 / 100.0;

    let registry = MetricsRegistry::new();
    let daemon = match Matchd::start(addr.as_str(), &universe, config, registry) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("matchd: startup failed: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "matchd: recovered epoch {} ({} WAL records replayed, {} torn bytes truncated), certified",
        daemon.recovered_epoch, daemon.replayed, daemon.torn_bytes
    );
    let local = daemon.local_addr();
    if let Some(pf) = &port_file {
        // Written only after the daemon certified and bound — scripts
        // may treat the file's existence as "ready".
        if let Err(e) = std::fs::write(pf, format!("{}\n", local.port())) {
            eprintln!("matchd: cannot write port file {pf}: {e}");
            std::process::exit(2);
        }
    }
    if let Some(ops) = daemon.ops_addr() {
        println!("matchd: ops plane on {ops}");
        if let Some(pf) = &ops_port_file {
            if let Err(e) = std::fs::write(pf, format!("{}\n", ops.port())) {
                eprintln!("matchd: cannot write ops port file {pf}: {e}");
                std::process::exit(2);
            }
        }
    }
    println!("matchd: serving {spec} on {local}");

    // SIGTERM/SIGINT get the client-SHUTDOWN treatment: a watcher
    // thread polls the handler's flag and asks the engine owner for the
    // same drain → snapshot → fsync sequence, so `kill <pid>` (or ^C)
    // never loses an acknowledged write. SIGKILL remains the crash
    // path that recovery certifies against.
    install_signal_handlers();
    {
        let handle = daemon.shutdown_handle();
        std::thread::Builder::new()
            .name("matchd-signals".into())
            .spawn(move || loop {
                if SIGNALED.load(Ordering::Relaxed) {
                    println!("matchd: signal received, draining");
                    handle.request_shutdown();
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            })
            .expect("cannot spawn signal watcher");
    }

    let stats = daemon.wait();
    println!(
        "matchd: shutdown at epoch {} after {} batches, sigma_s {:.6}",
        stats.epoch, stats.batches, stats.sigma_s
    );
    if let (Some(path), Some(log)) = (&trace_out, &stats.trace) {
        match std::fs::write(path, log.to_jsonl()) {
            Ok(()) => println!("matchd: wrote {} trace events to {path}", log.len()),
            Err(e) => eprintln!("matchd: cannot write trace {path}: {e}"),
        }
    }
    match stats.certify {
        Ok(()) => {
            println!("matchd: final state certified");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("matchd: FINAL STATE FAILED CERTIFICATION: {e}");
            std::process::exit(1);
        }
    }
}
