//! The matchd daemon binary.
//!
//! ```text
//! matchd --addr 127.0.0.1:7311 --universe ba:2000,3,2,42 --data-dir /var/lib/matchd \
//!        [--batch-max 256] [--linger-us 2000] [--queue-cap 1024] \
//!        [--snapshot-every 256] [--fsync always|snapshot|never] \
//!        [--port-file PATH] [--trace-out PATH]
//! ```
//!
//! Recovers the data directory (certifying the result), then serves
//! until a client sends SHUTDOWN. `--port-file` writes the bound port
//! (useful with `--addr 127.0.0.1:0`) once the daemon is accepting, so
//! scripts can wait on the file instead of racing the bind.
//!
//! Exit codes: 0 clean shutdown with certified final state; 1 certify
//! failure at shutdown; 2 bad usage or startup failure.

use owp_matchd::{Matchd, MatchdConfig};
use owp_metrics::MetricsRegistry;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: matchd --addr HOST:PORT --universe SPEC --data-dir DIR\n\
         \x20                [--batch-max N] [--linger-us N] [--queue-cap N]\n\
         \x20                [--snapshot-every N] [--fsync always|snapshot|never]\n\
         \x20                [--port-file PATH] [--trace-out PATH]\n\
         universe specs: ba:n,m,b,seed | gnp:n,milli_p,b,seed | ring:n,b,seed"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut universe_spec = None;
    let mut data_dir = None;
    let mut batch_max = 256usize;
    let mut linger_us = 2000u64;
    let mut queue_cap = 1024usize;
    let mut snapshot_every = 256u64;
    let mut fsync = owp_matchd::FsyncPolicy::OnSnapshot;
    let mut port_file: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = Some(value()),
            "--universe" => universe_spec = Some(value()),
            "--data-dir" => data_dir = Some(value()),
            "--batch-max" => batch_max = value().parse().unwrap_or_else(|_| usage()),
            "--linger-us" => linger_us = value().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => queue_cap = value().parse().unwrap_or_else(|_| usage()),
            "--snapshot-every" => snapshot_every = value().parse().unwrap_or_else(|_| usage()),
            "--fsync" => {
                fsync = owp_matchd::FsyncPolicy::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("matchd: {e}");
                    std::process::exit(2);
                })
            }
            "--port-file" => port_file = Some(value()),
            "--trace-out" => trace_out = Some(value()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("matchd: unknown flag {other:?}");
                usage();
            }
        }
    }
    let (addr, spec, dir) = match (addr, universe_spec, data_dir) {
        (Some(a), Some(s), Some(d)) => (a, s, d),
        _ => usage(),
    };

    let universe = owp_matchd::from_spec(&spec).unwrap_or_else(|e| {
        eprintln!("matchd: {e}");
        std::process::exit(2);
    });
    let mut config = MatchdConfig::new(&dir);
    config.max_batch = batch_max;
    config.max_linger = Duration::from_micros(linger_us);
    config.queue_capacity = queue_cap;
    config.snapshot_every = snapshot_every;
    config.fsync = fsync;
    config.trace = trace_out.is_some();

    let registry = MetricsRegistry::new();
    let daemon = match Matchd::start(addr.as_str(), &universe, config, registry) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("matchd: startup failed: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "matchd: recovered epoch {} ({} WAL records replayed, {} torn bytes truncated), certified",
        daemon.recovered_epoch, daemon.replayed, daemon.torn_bytes
    );
    let local = daemon.local_addr();
    if let Some(pf) = &port_file {
        // Written only after the daemon certified and bound — scripts
        // may treat the file's existence as "ready".
        if let Err(e) = std::fs::write(pf, format!("{}\n", local.port())) {
            eprintln!("matchd: cannot write port file {pf}: {e}");
            std::process::exit(2);
        }
    }
    println!("matchd: serving {spec} on {local}");

    let stats = daemon.wait();
    println!(
        "matchd: shutdown at epoch {} after {} batches, sigma_s {:.6}",
        stats.epoch, stats.batches, stats.sigma_s
    );
    if let (Some(path), Some(log)) = (&trace_out, &stats.trace) {
        match std::fs::write(path, log.to_jsonl()) {
            Ok(()) => println!("matchd: wrote {} trace events to {path}", log.len()),
            Err(e) => eprintln!("matchd: cannot write trace {path}: {e}"),
        }
    }
    match stats.certify {
        Ok(()) => {
            println!("matchd: final state certified");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("matchd: FINAL STATE FAILED CERTIFICATION: {e}");
            std::process::exit(1);
        }
    }
}
