//! The length-prefixed binary wire format (DESIGN.md §13).
//!
//! Every frame on the wire — client→daemon requests, daemon→client
//! responses, and (with an epoch header added) WAL records — is
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC32 of payload][payload]
//! ```
//!
//! The payload's first byte is the frame tag; everything after it is
//! tag-specific, little-endian, with explicit counts before every list.
//! Three properties are load-bearing:
//!
//! * **Bounded**: the length prefix is checked against [`MAX_FRAME`]
//!   *before* any allocation, and every list count inside a payload is
//!   checked against the bytes actually remaining, so a hostile frame can
//!   neither over-read nor force an oversized allocation.
//! * **Checksummed**: the CRC32 (IEEE, reflected 0xEDB88320) rejects
//!   bit-flips before the payload parser ever runs — the same code path
//!   that makes WAL torn-tail detection possible.
//! * **Total**: decoding is a total function into `Result` — malformed
//!   input yields a structured [`CodecError`], never a panic
//!   (`tests/codec_robustness.rs` fuzzes this).

use owp_engine::EngineEvent;
use owp_graph::NodeId;
use std::io::{Read, Write};

/// Wire protocol version carried in `HELLO`/`WELCOME`.
pub const PROTO_VERSION: u32 = 1;

/// Hard ceiling on a frame payload (4 MiB). Anything larger is rejected
/// from the length prefix alone, before allocation.
pub const MAX_FRAME: u32 = 4 << 20;

/// Bytes of framing overhead per record: length + CRC.
pub const FRAME_HEADER: u64 = 8;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven. The
// table is computed at compile time — no runtime init, no dependency.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 checksum of `bytes` (IEEE, the zlib/Ethernet polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Structured decode failure. Every malformed input maps to one of these;
/// the decoder never panics and never reads past the declared length.
#[derive(Debug)]
pub enum CodecError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Eof,
    /// An I/O error from the underlying stream.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The ceiling it violated.
        max: u32,
    },
    /// The payload does not match its CRC32.
    Corrupt {
        /// CRC from the header.
        expected: u32,
        /// CRC of the bytes actually read.
        got: u32,
    },
    /// The payload ended before a field it declared.
    Truncated {
        /// Which field was being read.
        what: &'static str,
    },
    /// Unknown frame or event tag byte.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// Structurally invalid payload (e.g. trailing bytes, bad count).
    Malformed {
        /// What was wrong.
        what: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Eof => write!(f, "connection closed"),
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            CodecError::Corrupt { expected, got } => {
                write!(f, "payload CRC mismatch: header says {expected:#010x}, bytes hash to {got:#010x}")
            }
            CodecError::Truncated { what } => write!(f, "payload truncated reading {what}"),
            CodecError::UnknownTag { tag } => write!(f, "unknown tag byte {tag:#04x}"),
            CodecError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Every message of the matchd wire protocol, requests and responses.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client handshake: the protocol version it speaks.
    Hello {
        /// Client's [`PROTO_VERSION`].
        proto: u32,
    },
    /// Daemon handshake reply.
    Welcome {
        /// Daemon's [`PROTO_VERSION`].
        proto: u32,
        /// Published-view epoch at accept time.
        epoch: u64,
        /// Universe node count (so clients can validate node ids).
        nodes: u32,
    },
    /// A batch of engine events to ingest (the write path).
    Submit {
        /// Events, applied in order.
        events: Vec<EngineEvent>,
    },
    /// Submit succeeded: the batch is applied and WAL-appended.
    Accepted {
        /// Engine epoch whose state includes this submission.
        epoch: u64,
    },
    /// Admission control refused the submission: the bounded ingest queue
    /// is full. Retry after the hinted backoff.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The engine refused the submission (validation error); the engine
    /// state is untouched by it.
    Rejected {
        /// The [`owp_engine::EngineError`] rendered as text.
        error: String,
    },
    /// Read query: a node's current matches.
    QueryMatches {
        /// The node asking.
        node: u32,
    },
    /// Reply to [`Frame::QueryMatches`], from the epoch-stamped view.
    Matches {
        /// View epoch the answer is consistent with.
        epoch: u64,
        /// Matched peer ids.
        peers: Vec<u32>,
    },
    /// Read query: a node's satisfaction `S_i`.
    QuerySatisfaction {
        /// The node asking.
        node: u32,
    },
    /// Reply to [`Frame::QuerySatisfaction`].
    Satisfaction {
        /// View epoch the answer is consistent with.
        epoch: u64,
        /// `S_i` (0 for inactive or unknown nodes).
        value: f64,
    },
    /// Read query: global view coordinates.
    QueryEpoch,
    /// Reply to [`Frame::QueryEpoch`].
    EpochInfo {
        /// View epoch.
        epoch: u64,
        /// ΣS over active peers.
        sigma_s: f64,
        /// Active node count.
        active: u32,
        /// Matched edge count.
        matched: u32,
    },
    /// Read query: a full metrics snapshot.
    QueryMetrics,
    /// Reply to [`Frame::QueryMetrics`]: `MetricsSnapshot::to_json()`.
    Metrics {
        /// The JSON document.
        json: String,
    },
    /// Administrative: flush, snapshot, and stop the daemon.
    Shutdown,
    /// Daemon acknowledges [`Frame::Shutdown`]; sent before exit.
    Bye {
        /// Final engine epoch.
        epoch: u64,
    },
}

impl Frame {
    /// Stable label for telemetry (`WireFrameReceived`/`WireFrameSent`
    /// message kinds) and summaries.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "HELLO",
            Frame::Welcome { .. } => "WELCOME",
            Frame::Submit { .. } => "SUBMIT",
            Frame::Accepted { .. } => "ACCEPTED",
            Frame::Busy { .. } => "BUSY",
            Frame::Rejected { .. } => "REJECTED",
            Frame::QueryMatches { .. } => "QUERY_MATCHES",
            Frame::Matches { .. } => "MATCHES",
            Frame::QuerySatisfaction { .. } => "QUERY_SAT",
            Frame::Satisfaction { .. } => "SAT",
            Frame::QueryEpoch => "QUERY_EPOCH",
            Frame::EpochInfo { .. } => "EPOCH",
            Frame::QueryMetrics => "QUERY_METRICS",
            Frame::Metrics { .. } => "METRICS",
            Frame::Shutdown => "SHUTDOWN",
            Frame::Bye { .. } => "BYE",
        }
    }
}

// Payload tag bytes. Requests are < 0x80, responses >= 0x80.
const T_HELLO: u8 = 0x01;
const T_SUBMIT: u8 = 0x02;
const T_QUERY_MATCHES: u8 = 0x03;
const T_QUERY_SAT: u8 = 0x04;
const T_QUERY_EPOCH: u8 = 0x05;
const T_QUERY_METRICS: u8 = 0x06;
const T_SHUTDOWN: u8 = 0x07;
const T_WELCOME: u8 = 0x81;
const T_ACCEPTED: u8 = 0x82;
const T_BUSY: u8 = 0x83;
const T_REJECTED: u8 = 0x84;
const T_MATCHES: u8 = 0x85;
const T_SAT: u8 = 0x86;
const T_EPOCH: u8 = 0x87;
const T_METRICS: u8 = 0x88;
const T_BYE: u8 = 0x89;

// Event tag bytes (shared with the WAL payload format).
const E_JOIN: u8 = 0;
const E_LEAVE: u8 = 1;
const E_EDGE_ADD: u8 = 2;
const E_EDGE_REMOVE: u8 = 3;
const E_QUOTA: u8 = 4;
const E_PREFS: u8 = 5;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends one event in the binary event format (also the WAL's).
pub(crate) fn put_event(buf: &mut Vec<u8>, ev: &EngineEvent) {
    match ev {
        EngineEvent::NodeJoin { node } => {
            buf.push(E_JOIN);
            put_u32(buf, node.0);
        }
        EngineEvent::NodeLeave { node } => {
            buf.push(E_LEAVE);
            put_u32(buf, node.0);
        }
        EngineEvent::EdgeAdd { u, v } => {
            buf.push(E_EDGE_ADD);
            put_u32(buf, u.0);
            put_u32(buf, v.0);
        }
        EngineEvent::EdgeRemove { u, v } => {
            buf.push(E_EDGE_REMOVE);
            put_u32(buf, u.0);
            put_u32(buf, v.0);
        }
        EngineEvent::QuotaChange { node, quota } => {
            buf.push(E_QUOTA);
            put_u32(buf, node.0);
            put_u32(buf, *quota);
        }
        EngineEvent::PreferenceUpdate { node, list } => {
            buf.push(E_PREFS);
            put_u32(buf, node.0);
            put_u32(buf, list.len() as u32);
            for p in list {
                put_u32(buf, p.0);
            }
        }
    }
}

/// Serializes a frame payload (tag + body, no length/CRC header).
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut b = Vec::with_capacity(16);
    match frame {
        Frame::Hello { proto } => {
            b.push(T_HELLO);
            put_u32(&mut b, *proto);
        }
        Frame::Welcome { proto, epoch, nodes } => {
            b.push(T_WELCOME);
            put_u32(&mut b, *proto);
            put_u64(&mut b, *epoch);
            put_u32(&mut b, *nodes);
        }
        Frame::Submit { events } => {
            b.push(T_SUBMIT);
            put_u32(&mut b, events.len() as u32);
            for ev in events {
                put_event(&mut b, ev);
            }
        }
        Frame::Accepted { epoch } => {
            b.push(T_ACCEPTED);
            put_u64(&mut b, *epoch);
        }
        Frame::Busy { retry_after_ms } => {
            b.push(T_BUSY);
            put_u32(&mut b, *retry_after_ms);
        }
        Frame::Rejected { error } => {
            b.push(T_REJECTED);
            put_str(&mut b, error);
        }
        Frame::QueryMatches { node } => {
            b.push(T_QUERY_MATCHES);
            put_u32(&mut b, *node);
        }
        Frame::Matches { epoch, peers } => {
            b.push(T_MATCHES);
            put_u64(&mut b, *epoch);
            put_u32(&mut b, peers.len() as u32);
            for p in peers {
                put_u32(&mut b, *p);
            }
        }
        Frame::QuerySatisfaction { node } => {
            b.push(T_QUERY_SAT);
            put_u32(&mut b, *node);
        }
        Frame::Satisfaction { epoch, value } => {
            b.push(T_SAT);
            put_u64(&mut b, *epoch);
            put_f64(&mut b, *value);
        }
        Frame::QueryEpoch => b.push(T_QUERY_EPOCH),
        Frame::EpochInfo { epoch, sigma_s, active, matched } => {
            b.push(T_EPOCH);
            put_u64(&mut b, *epoch);
            put_f64(&mut b, *sigma_s);
            put_u32(&mut b, *active);
            put_u32(&mut b, *matched);
        }
        Frame::QueryMetrics => b.push(T_QUERY_METRICS),
        Frame::Metrics { json } => {
            b.push(T_METRICS);
            put_str(&mut b, json);
        }
        Frame::Shutdown => b.push(T_SHUTDOWN),
        Frame::Bye { epoch } => {
            b.push(T_BYE);
            put_u64(&mut b, *epoch);
        }
    }
    b
}

/// Wraps a payload in the on-wire header: `[len][crc][payload]`.
pub fn frame_bytes(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame to `w` (header + payload, single `write_all`).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame_bytes(frame))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over a payload slice. Every read is checked
/// against the remaining bytes; nothing ever indexes past the end.
pub(crate) struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(b: &'a [u8]) -> Self {
        Cur { b, p: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.p
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { what });
        }
        let s = &self.b[self.p..self.p + n];
        self.p += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed { what })
    }

    /// A declared element count, sanity-checked against the bytes left
    /// (`min_elem` = smallest possible encoding of one element) so a
    /// hostile count can't force a huge allocation.
    fn count(&mut self, min_elem: usize, what: &'static str) -> Result<usize, CodecError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem) > self.remaining() {
            return Err(CodecError::Truncated { what });
        }
        Ok(n)
    }

    pub(crate) fn done(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed { what: "trailing bytes after frame" })
        }
    }
}

fn get_event(cur: &mut Cur<'_>) -> Result<EngineEvent, CodecError> {
    let tag = cur.u8("event tag")?;
    Ok(match tag {
        E_JOIN => EngineEvent::NodeJoin { node: NodeId(cur.u32("join node")?) },
        E_LEAVE => EngineEvent::NodeLeave { node: NodeId(cur.u32("leave node")?) },
        E_EDGE_ADD => EngineEvent::EdgeAdd {
            u: NodeId(cur.u32("edge endpoint")?),
            v: NodeId(cur.u32("edge endpoint")?),
        },
        E_EDGE_REMOVE => EngineEvent::EdgeRemove {
            u: NodeId(cur.u32("edge endpoint")?),
            v: NodeId(cur.u32("edge endpoint")?),
        },
        E_QUOTA => EngineEvent::QuotaChange {
            node: NodeId(cur.u32("quota node")?),
            quota: cur.u32("quota value")?,
        },
        E_PREFS => {
            let node = NodeId(cur.u32("prefs node")?);
            let n = cur.count(4, "preference list")?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(NodeId(cur.u32("preference entry")?));
            }
            EngineEvent::PreferenceUpdate { node, list }
        }
        tag => return Err(CodecError::UnknownTag { tag }),
    })
}

/// Decodes a batch of events from a payload slice — shared with the WAL
/// record format. Returns the events and requires the slice be fully
/// consumed when `exact` is set.
pub(crate) fn get_events(cur: &mut Cur<'_>) -> Result<Vec<EngineEvent>, CodecError> {
    let n = cur.count(1, "event count")?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(get_event(cur)?);
    }
    Ok(events)
}

/// Parses a payload (tag + body) into a [`Frame`]. Total: every failure
/// is a structured [`CodecError`].
pub fn decode_payload(payload: &[u8]) -> Result<Frame, CodecError> {
    let mut cur = Cur::new(payload);
    let tag = cur.u8("frame tag")?;
    let frame = match tag {
        T_HELLO => Frame::Hello { proto: cur.u32("proto")? },
        T_WELCOME => Frame::Welcome {
            proto: cur.u32("proto")?,
            epoch: cur.u64("epoch")?,
            nodes: cur.u32("nodes")?,
        },
        T_SUBMIT => Frame::Submit { events: get_events(&mut cur)? },
        T_ACCEPTED => Frame::Accepted { epoch: cur.u64("epoch")? },
        T_BUSY => Frame::Busy { retry_after_ms: cur.u32("retry_after_ms")? },
        T_REJECTED => Frame::Rejected { error: cur.str("error text")? },
        T_QUERY_MATCHES => Frame::QueryMatches { node: cur.u32("node")? },
        T_MATCHES => {
            let epoch = cur.u64("epoch")?;
            let n = cur.count(4, "peer list")?;
            let mut peers = Vec::with_capacity(n);
            for _ in 0..n {
                peers.push(cur.u32("peer id")?);
            }
            Frame::Matches { epoch, peers }
        }
        T_QUERY_SAT => Frame::QuerySatisfaction { node: cur.u32("node")? },
        T_SAT => Frame::Satisfaction { epoch: cur.u64("epoch")?, value: cur.f64("value")? },
        T_QUERY_EPOCH => Frame::QueryEpoch,
        T_EPOCH => Frame::EpochInfo {
            epoch: cur.u64("epoch")?,
            sigma_s: cur.f64("sigma_s")?,
            active: cur.u32("active")?,
            matched: cur.u32("matched")?,
        },
        T_QUERY_METRICS => Frame::QueryMetrics,
        T_METRICS => Frame::Metrics { json: cur.str("metrics json")? },
        T_SHUTDOWN => Frame::Shutdown,
        T_BYE => Frame::Bye { epoch: cur.u64("epoch")? },
        tag => return Err(CodecError::UnknownTag { tag }),
    };
    cur.done()?;
    Ok(frame)
}

/// Reads one frame off `r`: header, bounds check, CRC check, payload
/// parse. A clean EOF *at a frame boundary* is [`CodecError::Eof`]; an
/// EOF mid-frame is an I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, CodecError> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < 8 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(CodecError::Eof),
            Ok(0) => {
                return Err(CodecError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CodecError::Io(e)),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(CodecError::Oversized { len, max: MAX_FRAME });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let got = crc32(&payload);
    if got != crc {
        return Err(CodecError::Corrupt { expected: crc, got });
    }
    decode_payload(&payload)
}

// Re-exported for the WAL, which frames its records identically but with
// its own payload schema.
pub(crate) use Cur as Cursor;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_frame_round_trips() {
        let frames = vec![
            Frame::Hello { proto: PROTO_VERSION },
            Frame::Welcome { proto: 1, epoch: 42, nodes: 1000 },
            Frame::Submit {
                events: vec![
                    EngineEvent::NodeLeave { node: NodeId(3) },
                    EngineEvent::NodeJoin { node: NodeId(3) },
                    EngineEvent::EdgeAdd { u: NodeId(1), v: NodeId(2) },
                    EngineEvent::EdgeRemove { u: NodeId(1), v: NodeId(2) },
                    EngineEvent::QuotaChange { node: NodeId(9), quota: 4 },
                    EngineEvent::PreferenceUpdate {
                        node: NodeId(7),
                        list: vec![NodeId(1), NodeId(5)],
                    },
                ],
            },
            Frame::Accepted { epoch: 7 },
            Frame::Busy { retry_after_ms: 3 },
            Frame::Rejected { error: "node 3 is not active".into() },
            Frame::QueryMatches { node: 11 },
            Frame::Matches { epoch: 8, peers: vec![1, 2, 3] },
            Frame::QuerySatisfaction { node: 11 },
            Frame::Satisfaction { epoch: 8, value: 0.75 },
            Frame::QueryEpoch,
            Frame::EpochInfo { epoch: 9, sigma_s: 123.5, active: 99, matched: 140 },
            Frame::QueryMetrics,
            Frame::Metrics { json: "{\"counters\":{}}".into() },
            Frame::Shutdown,
            Frame::Bye { epoch: 10 },
        ];
        for f in frames {
            let bytes = frame_bytes(&f);
            let mut cursor = std::io::Cursor::new(bytes);
            let back = read_frame(&mut cursor).expect("round trip");
            assert_eq!(back, f);
            assert_eq!(back.kind_label(), f.kind_label());
        }
    }

    #[test]
    fn eof_at_boundary_vs_mid_frame() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(CodecError::Eof)));
        let bytes = frame_bytes(&Frame::QueryEpoch);
        let mut cut = std::io::Cursor::new(bytes[..5].to_vec());
        assert!(matches!(read_frame(&mut cut), Err(CodecError::Io(_))));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = frame_bytes(&Frame::QueryEpoch);
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(CodecError::Oversized { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn bit_flip_fails_crc() {
        let mut bytes = frame_bytes(&Frame::Accepted { epoch: 1 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn hostile_count_is_truncated_not_alloc() {
        // A Submit claiming 2^31 events in a 9-byte payload.
        let mut payload = vec![T_SUBMIT];
        payload.extend_from_slice(&(1u32 << 31).to_le_bytes());
        payload.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            decode_payload(&payload),
            Err(CodecError::Truncated { .. })
        ));
    }
}
