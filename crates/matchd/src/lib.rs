//! # owp-matchd — a durable matchmaking daemon
//!
//! Long-running server wrapping [`owp_engine::Engine`]: peers stream
//! [`owp_engine::EngineEvent`]s over TCP, the daemon batches them
//! adaptively, repairs the b-matching incrementally, and answers
//! queries (my matches, satisfaction, epoch, metrics) from an
//! epoch-stamped published view concurrently with repair. Durability is
//! first-class — an append-only CRC-framed WAL plus periodic atomic
//! snapshots, and crash recovery **certifies** (bit-identity with a
//! from-scratch `lic()`) before the daemon will serve.
//!
//! Everything is `std` only: `std::net` sockets, a thread per
//! connection, `std::sync::mpsc` bounded channels. No async runtime.
//!
//! Modules, in dependency order:
//!
//! * [`codec`] — length-prefixed, CRC32-checked wire frames;
//! * [`wal`] — the write-ahead log, torn-tail tolerant;
//! * [`snapshot`] — atomic `OriginSnapshot` persistence;
//! * [`recovery`] — snapshot + WAL → certified engine;
//! * [`universe`] — deterministic universe specs and client workloads;
//! * [`http`] — a minimal HTTP/1.0 codec for the admin endpoint;
//! * [`server`] — the daemon itself;
//! * [`ops`] — the live operations plane (admin endpoint, continuous
//!   auditor, slow-request ring);
//! * [`client`] — a small blocking client.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod http;
pub mod ops;
pub mod recovery;
pub mod server;
pub mod snapshot;
pub mod universe;
pub mod wal;

pub use client::{EpochInfo, MatchdClient, SubmitOutcome};
pub use codec::{CodecError, Frame, PROTO_VERSION};
pub use ops::{OpsStatus, SlowSpan, SLOW_RING_CAPACITY};
pub use recovery::{recover, Recovery, WAL_FILE};
pub use server::{Matchd, MatchdConfig, MatchdStats, ShutdownHandle, View};
pub use snapshot::{load_snapshot_file, LoadedSnapshot, SnapshotStore, SNAPSHOT_FILE};
pub use universe::{client_stream, from_spec};
pub use wal::{FsyncPolicy, Wal, WalRecord, WalSummary};
