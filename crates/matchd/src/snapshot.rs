//! Durable `DynamicProblem` snapshots (DESIGN.md §13).
//!
//! A snapshot file is one CRC-framed record — `[u32 len][u32 crc]`
//! followed by `[u64 epoch]` and the `OriginSnapshot` JSON from
//! `owp-engine` — written to a temp file, synced, then atomically
//! renamed over `snapshot.bin`. Readers therefore see either the old
//! snapshot or the new one, never a torn mix, and the CRC catches bit
//! rot after the fact. Recovery restores the snapshot with
//! [`owp_engine::Engine::from_snapshot`] and replays WAL records with
//! epochs beyond it.

use crate::codec::{self, FRAME_HEADER};
use owp_engine::OriginSnapshot;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File name of the current snapshot inside a matchd data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// A parsed snapshot: the epoch it was taken at plus the full instance.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedSnapshot {
    /// Engine epoch at capture time.
    pub epoch: u64,
    /// The serialized dynamic instance.
    pub origin: OriginSnapshot,
}

/// Reads and verifies a snapshot file. Structured errors, never a panic.
pub fn load_snapshot_file(path: &Path) -> Result<LoadedSnapshot, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
    if bytes.len() < FRAME_HEADER as usize {
        return Err(format!("snapshot {} is too short to hold a header", path.display()));
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if bytes.len() != FRAME_HEADER as usize + len {
        return Err(format!(
            "snapshot {} declares {len} payload bytes but holds {}",
            path.display(),
            bytes.len() - FRAME_HEADER as usize
        ));
    }
    let payload = &bytes[FRAME_HEADER as usize..];
    let got = codec::crc32(payload);
    if got != crc {
        return Err(format!(
            "snapshot {} fails its CRC (header {crc:#010x}, payload {got:#010x})",
            path.display()
        ));
    }
    if payload.len() < 8 {
        return Err(format!("snapshot {} payload lacks the epoch header", path.display()));
    }
    let epoch = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
    let doc = std::str::from_utf8(&payload[8..])
        .map_err(|_| format!("snapshot {} body is not UTF-8", path.display()))?;
    let origin = OriginSnapshot::parse(doc)?;
    Ok(LoadedSnapshot { epoch, origin })
}

/// The snapshot slot of one data directory.
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Store rooted at `dir` (created on first save).
    pub fn new(dir: &Path) -> SnapshotStore {
        SnapshotStore { dir: dir.to_path_buf() }
    }

    /// Path of the current snapshot file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Writes a snapshot durably: temp file, `fsync`, atomic rename.
    pub fn save(&self, epoch: u64, origin: &OriginSnapshot) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let doc = origin.to_json();
        let mut payload = Vec::with_capacity(8 + doc.len());
        codec::put_u64(&mut payload, epoch);
        payload.extend_from_slice(doc.as_bytes());
        let mut bytes = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
        codec::put_u32(&mut bytes, payload.len() as u32);
        codec::put_u32(&mut bytes, codec::crc32(&payload));
        bytes.extend_from_slice(&payload);
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        {
            let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.path())
    }

    /// Loads the current snapshot; `Ok(None)` when none exists yet.
    pub fn load(&self) -> Result<Option<LoadedSnapshot>, String> {
        let path = self.path();
        if !path.exists() {
            return Ok(None);
        }
        load_snapshot_file(&path).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_engine::DynamicProblem;
    use owp_matching::Problem;
    use rand::{rngs::StdRng, SeedableRng};

    fn dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("owp-snap-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_round_trips() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = owp_graph::generators::barabasi_albert(60, 3, &mut rng);
        let problem = Problem::random_over(g, 2, 7);
        let dp = DynamicProblem::new(problem);
        let origin = OriginSnapshot::capture(&dp);
        let store = SnapshotStore::new(&dir("roundtrip"));
        store.save(17, &origin).expect("save");
        let loaded = store.load().expect("load").expect("present");
        assert_eq!(loaded.epoch, 17);
        assert_eq!(loaded.origin, origin);
        // And it restores to a bit-identical dynamic instance.
        let back = loaded.origin.restore().expect("restore");
        assert_eq!(OriginSnapshot::capture(&back), origin);
    }

    #[test]
    fn corrupt_snapshot_is_a_structured_error() {
        let d = dir("corrupt");
        let mut rng = StdRng::seed_from_u64(5);
        let g = owp_graph::generators::barabasi_albert(30, 2, &mut rng);
        let problem = Problem::random_over(g, 2, 7);
        let dp = DynamicProblem::new(problem);
        let store = SnapshotStore::new(&d);
        store.save(3, &OriginSnapshot::capture(&dp)).expect("save");
        let path = store.path();
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).expect("write");
        let err = store.load().expect_err("must fail");
        assert!(err.contains("CRC"), "{err}");
        assert!(store.load().is_err());
    }

    #[test]
    fn missing_snapshot_is_none() {
        let store = SnapshotStore::new(&dir("missing-nonexistent"));
        assert!(store.load().expect("ok").is_none());
    }
}
