//! Fuzz-ish robustness of the wire codec: a seeded mutation loop feeds
//! truncated, bit-flipped, length-corrupted, and garbage-extended
//! frames to `read_frame` and asserts every outcome is a *structured*
//! `CodecError` — never a panic, never an over-read, never a hostile
//! allocation. Deterministic (fixed seed), so a failure reproduces.

use owp_engine::EngineEvent;
use owp_graph::NodeId;
use owp_matchd::codec::{frame_bytes, read_frame, CodecError, Frame, MAX_FRAME};
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

fn corpus() -> Vec<Frame> {
    let events = vec![
        EngineEvent::NodeJoin { node: NodeId(3) },
        EngineEvent::NodeLeave { node: NodeId(4) },
        EngineEvent::EdgeAdd { u: NodeId(1), v: NodeId(2) },
        EngineEvent::EdgeRemove { u: NodeId(2), v: NodeId(5) },
        EngineEvent::QuotaChange { node: NodeId(6), quota: 4 },
        EngineEvent::PreferenceUpdate { node: NodeId(7), list: vec![NodeId(1), NodeId(9)] },
    ];
    vec![
        Frame::Hello { proto: 1 },
        Frame::Welcome { proto: 1, epoch: 42, nodes: 1000 },
        Frame::Submit { events },
        Frame::Accepted { epoch: 7 },
        Frame::Busy { retry_after_ms: 2 },
        Frame::Rejected { error: "unknown node 9999".into() },
        Frame::QueryMatches { node: 12 },
        Frame::Matches { epoch: 8, peers: vec![1, 2, 3] },
        Frame::QuerySatisfaction { node: 12 },
        Frame::Satisfaction { epoch: 8, value: 0.75 },
        Frame::QueryEpoch,
        Frame::EpochInfo { epoch: 9, sigma_s: 123.5, active: 900, matched: 1700 },
        Frame::QueryMetrics,
        Frame::Metrics { json: "{\"counters\":{}}".into() },
        Frame::Shutdown,
        Frame::Bye { epoch: 10 },
    ]
}

/// Decoding must return a frame or a structured error; the interesting
/// property is simply "no panic, no unbounded allocation, no hang".
fn decode_does_not_panic(bytes: &[u8]) {
    let mut cursor = std::io::Cursor::new(bytes);
    loop {
        match read_frame(&mut cursor) {
            Ok(_) => continue,       // mutation may leave a valid prefix
            Err(CodecError::Eof) => break,
            Err(_) => break,         // structured failure — fine
        }
    }
}

#[test]
fn mutated_frames_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    let corpus: Vec<Vec<u8>> = corpus().iter().map(frame_bytes).collect();
    for round in 0..2000 {
        let base = &corpus[round % corpus.len()];
        let mut bytes = base.clone();
        match round % 5 {
            // Truncate at a random point (possibly mid-header).
            0 => {
                let cut = rng.gen_range(0..bytes.len());
                bytes.truncate(cut);
            }
            // Flip a random bit anywhere (header, CRC, payload).
            1 => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
            // Corrupt the length field outright.
            2 => {
                let fake: u32 = rng.next_u32();
                bytes[0..4].copy_from_slice(&fake.to_le_bytes());
            }
            // Append garbage after a valid frame.
            3 => {
                for _ in 0..rng.gen_range(1..24usize) {
                    bytes.push(rng.next_u32() as u8);
                }
            }
            // Splice two frames mid-way through each other.
            _ => {
                let other = &corpus[rng.gen_range(0..corpus.len())];
                let cut = rng.gen_range(0..bytes.len());
                bytes.truncate(cut);
                bytes.extend_from_slice(other);
            }
        }
        decode_does_not_panic(&bytes);
    }
}

#[test]
fn oversized_lengths_fail_before_allocating() {
    // A length field of u32::MAX must be rejected from the 8 header
    // bytes alone — if the decoder tried to allocate first, this would
    // OOM long before the assert.
    for len in [MAX_FRAME + 1, u32::MAX / 2, u32::MAX] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]); // far fewer than `len` bytes
        let mut cursor = std::io::Cursor::new(&bytes);
        match read_frame(&mut cursor) {
            Err(CodecError::Oversized { len: got, max }) => {
                assert_eq!(got, len);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}

#[test]
fn hostile_element_counts_are_structured_errors() {
    // A SUBMIT whose payload claims 2^31 events in 4 bytes of body must
    // fail with Truncated, not attempt a multi-gigabyte Vec.
    let mut payload = Vec::new();
    payload.push(0x02u8); // T_SUBMIT
    payload.extend_from_slice(&0x8000_0000u32.to_le_bytes());
    payload.extend_from_slice(&[0u8; 4]);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&owp_matchd::codec::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let mut cursor = std::io::Cursor::new(&bytes);
    match read_frame(&mut cursor) {
        Err(CodecError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn valid_frames_survive_the_same_harness() {
    // Sanity for the fuzz harness itself: unmutated corpus decodes.
    for frame in corpus() {
        let bytes = frame_bytes(&frame);
        let mut cursor = std::io::Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cursor).expect("valid"), frame);
        assert!(matches!(read_frame(&mut cursor), Err(CodecError::Eof)));
    }
}
