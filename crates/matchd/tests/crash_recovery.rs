//! End-to-end durability: kill the daemon without a shutdown, reopen
//! from WAL + snapshot, and prove the recovered engine is *certified*
//! and equal (epoch exactly, ΣS to 1e-9) to a reference engine fed the
//! same acknowledged prefix. Two harnesses: an in-process abort (fast,
//! deterministic cut) and a real subprocess killed with SIGKILL.

use owp_engine::Engine;
use owp_matchd::{
    client_stream, from_spec, recover, FsyncPolicy, Matchd, MatchdClient, MatchdConfig,
    SubmitOutcome,
};
use owp_metrics::MetricsRegistry;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owp-matchd-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SPEC: &str = "ba:300,3,2,11";

fn config(dir: &PathBuf, snapshot_every: u64) -> MatchdConfig {
    let mut c = MatchdConfig::new(dir);
    c.max_linger = Duration::from_micros(200);
    c.snapshot_every = snapshot_every;
    c.fsync = FsyncPolicy::Never; // same-process reopen: no power-loss model needed
    c
}

#[test]
fn abort_recovers_certified_and_equal_to_reference() {
    let dir = scratch("abort");
    let universe = from_spec(SPEC).expect("spec");
    let daemon = Matchd::start(
        "127.0.0.1:0",
        &universe,
        config(&dir, 5),
        MetricsRegistry::new(),
    )
    .expect("start");
    let addr = daemon.local_addr();
    let mut client = MatchdClient::connect(addr).expect("connect");
    assert_eq!(client.nodes, 300);

    // Drive N acknowledged batches; every Accepted is durability-promised.
    let stream = client_stream(&universe, 0, 1, 400);
    let mut acked: Vec<owp_engine::EngineEvent> = Vec::new();
    for chunk in stream.chunks(16) {
        match client.submit_with_retry(chunk, 50).expect("submit") {
            SubmitOutcome::Accepted { .. } => acked.extend_from_slice(chunk),
            SubmitOutcome::Busy { .. } => panic!("retries exhausted"),
            SubmitOutcome::Rejected { error } => panic!("rejected: {error}"),
        }
    }
    let live_epoch = client.epoch().expect("epoch");
    // Crash: drop the daemon with no flush, no final snapshot.
    let stats = daemon.abort();
    assert!(!stats.graceful);

    // Reference: a fresh engine fed the same acknowledged prefix in the
    // same 16-event batches.
    let mut reference = Engine::new(universe.clone());
    for chunk in acked.chunks(16) {
        reference.apply_batch(chunk).expect("reference applies");
    }

    // Recover from disk. Epoch must match the reference exactly; ΣS to
    // 1e-9 (accumulation order may differ); and certify() is the
    // bit-identity proof against a from-scratch lic().
    let rec = recover(&dir, &universe, FsyncPolicy::Never).expect("recovery certifies");
    assert_eq!(rec.engine.epoch().0, reference.epoch().0);
    assert_eq!(rec.engine.epoch().0, live_epoch.epoch);
    let ds = (rec.engine.total_satisfaction() - reference.total_satisfaction()).abs();
    assert!(ds < 1e-9, "sigma_s drift {ds}");
    assert!(rec.snapshot_epoch > 0, "snapshot_every=5 over 25 batches must have fired");
    assert!(rec.engine.matching().same_edges(reference.matching()));
}

#[test]
fn torn_wal_tail_still_recovers_the_acked_prefix() {
    let dir = scratch("torn");
    let universe = from_spec(SPEC).expect("spec");
    let daemon = Matchd::start(
        "127.0.0.1:0",
        &universe,
        config(&dir, 0), // snapshots off: recovery is WAL-only
        MetricsRegistry::new(),
    )
    .expect("start");
    let addr = daemon.local_addr();
    let mut client = MatchdClient::connect(addr).expect("connect");
    let stream = client_stream(&universe, 0, 1, 200);
    let mut epochs = Vec::new();
    for chunk in stream.chunks(10) {
        if let SubmitOutcome::Accepted { epoch } =
            client.submit_with_retry(chunk, 50).expect("submit")
        {
            epochs.push(epoch);
        }
    }
    let stats = daemon.abort();
    assert!(!stats.graceful);

    // Simulate a torn write: garbage after the last complete record.
    let wal_path = dir.join(owp_matchd::WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).expect("wal");
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]);
    std::fs::write(&wal_path, &bytes).expect("write");

    let rec = recover(&dir, &universe, FsyncPolicy::Never).expect("recovery");
    assert_eq!(rec.torn_bytes, 5);
    assert_eq!(rec.engine.epoch().0, *epochs.last().expect("acked"));
    assert_eq!(rec.replayed as u64, *epochs.last().expect("acked"));
}

/// The real thing: a matchd subprocess killed with SIGKILL mid-stream,
/// then restarted over the same data dir; the restarted daemon must
/// report a certified recovery at the last acknowledged epoch.
#[test]
fn sigkill_subprocess_recovers_certified() {
    let dir = scratch("sigkill");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let port_file = dir.join("port");
    let bin = env!("CARGO_BIN_EXE_matchd");
    let spawn = |pf: &PathBuf| {
        std::process::Command::new(bin)
            .args([
                "--addr",
                "127.0.0.1:0",
                "--universe",
                SPEC,
                "--data-dir",
                dir.to_str().expect("utf8"),
                "--linger-us",
                "200",
                "--snapshot-every",
                "4",
                "--fsync",
                "always",
                "--port-file",
                pf.to_str().expect("utf8"),
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn matchd")
    };
    let wait_port = |pf: &PathBuf| -> u16 {
        for _ in 0..200 {
            if let Ok(s) = std::fs::read_to_string(pf) {
                if let Ok(p) = s.trim().parse() {
                    return p;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("daemon never wrote its port file");
    };

    let mut child = spawn(&port_file);
    let port = wait_port(&port_file);
    let universe = from_spec(SPEC).expect("spec");
    let mut client = MatchdClient::connect(("127.0.0.1", port)).expect("connect");
    let stream = client_stream(&universe, 0, 1, 240);
    let mut last_epoch = 0u64;
    for chunk in stream.chunks(12) {
        if let SubmitOutcome::Accepted { epoch } =
            client.submit_with_retry(chunk, 50).expect("submit")
        {
            last_epoch = epoch;
        }
    }
    assert!(last_epoch >= 20, "expected 20 acked batches, got {last_epoch}");
    // SIGKILL: no destructors, no flush — the crash the WAL exists for.
    child.kill().expect("kill -9");
    let _ = child.wait();

    // Restart over the same data dir; --fsync always means every acked
    // batch must still be there.
    let port_file2 = dir.join("port2");
    let child2 = spawn(&port_file2);
    let port2 = wait_port(&port_file2);
    let mut client2 = MatchdClient::connect(("127.0.0.1", port2)).expect("reconnect");
    let info = client2.epoch().expect("epoch");
    assert_eq!(info.epoch, last_epoch, "recovery lost acknowledged batches");
    client2.shutdown().expect("shutdown");
    let out = child2.wait_with_output().expect("wait");
    assert!(out.status.success(), "restarted daemon exited {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("certified"), "no certification line in: {stdout}");
    assert!(
        stdout.contains(&format!("recovered epoch {last_epoch}")),
        "expected recovered epoch {last_epoch} in: {stdout}"
    );
}

/// SIGTERM is the *graceful* twin of the SIGKILL test above: the signal
/// watcher must drain the queue, flush the WAL, cut a final snapshot,
/// certify, and exit 0 — exactly the client-SHUTDOWN sequence, so
/// `kill <pid>` (or ^C, or an orchestrator's stop) never loses an
/// acknowledged write.
#[test]
fn sigterm_subprocess_drains_and_exits_zero() {
    let dir = scratch("sigterm");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let port_file = dir.join("port");
    let bin = env!("CARGO_BIN_EXE_matchd");
    let child = std::process::Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--universe",
            SPEC,
            "--data-dir",
            dir.to_str().expect("utf8"),
            "--linger-us",
            "200",
            "--snapshot-every",
            "8",
            "--fsync",
            "snapshot",
            "--port-file",
            port_file.to_str().expect("utf8"),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn matchd");
    let port: u16 = {
        let mut got = None;
        for _ in 0..200 {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse() {
                    got = Some(p);
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        got.expect("daemon never wrote its port file")
    };
    let universe = from_spec(SPEC).expect("spec");
    let mut client = MatchdClient::connect(("127.0.0.1", port)).expect("connect");
    let stream = client_stream(&universe, 0, 1, 240);
    let mut last_epoch = 0u64;
    for chunk in stream.chunks(12) {
        if let SubmitOutcome::Accepted { epoch } =
            client.submit_with_retry(chunk, 50).expect("submit")
        {
            last_epoch = epoch;
        }
    }
    assert!(last_epoch >= 20, "expected 20 acked batches, got {last_epoch}");
    drop(client);

    // `kill -TERM`, as an init system or operator would send it.
    let pid = child.id().to_string();
    let status = std::process::Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");

    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "SIGTERM must exit 0, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("signal received, draining"), "no drain line in: {stdout}");
    assert!(stdout.contains("final state certified"), "no certification in: {stdout}");

    // The drain promised durability: an offline recovery over the same
    // data dir lands exactly on the last acknowledged epoch, certified,
    // and the final snapshot means zero WAL records to replay.
    let rec = recover(&dir, &universe, FsyncPolicy::Never).expect("recovery certifies");
    assert_eq!(rec.engine.epoch().0, last_epoch, "graceful drain lost acked batches");
    assert_eq!(rec.replayed, 0, "final snapshot should carry the whole state");
    assert_eq!(rec.snapshot_epoch, last_epoch);
}
