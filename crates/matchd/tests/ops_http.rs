//! Golden tests for the live operations plane (DESIGN.md §14): the four
//! admin endpoints served concurrently with ingest load, the continuous
//! auditor's escalation path (injected fault → `/readyz` 503 → spooled
//! forensic bundle that replays to the same violation), and the
//! malformed-request contract — any byte stream gets a structured 4xx
//! or silence, never a panic, and the daemon keeps serving after.

use owp_engine::{Engine, ForensicBundle, InjectedFault};
use owp_matchd::{
    client_stream, from_spec, http, FsyncPolicy, Matchd, MatchdClient, MatchdConfig, OpsStatus,
    SubmitOutcome,
};
use owp_metrics::{MetricsRegistry, MetricsSnapshot};
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SPEC: &str = "ba:300,3,2,11";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("owp-ops-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &PathBuf) -> MatchdConfig {
    let mut c = MatchdConfig::new(dir);
    c.max_linger = Duration::from_micros(200);
    c.snapshot_every = 8;
    c.fsync = FsyncPolicy::Never;
    c.ops_addr = Some("127.0.0.1:0".into());
    c.audit_every = Duration::from_millis(25);
    c
}

/// One admin round-trip: raw HTTP/1.0 over a fresh TcpStream, exactly
/// what `curl` or a Prometheus scraper would send.
fn get(ops: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(ops).expect("connect ops");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send");
    http::read_response(&mut s, 4 << 20).expect("response")
}

fn submit_all(client: &mut MatchdClient, universe: &owp_matching::Problem, events: usize) {
    let stream = client_stream(universe, 0, 1, events);
    for chunk in stream.chunks(16) {
        match client.submit_with_retry(chunk, 50).expect("submit") {
            SubmitOutcome::Accepted { .. } => {}
            SubmitOutcome::Busy { .. } => panic!("retries exhausted"),
            SubmitOutcome::Rejected { error } => panic!("rejected: {error}"),
        }
    }
}

#[test]
fn endpoints_serve_golden_responses_under_ingest_load() {
    let dir = scratch("golden");
    let universe = from_spec(SPEC).expect("spec");
    let daemon =
        Matchd::start("127.0.0.1:0", &universe, config(&dir), MetricsRegistry::new())
            .expect("start");
    let ops = daemon.ops_addr().expect("ops plane configured");
    let addr = daemon.local_addr();

    // Ingest load on a second thread while the main thread scrapes: the
    // admin plane must answer *during* repair, not just between batches.
    let ingest = std::thread::spawn({
        let universe = universe.clone();
        move || {
            let mut client = MatchdClient::connect(addr).expect("connect");
            submit_all(&mut client, &universe, 400);
            client.epoch().expect("epoch").epoch
        }
    });

    let mut scrapes = 0u32;
    while !ingest.is_finished() || scrapes < 3 {
        let (hs, hb) = get(ops, "/healthz");
        assert_eq!((hs, hb.as_str()), (200, "ok\n"));
        let (rs, _) = get(ops, "/readyz");
        assert_eq!(rs, 200, "quiet daemon must be ready");
        let (ms, body) = get(ops, "/metrics");
        assert_eq!(ms, 200);
        let snap = MetricsSnapshot::parse_prometheus(&body).expect("prometheus parses");
        let _ = snap; // golden contract: the existing parser accepts the export
        assert!(body.contains("matchd_ready"), "missing matchd_ready in {body}");
        assert!(body.contains("matchd_ops_requests"), "missing ops counter");
        let (ss, sbody) = get(ops, "/status");
        assert_eq!(ss, 200);
        let status = OpsStatus::parse(&sbody).expect("status parses");
        assert!(status.ready && status.audit_clean);
        assert_eq!(status.queue_capacity, 1024);
        scrapes += 1;
    }
    let final_epoch = ingest.join().expect("ingest thread");
    assert_eq!(final_epoch, 25, "400 events in 16-chunks is 25 batches");

    // Settled status reflects the ingest that just happened, and the
    // slow-request ring saw the SUBMIT spans with a non-trivial split.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        let (_, sbody) = get(ops, "/status");
        let status = OpsStatus::parse(&sbody).expect("status parses");
        if status.epoch == final_epoch
            && status.audit_passes > 0
            && status.last_audit_epoch == final_epoch
        {
            break status;
        }
        assert!(Instant::now() < deadline, "status never settled: {sbody}");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.active, 300);
    assert!(status.requests_total >= 25, "at least the submits: {}", status.requests_total);
    assert!(status.connections_total >= 1);
    assert!(status.wal_records > 0 && status.wal_bytes > 0);
    assert_eq!(status.last_audit_epoch, final_epoch);
    assert_eq!(status.audit_failures, 0);
    assert!(!status.slow.is_empty(), "spans must reach the slow ring");
    assert!(status.slow.iter().any(|s| s.kind == "SUBMIT"));
    assert!(status.rustc.starts_with("rustc"), "provenance: {}", status.rustc);

    let (ns, _) = get(ops, "/nope");
    assert_eq!(ns, 404);
    daemon.abort();
}

#[test]
fn injected_fault_flips_readyz_and_spools_a_replayable_bundle() {
    let dir = scratch("fault");
    let spool = dir.join("spool");
    let universe = from_spec(SPEC).expect("spec");
    let mut cfg = config(&dir);
    cfg.spool_dir = Some(spool.clone());
    let daemon =
        Matchd::start("127.0.0.1:0", &universe, cfg, MetricsRegistry::new()).expect("start");
    let ops = daemon.ops_addr().expect("ops plane configured");
    let mut client = MatchdClient::connect(daemon.local_addr()).expect("connect");
    submit_all(&mut client, &universe, 400);
    client.epoch().expect("read-your-writes barrier");

    // A locally-heaviest b-matching is maximal, so any *unselected*
    // alive edge has a quota-saturated endpoint — forcing it in is a
    // deterministic quota violation for the continuous auditor. The
    // daemon's matching is canonical (certify() is bit-identity with a
    // from-scratch lic), so a reference engine fed the same acked
    // stream selects the same edges.
    let mut reference = Engine::new(universe.clone());
    for chunk in client_stream(&universe, 0, 1, 400).chunks(16) {
        reference.apply_batch(chunk).expect("reference applies");
    }
    let edge = universe
        .graph
        .edges()
        .find(|&e| reference.dynamic().is_alive(e) && !reference.matching().contains(e))
        .expect("a churned BA instance leaves unselected alive edges");
    daemon.inject_fault(InjectedFault::PhantomEdge { edge }).expect("inject");

    // The next audit pass must latch readiness off and spool a bundle.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (rs, why) = get(ops, "/readyz");
        if rs == 503 {
            assert!(why.contains("audit violation"), "unexpected reason: {why}");
            break;
        }
        assert!(Instant::now() < deadline, "/readyz never flipped to 503");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Latched: still 503 on every later scrape, and /healthz stays 200
    // (the process is alive, just not fit for traffic).
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(get(ops, "/readyz").0, 503, "readiness must latch, not flap");
    assert_eq!(get(ops, "/healthz").0, 200);

    let (_, sbody) = get(ops, "/status");
    let status = OpsStatus::parse(&sbody).expect("status parses");
    assert!(!status.ready && !status.audit_clean);
    assert!(status.audit_failures >= 1);

    // The spooled bundle replays to the same class of violation.
    let deadline = Instant::now() + Duration::from_secs(10);
    let bundles: Vec<PathBuf> = loop {
        let found: Vec<PathBuf> = std::fs::read_dir(&spool)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
                    .collect()
            })
            .unwrap_or_default();
        if !found.is_empty() {
            break found;
        }
        assert!(Instant::now() < deadline, "no bundle spooled to {}", spool.display());
        std::thread::sleep(Duration::from_millis(20));
    };
    let doc = std::fs::read_to_string(&bundles[0]).expect("read bundle");
    let bundle = ForensicBundle::parse(&doc).expect("bundle parses");
    assert_eq!(bundle.trigger, "audit");
    assert!(bundle.reason.contains("quota"), "expected a quota violation: {}", bundle.reason);
    let replayed = bundle.verify().expect("bundle carries a checkpoint");
    assert!(replayed.is_some(), "replay must reproduce the violation");

    daemon.abort();
}

#[test]
fn malformed_requests_never_take_the_plane_down() {
    let dir = scratch("fuzz");
    let universe = from_spec(SPEC).expect("spec");
    let daemon =
        Matchd::start("127.0.0.1:0", &universe, config(&dir), MetricsRegistry::new())
            .expect("start");
    let ops = daemon.ops_addr().expect("ops plane configured");

    // Seeded mutation loop in the codec_robustness style: truncations,
    // bit flips, binary garbage, oversized heads, wrong methods. Every
    // connection must end in a structured status (or silence for an
    // empty/hopeless request) and the daemon must still answer cleanly.
    let corpus: Vec<Vec<u8>> = vec![
        b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n".to_vec(),
        b"GET /status HTTP/1.1\r\nAccept: */*\r\n\r\n".to_vec(),
        b"POST /metrics HTTP/1.0\r\nContent-Length: 4\r\n\r\nabcd".to_vec(),
        b"DELETE /readyz HTTP/1.0\r\n\r\n".to_vec(),
        b"GET noslash HTTP/1.0\r\n\r\n".to_vec(),
    ];
    let mut rng = StdRng::seed_from_u64(0x0B5E55);
    for round in 0..120usize {
        let mut bytes = corpus[round % corpus.len()].clone();
        match round % 4 {
            0 => {
                let cut = rng.gen_range(0..bytes.len());
                bytes.truncate(cut);
            }
            1 => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
            2 => {
                bytes.clear();
                for _ in 0..rng.gen_range(1..64usize) {
                    bytes.push(rng.next_u32() as u8);
                }
            }
            _ => {
                let filler = vec![b'A'; rng.gen_range(1..200usize)];
                bytes.splice(4..4, filler);
            }
        }
        let mut s = TcpStream::connect(ops).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        let _ = s.write_all(&bytes);
        let _ = s.flush();
        let _ = s.shutdown(std::net::Shutdown::Write);
        match http::read_response(&mut s, 1 << 20) {
            Ok((status, _)) => assert!(
                matches!(status, 200 | 400 | 404 | 405),
                "unexpected status {status} for {bytes:?}"
            ),
            Err(_) => {} // daemon closed without a response — fine for hopeless input
        }
    }
    // An 8KiB+ head must be refused without a panic or a hang: either a
    // 400 (TooLarge) or a straight connection teardown — the server may
    // close with bytes still in its receive buffer, which surfaces to
    // the client as a reset rather than the response.
    let mut s = TcpStream::connect(ops).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let huge = vec![b'A'; http::MAX_REQUEST_BYTES + 16];
    let _ = s.write_all(&huge);
    let _ = s.flush();
    match http::read_response(&mut s, 1 << 20) {
        Ok((status, _)) => assert_eq!(status, 400),
        Err(e) => assert!(e.contains("socket error"), "unexpected failure: {e}"),
    }

    // Still standing, still correct.
    let (hs, hb) = get(ops, "/healthz");
    assert_eq!((hs, hb.as_str()), (200, "ok\n"));
    let (ms, body) = get(ops, "/metrics");
    assert_eq!(ms, 200);
    MetricsSnapshot::parse_prometheus(&body).expect("prometheus still parses");
    daemon.abort();
}
