//! Point-in-time snapshots of a registry, with the two export formats.
//!
//! * **Prometheus text format** ([`MetricsSnapshot::to_prometheus`]) — the
//!   de-facto scrape format: `# TYPE` headers, one sample per line,
//!   histograms as cumulative `_bucket{le="…"}` series with `_sum` /
//!   `_count`. Bucket `le` bounds are the log₂ upper bounds
//!   (`0, 1, 3, 7, …, 2^k − 1, +Inf`).
//! * **JSON** ([`MetricsSnapshot::to_json`]) — one self-contained object
//!   for `experiments --metrics-out` files and `owp-inspect`; histogram
//!   buckets are stored sparsely as `[bit_length, count]` pairs.
//!
//! Both formats are deterministic (keys sorted by the registry) and both
//! round-trip through the matching `parse_*` function — `owp-inspect`
//! consumes either, and the golden tests in this module pin the exact
//! output byte-for-byte.

use crate::registry::{bucket_upper_bound, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Frozen histogram state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Per-bucket counts, indexed by value bit length (see
    /// [`crate::registry::bucket_of`]); always [`HISTOGRAM_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile (`None` when
    /// empty) — same estimator as the live histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(k));
            }
        }
        Some(u64::MAX)
    }

    /// Interpolated `q`-quantile estimate (`None` when empty).
    ///
    /// Refines [`HistogramSnapshot::quantile_upper_bound`] by assuming the
    /// observations inside the target bucket are spread uniformly over its
    /// value range (`[2^(k−1), 2^k − 1]` for bucket `k ≥ 1`, the single
    /// value 0 for bucket 0) and placing the quantile rank linearly within
    /// it. Still bounded by the 2× log₂ bucket resolution, but without the
    /// systematic upward bias of reporting the bucket's upper bound.
    pub fn quantile_interpolated(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if (seen as f64) < target {
                continue;
            }
            if k == 0 {
                return Some(0.0);
            }
            let lo = (bucket_upper_bound(k - 1) + 1) as f64;
            let hi = bucket_upper_bound(k) as f64;
            // Fraction of the bucket's population strictly below the rank.
            let frac = ((target - before as f64 - 1.0) / c as f64).clamp(0.0, 1.0);
            return Some(lo + frac * (hi - lo));
        }
        Some(bucket_upper_bound(HISTOGRAM_BUCKETS - 1) as f64)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A frozen, exportable copy of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// `f64` in shortest round-trip form with a forced decimal point, matching
/// the telemetry JSONL convention (`NaN`/`inf` become `null` in JSON and
/// `NaN` in Prometheus; neither occurs in practice).
fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl MetricsSnapshot {
    /// Total number of metric families in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` iff no metric was registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(
                out,
                "{name} {}",
                if v.is_finite() { fmt_f64(*v) } else { "NaN".to_string() }
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let top = h
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .map(|k| k + 1)
                .unwrap_or(0);
            let mut cum = 0u64;
            for k in 0..top {
                cum += h.buckets[k];
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper_bound(k));
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// The snapshot as one JSON object (histogram buckets sparse).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[", h.count, h.sum);
            let mut first = true;
            for (k, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{k},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }

    /// Parses a document produced by [`MetricsSnapshot::to_json`].
    ///
    /// This is a scanner for exactly the subset the exporter emits (no
    /// string escapes, no nesting beyond the fixed schema), not a general
    /// JSON parser.
    pub fn parse_json(doc: &str) -> Result<MetricsSnapshot, String> {
        let mut s = Scanner::new(doc);
        let mut snap = MetricsSnapshot::default();
        s.expect('{')?;
        for section in ["counters", "gauges", "histograms"] {
            s.key(section)?;
            s.expect('{')?;
            while !s.peek_is('}') {
                let name = s.string()?;
                s.expect(':')?;
                match section {
                    "counters" => {
                        let v = s.number()?;
                        let v = v.parse().map_err(|e| format!("{name}: {e}"))?;
                        snap.counters.push((name, v));
                    }
                    "gauges" => {
                        let v = s.number()?;
                        let x = if v == "null" {
                            f64::NAN
                        } else {
                            v.parse().map_err(|e| format!("{name}: {e}"))?
                        };
                        snap.gauges.push((name, x));
                    }
                    _ => {
                        s.expect('{')?;
                        s.key("count")?;
                        let count: u64 =
                            s.number()?.parse().map_err(|e| format!("{name} count: {e}"))?;
                        s.expect(',')?;
                        s.key("sum")?;
                        let sum: u64 =
                            s.number()?.parse().map_err(|e| format!("{name} sum: {e}"))?;
                        s.expect(',')?;
                        s.key("buckets")?;
                        s.expect('[')?;
                        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
                        while !s.peek_is(']') {
                            s.expect('[')?;
                            let k: usize =
                                s.number()?.parse().map_err(|e| format!("{name} bucket: {e}"))?;
                            s.expect(',')?;
                            let c: u64 =
                                s.number()?.parse().map_err(|e| format!("{name} bucket: {e}"))?;
                            s.expect(']')?;
                            *buckets
                                .get_mut(k)
                                .ok_or_else(|| format!("{name}: bucket index {k} out of range"))? = c;
                            if s.peek_is(',') {
                                s.expect(',')?;
                            }
                        }
                        s.expect(']')?;
                        s.expect('}')?;
                        snap.histograms.push((name, HistogramSnapshot { count, sum, buckets }));
                    }
                }
                if s.peek_is(',') {
                    s.expect(',')?;
                }
            }
            s.expect('}')?;
            if section != "histograms" {
                s.expect(',')?;
            }
        }
        s.expect('}')?;
        Ok(snap)
    }

    /// Parses a document produced by [`MetricsSnapshot::to_prometheus`].
    /// Reconstructs per-bucket counts from the cumulative `_bucket` series.
    pub fn parse_prometheus(doc: &str) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        let mut cur_hist: Option<(String, Vec<u64>, u64, u64)> = None; // name, buckets, sum, count
        let mut prev_cum = 0u64;

        let flush =
            |h: &mut Option<(String, Vec<u64>, u64, u64)>, snap: &mut MetricsSnapshot| {
                if let Some((name, buckets, sum, count)) = h.take() {
                    snap.histograms.push((name, HistogramSnapshot { count, sum, buckets }));
                }
            };

        let mut kind: &str = "";
        for line in doc.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                flush(&mut cur_hist, &mut snap);
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or("empty TYPE line")?.to_string();
                kind = match it.next() {
                    Some("counter") => "counter",
                    Some("gauge") => "gauge",
                    Some("histogram") => {
                        cur_hist = Some((name, vec![0u64; HISTOGRAM_BUCKETS], 0, 0));
                        prev_cum = 0;
                        "histogram"
                    }
                    other => return Err(format!("unknown metric type {other:?}")),
                };
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (head, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("sample line without value: {line}"))?;
            match kind {
                "counter" => snap.counters.push((
                    head.to_string(),
                    value.parse().map_err(|e| format!("{head}: {e}"))?,
                )),
                "gauge" => {
                    let x: f64 = if value == "NaN" {
                        f64::NAN
                    } else {
                        value.parse().map_err(|e| format!("{head}: {e}"))?
                    };
                    snap.gauges.push((head.to_string(), x));
                }
                "histogram" => {
                    let (_, buckets, sum, count) =
                        cur_hist.as_mut().ok_or("histogram sample outside a TYPE block")?;
                    if let Some(le_part) = head.strip_suffix("\"}") {
                        let le = le_part
                            .rsplit_once("{le=\"")
                            .ok_or_else(|| format!("malformed bucket line: {line}"))?
                            .1;
                        let cum: u64 = value.parse().map_err(|e| format!("{head}: {e}"))?;
                        if le == "+Inf" {
                            prev_cum = cum;
                        } else {
                            let ub: u64 = le.parse().map_err(|e| format!("le {le}: {e}"))?;
                            let k = crate::registry::bucket_of(ub);
                            buckets[k] = cum - prev_cum;
                            prev_cum = cum;
                        }
                    } else if head.ends_with("_sum") {
                        *sum = value.parse().map_err(|e| format!("{head}: {e}"))?;
                    } else if head.ends_with("_count") {
                        *count = value.parse().map_err(|e| format!("{head}: {e}"))?;
                    } else {
                        return Err(format!("unexpected histogram sample: {line}"));
                    }
                }
                _ => return Err(format!("sample before any TYPE line: {line}")),
            }
        }
        flush(&mut cur_hist, &mut snap);
        Ok(snap)
    }
}

/// Minimal cursor over the fixed JSON subset the exporter writes.
struct Scanner<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner { s, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.s[self.pos..].starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.s[self.pos..].starts_with(c)
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.s[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at byte {} (found {:?})",
                self.pos,
                &self.s[self.pos..self.s.len().min(self.pos + 12)]
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let rest = &self.s[self.pos..];
        let end = rest.find('"').ok_or("unterminated string")?;
        let out = rest[..end].to_string();
        self.pos += end + 1;
        Ok(out)
    }

    /// A known object key: `"key":`.
    fn key(&mut self, want: &str) -> Result<(), String> {
        let got = self.string()?;
        if got != want {
            return Err(format!("expected key {want:?}, found {got:?}"));
        }
        self.expect(':')
    }

    /// A numeric token (also accepts `null`).
    fn number(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let rest = &self.s[self.pos..];
        let len = rest
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E' | 'n' | 'u' | 'l')))
            .unwrap_or(rest.len());
        if len == 0 {
            return Err(format!("expected a number at byte {}", self.pos));
        }
        self.pos += len;
        Ok(&rest[..len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        let c = reg.counter("messages_sent_total");
        c.add(42);
        reg.counter("audit_violations_total");
        let g = reg.gauge("satisfaction_ratio");
        g.set(0.75);
        let h = reg.histogram("prop_latency_ticks");
        for v in [1u64, 1, 2, 3, 100] {
            h.observe(v);
        }
        reg.snapshot()
    }

    /// Golden: the Prometheus exposition is pinned byte-for-byte.
    #[test]
    fn prometheus_golden() {
        let expected = "\
# TYPE audit_violations_total counter
audit_violations_total 0
# TYPE messages_sent_total counter
messages_sent_total 42
# TYPE satisfaction_ratio gauge
satisfaction_ratio 0.75
# TYPE prop_latency_ticks histogram
prop_latency_ticks_bucket{le=\"0\"} 0
prop_latency_ticks_bucket{le=\"1\"} 2
prop_latency_ticks_bucket{le=\"3\"} 4
prop_latency_ticks_bucket{le=\"7\"} 4
prop_latency_ticks_bucket{le=\"15\"} 4
prop_latency_ticks_bucket{le=\"31\"} 4
prop_latency_ticks_bucket{le=\"63\"} 4
prop_latency_ticks_bucket{le=\"127\"} 5
prop_latency_ticks_bucket{le=\"+Inf\"} 5
prop_latency_ticks_sum 107
prop_latency_ticks_count 5
";
        assert_eq!(sample_snapshot().to_prometheus(), expected);
    }

    /// Golden: the JSON document is pinned byte-for-byte.
    #[test]
    fn json_golden() {
        let expected = "{\"counters\":{\"audit_violations_total\":0,\"messages_sent_total\":42},\
\"gauges\":{\"satisfaction_ratio\":0.75},\
\"histograms\":{\"prop_latency_ticks\":{\"count\":5,\"sum\":107,\"buckets\":[[1,2],[2,2],[7,1]]}}}\n";
        assert_eq!(sample_snapshot().to_json(), expected);
    }

    #[test]
    fn json_round_trips() {
        let snap = sample_snapshot();
        let back = MetricsSnapshot::parse_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
        // And the re-export is byte-identical.
        assert_eq!(back.to_json(), snap.to_json());
    }

    #[test]
    fn prometheus_round_trips() {
        let snap = sample_snapshot();
        let back = MetricsSnapshot::parse_prometheus(&snap.to_prometheus()).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.to_prometheus(), snap.to_prometheus());
    }

    #[test]
    fn snapshot_quantiles_match_live() {
        let snap = sample_snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 5);
        assert_eq!(h.quantile_upper_bound(0.5), Some(3));
        assert_eq!(h.quantile_upper_bound(0.99), Some(127));
        assert!((h.mean() - 21.4).abs() < 1e-12);
    }

    #[test]
    fn interpolated_quantiles_are_pinned() {
        // Uniform 1..=8 → buckets k1={1}, k2={2,3}, k3={4..7}, k4={8}.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_ticks");
        for v in 1u64..=8 {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.quantile_interpolated(0.0), Some(1.0)); // min
        assert_eq!(h.quantile_interpolated(0.5), Some(4.0)); // true median 4.5
        assert_eq!(h.quantile_interpolated(0.95), Some(8.0)); // true p95 ≈ 8
        assert_eq!(h.quantile_interpolated(1.0), Some(8.0)); // max bucket floor
        // Versus the coarse estimator: p50 upper bound is a whole bucket
        // high (7), interpolation lands inside it.
        assert_eq!(h.quantile_upper_bound(0.5), Some(7));

        // Interior interpolation: 100 observations all in bucket 7
        // ([64, 127]) spread the rank linearly across the bucket range.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("flat");
        for _ in 0..100 {
            h.observe(64);
        }
        let snap = reg.snapshot();
        let (_, h) = &snap.histograms[0];
        let p50 = h.quantile_interpolated(0.5).unwrap();
        assert!((p50 - (64.0 + 0.49 * 63.0)).abs() < 1e-9, "p50 = {p50}");

        // Zeros land exactly on 0; empty histograms have no quantiles.
        let reg = MetricsRegistry::new();
        let z = reg.histogram("zeros");
        z.observe(0);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].1.quantile_interpolated(0.9), Some(0.0));
        let empty = HistogramSnapshot { count: 0, sum: 0, buckets: vec![0; HISTOGRAM_BUCKETS] };
        assert_eq!(empty.quantile_interpolated(0.5), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricsSnapshot::parse_json("not json").is_err());
        assert!(MetricsSnapshot::parse_json("{\"counters\":{").is_err());
        assert!(MetricsSnapshot::parse_prometheus("# TYPE x wibble\nx 1\n").is_err());
        assert!(MetricsSnapshot::parse_prometheus("x 1\n").is_err());
    }
}
