//! The metrics registry and its typed handles.
//!
//! Registration is the cold path: a [`MetricsRegistry`] hands out cheap
//! cloneable handles ([`Counter`], [`Gauge`], [`Histogram`]) keyed by a
//! `&'static str` name, behind one mutex that is touched only at
//! registration and snapshot time. Recording through a handle is the hot
//! path and is **lock-free**: one relaxed atomic RMW per observation, no
//! allocation, no branch on a registry lookup. Handles are `Send + Sync`,
//! so the rayon-parallel experiment sweeps record into the same registry
//! without coordination.
//!
//! Histograms are log₂-bucketed over `u64` observations (latencies in
//! ticks, wall times in microseconds, batch sizes in events): bucket `k`
//! holds values whose bit length is `k`, i.e. the range `[2^(k-1), 2^k)`,
//! with bucket 0 reserved for the value 0. Sixty-five buckets therefore
//! cover the whole `u64` range with relative error bounded by 2×, which is
//! plenty for p50/p99-style health queries while keeping a histogram at a
//! fixed 67 atomics regardless of traffic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ buckets: bucket 0 holds zeros, bucket `k ≥ 1` holds
/// values of bit length `k` (`2^(k-1) ..= 2^k − 1`), up to the full `u64`
/// range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotone event counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge (stored as IEEE-754 bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Log₂-bucketed distribution of `u64` observations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Bucket index of a value: its bit length (0 for 0).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `k` (`2^k − 1`; `u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (index = bit length of the value).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (k, b) in self.0.buckets.iter().enumerate() {
            out[k] = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), or `None` for an empty histogram. Because buckets are
    /// log₂, the estimate is within 2× of the true quantile.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, c) in self.buckets().iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_upper_bound(k));
            }
        }
        Some(u64::MAX)
    }

    /// Mean observation (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Families {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// The registry: named metric families, each registered once by static
/// key. Registration and snapshotting lock a mutex (cold); recording
/// through the returned handles never does.
///
/// Re-registering an existing key returns a handle to the *same* metric,
/// so independent subsystems can share a family by agreeing on its name.
/// A key may live in only one family: registering `"x"` as both a counter
/// and a gauge panics (it would be un-exportable).
///
/// The registry is a cheap `Arc`-backed handle: clones share the same
/// family table, so a component that must register families lazily (e.g.
/// the recorder's per-label `Other(_)` send counters) can keep a clone.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: std::sync::Arc<Mutex<Families>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn check_free(fams: &Families, key: &'static str, family: &str) {
        let taken = match family {
            "counter" => fams.gauges.contains_key(key) || fams.histograms.contains_key(key),
            "gauge" => fams.counters.contains_key(key) || fams.histograms.contains_key(key),
            _ => fams.counters.contains_key(key) || fams.gauges.contains_key(key),
        };
        assert!(!taken, "metric key {key:?} already registered in another family");
    }

    /// Registers (or retrieves) the counter named `key`.
    pub fn counter(&self, key: &'static str) -> Counter {
        let mut fams = self.inner.lock().expect("metrics registry poisoned");
        Self::check_free(&fams, key, "counter");
        fams.counters.entry(key).or_default().clone()
    }

    /// Registers (or retrieves) the gauge named `key`.
    pub fn gauge(&self, key: &'static str) -> Gauge {
        let mut fams = self.inner.lock().expect("metrics registry poisoned");
        Self::check_free(&fams, key, "gauge");
        fams.gauges.entry(key).or_default().clone()
    }

    /// Registers (or retrieves) the histogram named `key`.
    pub fn histogram(&self, key: &'static str) -> Histogram {
        let mut fams = self.inner.lock().expect("metrics registry poisoned");
        Self::check_free(&fams, key, "histogram");
        fams.histograms.entry(key).or_default().clone()
    }

    /// Point-in-time copy of every registered metric, keys sorted.
    pub fn snapshot(&self) -> crate::snapshot::MetricsSnapshot {
        let fams = self.inner.lock().expect("metrics registry poisoned");
        crate::snapshot::MetricsSnapshot {
            counters: fams
                .counters
                .iter()
                .map(|(&k, c)| (k.to_string(), c.get()))
                .collect(),
            gauges: fams
                .gauges
                .iter()
                .map(|(&k, g)| (k.to_string(), g.get()))
                .collect(),
            histograms: fams
                .histograms
                .iter()
                .map(|(&k, h)| {
                    (
                        k.to_string(),
                        crate::snapshot::HistogramSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            buckets: h.buckets().to_vec(),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("messages_sent_total");
        let b = reg.counter("messages_sent_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        let g = reg.gauge("satisfaction_ratio");
        g.set(0.75);
        assert_eq!(reg.gauge("satisfaction_ratio").get(), 0.75);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in the bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40] {
            let k = bucket_of(v);
            assert!(v <= bucket_upper_bound(k));
            if k > 0 {
                assert!(v > bucket_upper_bound(k - 1));
            }
        }
    }

    #[test]
    fn histogram_aggregates_and_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_ticks");
        for v in [1u64, 1, 2, 3, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert!((h.mean() - 21.4).abs() < 1e-12);
        // p50 of {1,1,2,3,100}: 3rd observation = 2, bucket ub = 3.
        assert_eq!(h.quantile_upper_bound(0.5), Some(3));
        // p99 lands on the 100 observation, bucket [64,127] → ub 127.
        assert_eq!(h.quantile_upper_bound(0.99), Some(127));
        assert_eq!(reg.histogram("empty").quantile_upper_bound(0.5), None);
    }

    #[test]
    fn handles_are_thread_safe() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("parallel_total");
        let h = reg.histogram("parallel_hist");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }

    #[test]
    #[should_panic(expected = "another family")]
    fn cross_family_key_clash_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }
}
