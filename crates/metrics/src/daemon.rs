//! Metric keys of the `matchd` daemon (DESIGN.md §13).
//!
//! `owp-matchd` publishes its ingest/durability health through these keys
//! so the existing exporters (`MetricsSnapshot::to_prometheus`,
//! `owp-inspect metrics`) pick the daemon up with zero new plumbing. The
//! constants live here — not in matchd — for the same reason the engine's
//! shard gauges live in [`alloc`](crate::alloc): every consumer (daemon,
//! bench driver, inspector) links against `owp-metrics` already, and a
//! shared `&'static str` key is what makes the lock-free registry handles
//! cheap.

use crate::registry::MetricsRegistry;

/// Gauge: ingest submissions queued between the acceptor threads and the
/// engine-owner thread, sampled at each batch flush. The bounded channel
/// caps this at `MatchdConfig::queue_capacity`; a gauge pinned near the
/// cap means the engine is the bottleneck and admission control is
/// rejecting.
pub const MATCHD_QUEUE_DEPTH: &str = "matchd_queue_depth";

/// Counter: submissions rejected at admission (`BUSY` + retry-after)
/// because the bounded ingest queue was full.
pub const MATCHD_ADMISSION_REJECTS: &str = "matchd_admission_rejects";

/// Gauge: bytes in the write-ahead log, including record headers. Drops
/// back near zero after each snapshot (the WAL is reset once a snapshot
/// durably covers it).
pub const MATCHD_WAL_BYTES: &str = "matchd_wal_bytes";

/// Histogram: microseconds each flushed batch spent lingering — from the
/// first submission entering the batch to the flush that applied it. The
/// latency cost of the throughput knob, directly comparable to
/// `MatchdConfig::max_linger`.
pub const MATCHD_BATCH_LINGER_US: &str = "matchd_batch_linger_us";

/// Histogram: events per flushed batch (the adaptive batch size).
pub const MATCHD_BATCH_EVENTS: &str = "matchd_batch_events";

/// Gauge: epoch of the newest durable snapshot (0 until the first one).
pub const MATCHD_SNAPSHOT_EPOCH: &str = "matchd_snapshot_epoch";

/// Pre-registers every matchd key so exporters show the daemon section
/// (zeros included) from the first scrape, before traffic arrives.
pub fn register_matchd_metrics(reg: &MetricsRegistry) {
    reg.gauge(MATCHD_QUEUE_DEPTH);
    reg.counter(MATCHD_ADMISSION_REJECTS);
    reg.gauge(MATCHD_WAL_BYTES);
    reg.histogram(MATCHD_BATCH_LINGER_US);
    reg.histogram(MATCHD_BATCH_EVENTS);
    reg.gauge(MATCHD_SNAPSHOT_EPOCH);
}
