//! Metric keys of the `matchd` daemon (DESIGN.md §13).
//!
//! `owp-matchd` publishes its ingest/durability health through these keys
//! so the existing exporters (`MetricsSnapshot::to_prometheus`,
//! `owp-inspect metrics`) pick the daemon up with zero new plumbing. The
//! constants live here — not in matchd — for the same reason the engine's
//! shard gauges live in [`alloc`](crate::alloc): every consumer (daemon,
//! bench driver, inspector) links against `owp-metrics` already, and a
//! shared `&'static str` key is what makes the lock-free registry handles
//! cheap.

use crate::registry::MetricsRegistry;

/// Gauge: ingest submissions queued between the acceptor threads and the
/// engine-owner thread, sampled at each batch flush. The bounded channel
/// caps this at `MatchdConfig::queue_capacity`; a gauge pinned near the
/// cap means the engine is the bottleneck and admission control is
/// rejecting.
pub const MATCHD_QUEUE_DEPTH: &str = "matchd_queue_depth";

/// Counter: submissions rejected at admission (`BUSY` + retry-after)
/// because the bounded ingest queue was full.
pub const MATCHD_ADMISSION_REJECTS: &str = "matchd_admission_rejects";

/// Gauge: bytes in the write-ahead log, including record headers. Drops
/// back near zero after each snapshot (the WAL is reset once a snapshot
/// durably covers it).
pub const MATCHD_WAL_BYTES: &str = "matchd_wal_bytes";

/// Histogram: microseconds each flushed batch spent lingering — from the
/// first submission entering the batch to the flush that applied it. The
/// latency cost of the throughput knob, directly comparable to
/// `MatchdConfig::max_linger`.
pub const MATCHD_BATCH_LINGER_US: &str = "matchd_batch_linger_us";

/// Histogram: events per flushed batch (the adaptive batch size).
pub const MATCHD_BATCH_EVENTS: &str = "matchd_batch_events";

/// Gauge: epoch of the newest durable snapshot (0 until the first one).
pub const MATCHD_SNAPSHOT_EPOCH: &str = "matchd_snapshot_epoch";

/// Gauge: records currently in the write-ahead log (resets with the WAL
/// after each snapshot, like [`MATCHD_WAL_BYTES`]).
pub const MATCHD_WAL_RECORDS: &str = "matchd_wal_records";

/// Gauge: connections currently being served by handler threads.
pub const MATCHD_CONNECTIONS: &str = "matchd_connections";

/// Counter: connections accepted over the daemon's lifetime.
pub const MATCHD_CONNECTIONS_TOTAL: &str = "matchd_connections_total";

/// Counter: wire frames decoded (every frame gets a request id; this is
/// the id counter's shadow, scrapeable).
pub const MATCHD_REQUESTS_TOTAL: &str = "matchd_requests_total";

/// Histogram: microseconds a `SUBMIT` span spent queued — from the frame
/// entering the bounded ingest channel to the owner starting the flush
/// that applied it. The queue-wait leg of the request span.
pub const MATCHD_SPAN_QUEUE_US: &str = "matchd_span_queue_us";

/// Histogram: microseconds the owner spent inside `apply_batch` + WAL
/// append for the flush carrying the span. The engine leg.
pub const MATCHD_SPAN_APPLY_US: &str = "matchd_span_apply_us";

/// Histogram: microseconds between the engine finishing and the span's
/// reply leaving the owner (view publication + ack fan-out). The ack leg.
pub const MATCHD_SPAN_ACK_US: &str = "matchd_span_ack_us";

/// Histogram: end-to-end microseconds for `SUBMIT` frames (decode →
/// ack written), the sum of the three span legs plus handler overhead.
pub const MATCHD_REQ_SUBMIT_US: &str = "matchd_req_submit_us";

/// Histogram: end-to-end microseconds for read frames (`QUERY_*`),
/// answered from the published view without touching the engine.
pub const MATCHD_REQ_QUERY_US: &str = "matchd_req_query_us";

/// Histogram: end-to-end microseconds for control frames (`HELLO`,
/// `SHUTDOWN`, protocol errors).
pub const MATCHD_REQ_CONTROL_US: &str = "matchd_req_control_us";

/// Counter: continuous-audit passes that found no violation.
pub const MATCHD_AUDIT_PASSES: &str = "matchd_audit_passes";

/// Counter: continuous-audit passes that detected at least one violation.
pub const MATCHD_AUDIT_FAILURES: &str = "matchd_audit_failures";

/// Gauge: engine epoch of the most recent completed audit pass.
pub const MATCHD_AUDIT_LAST_EPOCH: &str = "matchd_audit_last_epoch";

/// Gauge: 1 while every audit pass so far was clean, 0 after the first
/// violation (latched — mirrors the `/readyz` escalation).
pub const MATCHD_AUDIT_CLEAN: &str = "matchd_audit_clean";

/// Gauge: microseconds the most recent continuous-audit cycle spent on
/// recurring work (probe rendezvous + masked audit), excluding one-off
/// universe rebuilds. The auditor's duty-cycle cap schedules the next
/// cycle at least 99× this far out, bounding the auditor to ≤ 1% of a
/// core regardless of instance size.
pub const MATCHD_AUDIT_COST_US: &str = "matchd_audit_cost_us";

/// Gauge: 1 while the daemon answers `/readyz` 200, 0 once readiness is
/// lost (audit violation, or ingest queue above the high-watermark).
pub const MATCHD_READY: &str = "matchd_ready";

/// Counter: admin-plane HTTP requests served (any status).
pub const MATCHD_OPS_REQUESTS: &str = "matchd_ops_requests";

/// Counter: forensic bundles spooled by the continuous auditor.
pub const MATCHD_BUNDLES_SPOOLED: &str = "matchd_bundles_spooled";

/// Pre-registers every matchd key so exporters show the daemon section
/// (zeros included) from the first scrape, before traffic arrives.
pub fn register_matchd_metrics(reg: &MetricsRegistry) {
    reg.gauge(MATCHD_QUEUE_DEPTH);
    reg.counter(MATCHD_ADMISSION_REJECTS);
    reg.gauge(MATCHD_WAL_BYTES);
    reg.histogram(MATCHD_BATCH_LINGER_US);
    reg.histogram(MATCHD_BATCH_EVENTS);
    reg.gauge(MATCHD_SNAPSHOT_EPOCH);
    reg.gauge(MATCHD_WAL_RECORDS);
    reg.gauge(MATCHD_CONNECTIONS);
    reg.counter(MATCHD_CONNECTIONS_TOTAL);
    reg.counter(MATCHD_REQUESTS_TOTAL);
    reg.histogram(MATCHD_SPAN_QUEUE_US);
    reg.histogram(MATCHD_SPAN_APPLY_US);
    reg.histogram(MATCHD_SPAN_ACK_US);
    reg.histogram(MATCHD_REQ_SUBMIT_US);
    reg.histogram(MATCHD_REQ_QUERY_US);
    reg.histogram(MATCHD_REQ_CONTROL_US);
    reg.counter(MATCHD_AUDIT_PASSES);
    reg.counter(MATCHD_AUDIT_FAILURES);
    reg.gauge(MATCHD_AUDIT_LAST_EPOCH);
    reg.gauge(MATCHD_AUDIT_COST_US);
    reg.gauge(MATCHD_AUDIT_CLEAN);
    reg.gauge(MATCHD_READY);
    reg.counter(MATCHD_OPS_REQUESTS);
    reg.counter(MATCHD_BUNDLES_SPOOLED);
}
