//! The `campaign_*` keys of the chaos-campaign orchestrator (experiment
//! E25): per-fault-class coverage counters plus wall-time and event-count
//! histograms. Counter keys are `&'static str` by [`MetricsRegistry`]
//! contract, so per-class keys are resolved through the lookup functions
//! here instead of being formatted at runtime.

use crate::registry::MetricsRegistry;

/// The fault-class labels of the campaign generator, in ledger order.
/// Class `i` of a round-robin campaign exercises `CAMPAIGN_CLASSES[i % 5]`.
pub const CAMPAIGN_CLASSES: [&str; 5] = [
    "heal_partition",
    "asym_loss",
    "duplication",
    "reordering",
    "crash_restart",
];

/// Counter: plans executed, total across all fault classes.
pub const CAMPAIGN_PLANS_TOTAL: &str = "campaign_plans_total";
/// Counter: plans whose every certificate held.
pub const CAMPAIGN_CERTIFIED_TOTAL: &str = "campaign_certified_total";
/// Counter: plans with at least one certificate violation.
pub const CAMPAIGN_VIOLATIONS_TOTAL: &str = "campaign_violations_total";
/// Histogram: wall-clock microseconds per executed plan.
pub const CAMPAIGN_PLAN_WALL_US: &str = "campaign_plan_wall_us";
/// Histogram: simulator events (deliveries + timers) per executed plan.
pub const CAMPAIGN_PLAN_EVENTS: &str = "campaign_plan_events";

/// Per-class executed-plan counter key (`campaign_plans_<class>`), or
/// `None` for an unknown class label.
pub fn campaign_plans_key(class: &str) -> Option<&'static str> {
    match class {
        "heal_partition" => Some("campaign_plans_heal_partition"),
        "asym_loss" => Some("campaign_plans_asym_loss"),
        "duplication" => Some("campaign_plans_duplication"),
        "reordering" => Some("campaign_plans_reordering"),
        "crash_restart" => Some("campaign_plans_crash_restart"),
        _ => None,
    }
}

/// Per-class violation counter key (`campaign_violations_<class>`), or
/// `None` for an unknown class label.
pub fn campaign_violations_key(class: &str) -> Option<&'static str> {
    match class {
        "heal_partition" => Some("campaign_violations_heal_partition"),
        "asym_loss" => Some("campaign_violations_asym_loss"),
        "duplication" => Some("campaign_violations_duplication"),
        "reordering" => Some("campaign_violations_reordering"),
        "crash_restart" => Some("campaign_violations_crash_restart"),
        _ => None,
    }
}

/// Pre-registers every campaign key so exporters show the full coverage
/// ledger (zeros included) before the first plan executes.
pub fn register_campaign_metrics(reg: &MetricsRegistry) {
    reg.counter(CAMPAIGN_PLANS_TOTAL);
    reg.counter(CAMPAIGN_CERTIFIED_TOTAL);
    reg.counter(CAMPAIGN_VIOLATIONS_TOTAL);
    reg.histogram(CAMPAIGN_PLAN_WALL_US);
    reg.histogram(CAMPAIGN_PLAN_EVENTS);
    for class in CAMPAIGN_CLASSES {
        reg.counter(campaign_plans_key(class).expect("known class"));
        reg.counter(campaign_violations_key(class).expect("known class"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_both_keys() {
        for class in CAMPAIGN_CLASSES {
            let p = campaign_plans_key(class).expect("plans key");
            let v = campaign_violations_key(class).expect("violations key");
            assert_eq!(p, format!("campaign_plans_{class}"));
            assert_eq!(v, format!("campaign_violations_{class}"));
        }
        assert_eq!(campaign_plans_key("nope"), None);
        assert_eq!(campaign_violations_key("nope"), None);
    }

    #[test]
    fn registration_creates_the_full_ledger() {
        let reg = MetricsRegistry::new();
        register_campaign_metrics(&reg);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("campaign_plans_total"));
        for class in CAMPAIGN_CLASSES {
            assert!(json.contains(&format!("campaign_plans_{class}")), "{class}");
            assert!(
                json.contains(&format!("campaign_violations_{class}")),
                "{class}"
            );
        }
    }
}
