//! # owp-metrics — the quantitative health layer
//!
//! PR 2's telemetry answers *what happened* (typed event traces); this
//! crate answers *how healthy is it* — aggregated, queryable numbers over
//! the same stream, plus continuous verification of the paper's structural
//! guarantees:
//!
//! * [`MetricsRegistry`] — typed [`Counter`]/[`Gauge`]/[`Histogram`]
//!   handles registered by static key; recording is lock-free (one relaxed
//!   atomic per observation), histograms are log₂-bucketed, and handles
//!   are `Send + Sync` for the rayon experiment sweeps.
//! * [`MetricsSnapshot`] — frozen registry state with two deterministic
//!   exporters, [`MetricsSnapshot::to_prometheus`] and
//!   [`MetricsSnapshot::to_json`], and matching parsers for offline
//!   inspection (`owp-inspect`).
//! * [`MetricsRecorder`] — an [`owp_telemetry::Recorder`] that aggregates
//!   the event stream into the registry: per-kind message counters,
//!   send→deliver latency histograms (per-link FIFO pairing), PROP→accept
//!   latency, termination times, engine batch/repair distributions.
//! * [`Auditor`] — the online invariant auditor: quota feasibility,
//!   matching mutuality, eq. 9 weight symmetry, the Lemma 4
//!   locally-heaviest certificate (Theorem 2's ½-approximation), engine
//!   repair consistency and epoch monotonicity, reported as structured
//!   [`AuditViolation`]s (never panics) alongside ε-blocking-edge and
//!   satisfaction-ratio gauges.
//! * [`alloc`](mod@alloc) — allocation accounting for the engine's
//!   zero-allocation batch contract (the `engine_allocations_per_batch`
//!   gauge) plus the per-shard repair gauges of the sharded engine.
//! * [`daemon`](mod@daemon) — the `matchd_*` keys the matchmaking daemon
//!   publishes (ingest queue depth, admission rejects, WAL bytes, batch
//!   linger), shared between `owp-matchd` and the inspectors.
//!
//! The crate is intentionally *passive*: nothing here hooks itself into the
//! simulator or engine. Call sites opt in by handing a recorder or auditor
//! to the already-generic instrumentation points, so the zero-cost
//! discipline of the telemetry layer (NullRecorder fold-out, feature-gated
//! wiring) carries over unchanged — a binary that never constructs a
//! registry pays nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod audit;
pub mod campaign;
pub mod daemon;
pub mod recorder;
pub mod registry;
pub mod snapshot;

pub use alloc::{
    allocation_count, allocations_since, publish_allocations_per_batch, publish_shard_gauges,
    ALLOCATIONS_PER_BATCH, ALLOC_COUNT, PHASE2_ROUNDS, RECORDER_DROPPED, RECORDER_OCCUPANCY,
};
pub use daemon::{
    register_matchd_metrics, MATCHD_ADMISSION_REJECTS, MATCHD_AUDIT_CLEAN, MATCHD_AUDIT_COST_US,
    MATCHD_AUDIT_FAILURES, MATCHD_AUDIT_LAST_EPOCH, MATCHD_AUDIT_PASSES, MATCHD_BATCH_EVENTS,
    MATCHD_BATCH_LINGER_US, MATCHD_BUNDLES_SPOOLED, MATCHD_CONNECTIONS,
    MATCHD_CONNECTIONS_TOTAL, MATCHD_OPS_REQUESTS, MATCHD_QUEUE_DEPTH, MATCHD_READY,
    MATCHD_REQUESTS_TOTAL, MATCHD_REQ_CONTROL_US, MATCHD_REQ_QUERY_US, MATCHD_REQ_SUBMIT_US,
    MATCHD_SNAPSHOT_EPOCH, MATCHD_SPAN_ACK_US, MATCHD_SPAN_APPLY_US, MATCHD_SPAN_QUEUE_US,
    MATCHD_WAL_BYTES, MATCHD_WAL_RECORDS,
};
pub use audit::{
    epsilon_blocking_count, weight_upper_bound, AuditViolation, Auditor, InvariantKind,
};
pub use campaign::{
    campaign_plans_key, campaign_violations_key, register_campaign_metrics, CAMPAIGN_CLASSES,
    CAMPAIGN_CERTIFIED_TOTAL, CAMPAIGN_PLANS_TOTAL, CAMPAIGN_PLAN_EVENTS, CAMPAIGN_PLAN_WALL_US,
    CAMPAIGN_VIOLATIONS_TOTAL,
};
pub use recorder::MetricsRecorder;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
