//! [`MetricsRecorder`] — an [`owp_telemetry::Recorder`] that aggregates the
//! event stream into registry metrics instead of (or alongside) storing it.
//!
//! Drop it anywhere a recorder is accepted (`run_lid_traced`'s internals,
//! `Engine::apply_batch_traced`, or replaying an [`EventLog`] through
//! [`MetricsRecorder::consume`]) and the registry fills with:
//!
//! | metric | type | source |
//! |---|---|---|
//! | `messages_sent_total` (+ `_prop/_rej/_ack`) | counter | `Sent` |
//! | `messages_sent_other_<LABEL>` | counter | `Sent` with `Other(LABEL)` |
//! | `messages_delivered_total` | counter | `Delivered` |
//! | `messages_dropped_total` | counter | `Dropped` |
//! | `messages_dead_lettered_total` | counter | `DeadLettered` |
//! | `timers_fired_total` | counter | `TimerFired` |
//! | `message_latency_ticks` | histogram | matched `Sent`→`Delivered` |
//! | `prop_accept_latency_ticks` | histogram | `PropSent`→`EdgeLocked` per node |
//! | `node_termination_time_ticks` | histogram | `NodeTerminated` |
//! | `retransmits_total` | counter | `Retransmit` |
//! | `lic_edges_selected_total` | counter | `LicEdgeSelected` |
//! | `lic_discarded_total` / `lic_cursor_skips_total` | counter | LIC events |
//! | `engine_batch_events` / `engine_batch_evaluated` | histogram | `EngineBatchApplied` |
//! | `engine_edges_added_total` / `engine_edges_removed_total` | counter | edge deltas |
//! | `engine_reranked_total` | counter | `EngineReranked` |
//!
//! Latency pairing keeps a FIFO queue per `(from, to, kind)` link — exactly
//! the per-link FIFO discipline of the simnet — so reordered interleavings
//! across links still pair correctly. Unmatched sends (dropped, dead
//! lettered, still in flight) simply never produce a latency sample.

use crate::registry::{Counter, Histogram, MetricsRegistry};
use owp_telemetry::{MessageKind, NodeEvent, Recorder, TelemetryEvent};
use std::collections::{BTreeMap, VecDeque};

/// Aggregating recorder over a [`MetricsRegistry`].
///
/// The handles are cloned out of the registry at construction, so recording
/// never touches the registry mutex; the pairing state for latencies is
/// recorder-local.
#[derive(Debug)]
pub struct MetricsRecorder {
    sent_total: Counter,
    sent_kind: [Counter; MessageKind::FIXED],
    delivered_total: Counter,
    dropped_total: Counter,
    dead_lettered_total: Counter,
    timers_fired_total: Counter,
    retransmits_total: Counter,
    message_latency: Histogram,
    prop_accept_latency: Histogram,
    node_termination_time: Histogram,
    lic_edges_selected_total: Counter,
    lic_discarded_total: Counter,
    lic_cursor_skips_total: Counter,
    engine_batch_events: Histogram,
    engine_batch_evaluated: Histogram,
    engine_edges_added_total: Counter,
    engine_edges_removed_total: Counter,
    engine_reranked_total: Counter,
    /// Registry handle kept for lazy registration of per-label counters —
    /// `MessageKind::Other` labels are open-ended, so their families cannot
    /// be created up front like the fixed kinds.
    registry: MetricsRegistry,
    /// Lazily-registered `messages_sent_other_<LABEL>` counters, one per
    /// distinct `Other` label seen, so custom kinds stay distinguishable
    /// instead of folding into the total alone.
    sent_other: BTreeMap<&'static str, Counter>,
    /// Send times awaiting their delivery, FIFO per (from, to, kind) link.
    in_flight: BTreeMap<(u32, u32, MessageKind), VecDeque<u64>>,
    /// Outstanding proposals awaiting a lock, keyed (proposer, peer).
    pending_props: BTreeMap<(u32, u32), VecDeque<u64>>,
}

/// Interned `messages_sent_other_<LABEL>` registry key for a label. The
/// registry requires `&'static str` keys; each distinct label leaks its key
/// string exactly once, process-wide (label sets are tiny in practice).
fn sent_other_key(label: &'static str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static KEYS: OnceLock<Mutex<Vec<(&'static str, &'static str)>>> = OnceLock::new();
    let keys = KEYS.get_or_init(|| Mutex::new(Vec::new()));
    let mut keys = keys.lock().expect("key interner poisoned");
    if let Some(&(_, key)) = keys.iter().find(|&&(l, _)| l == label) {
        return key;
    }
    let key: &'static str = Box::leak(format!("messages_sent_other_{label}").into_boxed_str());
    keys.push((label, key));
    key
}

impl MetricsRecorder {
    /// Registers this recorder's metric families in `reg` and returns the
    /// recorder. Multiple recorders over the same registry share families.
    pub fn new(reg: &MetricsRegistry) -> Self {
        MetricsRecorder {
            sent_total: reg.counter("messages_sent_total"),
            sent_kind: [
                reg.counter("messages_sent_prop"),
                reg.counter("messages_sent_rej"),
                reg.counter("messages_sent_ack"),
            ],
            delivered_total: reg.counter("messages_delivered_total"),
            dropped_total: reg.counter("messages_dropped_total"),
            dead_lettered_total: reg.counter("messages_dead_lettered_total"),
            timers_fired_total: reg.counter("timers_fired_total"),
            retransmits_total: reg.counter("retransmits_total"),
            message_latency: reg.histogram("message_latency_ticks"),
            prop_accept_latency: reg.histogram("prop_accept_latency_ticks"),
            node_termination_time: reg.histogram("node_termination_time_ticks"),
            lic_edges_selected_total: reg.counter("lic_edges_selected_total"),
            lic_discarded_total: reg.counter("lic_discarded_total"),
            lic_cursor_skips_total: reg.counter("lic_cursor_skips_total"),
            engine_batch_events: reg.histogram("engine_batch_events"),
            engine_batch_evaluated: reg.histogram("engine_batch_evaluated"),
            engine_edges_added_total: reg.counter("engine_edges_added_total"),
            engine_edges_removed_total: reg.counter("engine_edges_removed_total"),
            engine_reranked_total: reg.counter("engine_reranked_total"),
            registry: reg.clone(),
            sent_other: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            pending_props: BTreeMap::new(),
        }
    }

    /// Replays every event of an already-captured log through the recorder
    /// (the offline path: aggregate a finished run's trace).
    pub fn consume(&mut self, log: &owp_telemetry::EventLog) {
        for &ev in log.events() {
            self.record(ev);
        }
    }

    /// Drops pairing state for sends that never delivered and proposals
    /// that never locked (call between independent runs sharing one
    /// recorder, so stale queue heads cannot skew the next run's pairing).
    pub fn reset_pairing(&mut self) {
        self.in_flight.clear();
        self.pending_props.clear();
    }
}

impl Recorder for MetricsRecorder {
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: TelemetryEvent) {
        match ev {
            TelemetryEvent::Sent { time, from, to, kind } => {
                self.sent_total.inc();
                match kind.fixed_slot() {
                    Some(slot) => self.sent_kind[slot].inc(),
                    None => {
                        let MessageKind::Other(label) = kind else { unreachable!() };
                        let reg = &self.registry;
                        self.sent_other
                            .entry(label)
                            .or_insert_with(|| reg.counter(sent_other_key(label)))
                            .inc();
                    }
                }
                self.in_flight.entry((from.0, to.0, kind)).or_default().push_back(time);
            }
            TelemetryEvent::Delivered { time, from, to, kind } => {
                self.delivered_total.inc();
                if let Some(sent) =
                    self.in_flight.get_mut(&(from.0, to.0, kind)).and_then(VecDeque::pop_front)
                {
                    self.message_latency.observe(time.saturating_sub(sent));
                }
            }
            TelemetryEvent::Dropped { from, to, kind, .. } => {
                self.dropped_total.inc();
                // The lost message occupies the oldest queue slot of its
                // link (per-link FIFO), so evict that to keep pairing sane.
                self.in_flight.get_mut(&(from.0, to.0, kind)).and_then(VecDeque::pop_front);
            }
            TelemetryEvent::DeadLettered { from, to, kind, .. } => {
                self.dead_lettered_total.inc();
                self.in_flight.get_mut(&(from.0, to.0, kind)).and_then(VecDeque::pop_front);
            }
            // Span lifecycle events carry causal identity, not new counts —
            // their transport twins (`Sent`/`Delivered`/...) are what the
            // counters and latency pairing aggregate. Offline causal
            // analysis consumes them via `owp_telemetry::CausalDag`.
            TelemetryEvent::SpanSent { .. }
            | TelemetryEvent::SpanDelivered { .. }
            | TelemetryEvent::SpanDropped { .. }
            | TelemetryEvent::SpanDeadLettered { .. } => {}
            TelemetryEvent::TimerFired { .. } => self.timers_fired_total.inc(),
            // Restarts are a fault-plan artefact; the chaos campaign counts
            // them per fault class through its own `campaign_*` ledger.
            TelemetryEvent::Restarted { .. } => {}
            TelemetryEvent::Node { time, node, event } => match event {
                NodeEvent::PropSent { to } => {
                    self.pending_props.entry((node.0, to.0)).or_default().push_back(time);
                }
                NodeEvent::EdgeLocked { peer } => {
                    if let Some(proposed) = self
                        .pending_props
                        .get_mut(&(node.0, peer.0))
                        .and_then(VecDeque::pop_front)
                    {
                        self.prop_accept_latency.observe(time.saturating_sub(proposed));
                    }
                }
                NodeEvent::NodeTerminated => self.node_termination_time.observe(time),
                NodeEvent::RejSent { .. } => {}
                NodeEvent::Retransmit { .. } => self.retransmits_total.inc(),
            },
            TelemetryEvent::LicEdgeSelected { .. } => self.lic_edges_selected_total.inc(),
            TelemetryEvent::LicNodeSaturated { discarded, .. } => {
                self.lic_discarded_total.add(discarded as u64)
            }
            TelemetryEvent::LicCursorAdvanced { skipped, .. } => {
                self.lic_cursor_skips_total.add(skipped as u64)
            }
            TelemetryEvent::EngineBatchApplied { events, evaluated, added, removed, .. } => {
                self.engine_batch_events.observe(events as u64);
                self.engine_batch_evaluated.observe(evaluated as u64);
                self.engine_edges_added_total.add(added as u64);
                self.engine_edges_removed_total.add(removed as u64);
            }
            TelemetryEvent::EngineEdgeAdded { .. } | TelemetryEvent::EngineEdgeRemoved { .. } => {}
            TelemetryEvent::EngineReranked { edges, .. } => {
                self.engine_reranked_total.add(edges as u64)
            }
            // Wire frames are daemon-boundary events; matchd aggregates
            // them through its own `matchd_*` instruments, not through
            // the protocol counters this recorder maintains.
            TelemetryEvent::WireFrameReceived { .. } | TelemetryEvent::WireFrameSent { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::NodeId;
    use owp_telemetry::EventLog;

    fn msg(
        mk: fn(u64, NodeId, NodeId, MessageKind) -> TelemetryEvent,
        t: u64,
        from: u32,
        to: u32,
        kind: MessageKind,
    ) -> TelemetryEvent {
        mk(t, NodeId(from), NodeId(to), kind)
    }

    fn sent(t: u64, from: u32, to: u32, kind: MessageKind) -> TelemetryEvent {
        msg(|time, from, to, kind| TelemetryEvent::Sent { time, from, to, kind }, t, from, to, kind)
    }

    fn delivered(t: u64, from: u32, to: u32, kind: MessageKind) -> TelemetryEvent {
        msg(
            |time, from, to, kind| TelemetryEvent::Delivered { time, from, to, kind },
            t,
            from,
            to,
            kind,
        )
    }

    #[test]
    fn latency_pairing_is_per_link_fifo() {
        let reg = MetricsRegistry::new();
        let mut rec = MetricsRecorder::new(&reg);
        // Two sends on one link, one on another; deliveries interleaved.
        rec.record(sent(0, 0, 1, MessageKind::Prop));
        rec.record(sent(2, 0, 1, MessageKind::Prop));
        rec.record(sent(1, 5, 6, MessageKind::Rej));
        rec.record(delivered(4, 0, 1, MessageKind::Prop)); // latency 4
        rec.record(delivered(9, 5, 6, MessageKind::Rej)); // latency 8
        rec.record(delivered(3, 0, 1, MessageKind::Prop)); // latency 1
        let lat = reg.histogram("message_latency_ticks");
        assert_eq!(lat.count(), 3);
        assert_eq!(lat.sum(), 13);
        assert_eq!(reg.counter("messages_sent_total").get(), 3);
        assert_eq!(reg.counter("messages_sent_prop").get(), 2);
        assert_eq!(reg.counter("messages_sent_rej").get(), 1);
        assert_eq!(reg.counter("messages_delivered_total").get(), 3);
    }

    #[test]
    fn drops_evict_their_queue_slot() {
        let reg = MetricsRegistry::new();
        let mut rec = MetricsRecorder::new(&reg);
        rec.record(sent(0, 0, 1, MessageKind::Prop));
        rec.record(sent(10, 0, 1, MessageKind::Prop));
        // First send lost: the later delivery must pair with the t=10 send.
        rec.record(msg(
            |time, from, to, kind| TelemetryEvent::Dropped { time, from, to, kind },
            1,
            0,
            1,
            MessageKind::Prop,
        ));
        rec.record(delivered(12, 0, 1, MessageKind::Prop));
        let lat = reg.histogram("message_latency_ticks");
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.sum(), 2);
        assert_eq!(reg.counter("messages_dropped_total").get(), 1);
    }

    #[test]
    fn other_kinds_get_distinct_labelled_counters() {
        let reg = MetricsRegistry::new();
        let mut rec = MetricsRecorder::new(&reg);
        // Two custom kinds plus a fixed one: the labels must not fold.
        rec.record(sent(0, 0, 1, MessageKind::Other("TOKEN")));
        rec.record(sent(1, 0, 1, MessageKind::Other("TOKEN")));
        rec.record(sent(2, 1, 0, MessageKind::Other("PING")));
        rec.record(sent(3, 1, 0, MessageKind::Ack));
        assert_eq!(reg.counter("messages_sent_total").get(), 4);
        assert_eq!(reg.counter(super::sent_other_key("TOKEN")).get(), 2);
        assert_eq!(reg.counter(super::sent_other_key("PING")).get(), 1);
        assert_eq!(reg.counter("messages_sent_ack").get(), 1);
        // The labelled families appear in snapshots under stable keys.
        let snap = reg.snapshot();
        assert!(snap.counters.iter().any(|(k, v)| k == "messages_sent_other_TOKEN" && *v == 2));
        assert!(snap.counters.iter().any(|(k, v)| k == "messages_sent_other_PING" && *v == 1));
    }

    #[test]
    fn span_events_do_not_double_count() {
        use owp_telemetry::SpanId;
        let reg = MetricsRegistry::new();
        let mut rec = MetricsRecorder::new(&reg);
        rec.record(sent(0, 0, 1, MessageKind::Prop));
        rec.record(TelemetryEvent::SpanSent {
            time: 0,
            span: SpanId(0),
            parent: None,
            from: NodeId(0),
            to: NodeId(1),
            kind: MessageKind::Prop,
        });
        rec.record(delivered(2, 0, 1, MessageKind::Prop));
        rec.record(TelemetryEvent::SpanDelivered { time: 2, span: SpanId(0) });
        assert_eq!(reg.counter("messages_sent_total").get(), 1);
        assert_eq!(reg.counter("messages_delivered_total").get(), 1);
        assert_eq!(reg.histogram("message_latency_ticks").count(), 1);
    }

    #[test]
    fn prop_accept_and_termination() {
        let reg = MetricsRegistry::new();
        let mut rec = MetricsRecorder::new(&reg);
        let node = |t, n, event| TelemetryEvent::Node { time: t, node: NodeId(n), event };
        rec.record(node(1, 0, NodeEvent::PropSent { to: NodeId(1) }));
        rec.record(node(5, 0, NodeEvent::EdgeLocked { peer: NodeId(1) }));
        rec.record(node(5, 0, NodeEvent::NodeTerminated));
        rec.record(node(6, 1, NodeEvent::Retransmit { to: NodeId(0) }));
        let h = reg.histogram("prop_accept_latency_ticks");
        assert_eq!((h.count(), h.sum()), (1, 4));
        assert_eq!(reg.histogram("node_termination_time_ticks").sum(), 5);
        assert_eq!(reg.counter("retransmits_total").get(), 1);
    }

    #[test]
    fn consume_replays_a_log_and_engine_events_aggregate() {
        let mut log = EventLog::enabled();
        log.record(TelemetryEvent::EngineBatchApplied {
            epoch: 1,
            events: 4,
            evaluated: 17,
            added: 2,
            removed: 1,
        });
        log.record(TelemetryEvent::EngineReranked { epoch: 1, edges: 6 });
        log.record(TelemetryEvent::LicNodeSaturated { step: 0, node: NodeId(0), discarded: 3 });
        let reg = MetricsRegistry::new();
        let mut rec = MetricsRecorder::new(&reg);
        rec.consume(&log);
        assert_eq!(reg.histogram("engine_batch_events").sum(), 4);
        assert_eq!(reg.histogram("engine_batch_evaluated").sum(), 17);
        assert_eq!(reg.counter("engine_edges_added_total").get(), 2);
        assert_eq!(reg.counter("engine_edges_removed_total").get(), 1);
        assert_eq!(reg.counter("engine_reranked_total").get(), 6);
        assert_eq!(reg.counter("lic_discarded_total").get(), 3);
    }
}
