//! Allocation accounting for the engine's zero-allocation contract.
//!
//! DESIGN.md §11 promises that a warmed-up [`owp_engine::Engine`] applies
//! a batch of structural events without touching the heap. Promises rot;
//! this module is the regression instrument that keeps it measurable:
//!
//! * [`ALLOC_COUNT`] — a process-global allocation counter. This crate is
//!   `#![forbid(unsafe_code)]`, so the `GlobalAlloc` shim that increments
//!   it lives in the leaf binaries that opt in (`owp-bench` installs one;
//!   `crates/engine/tests/zero_alloc.rs` carries its own): the shim
//!   delegates to the system allocator and bumps this counter once per
//!   `alloc`/`realloc` call. One relaxed increment per allocation — cheap
//!   enough to leave on in benchmark binaries.
//! * [`allocation_count`] / [`allocations_since`] — read the counter and
//!   difference it around a measured region.
//! * [`publish_allocations_per_batch`] — records the measured rate on the
//!   [`ALLOCATIONS_PER_BATCH`] gauge so `owp-inspect metrics` (and any
//!   exported snapshot) surfaces regressions next to the engine's other
//!   health numbers. Without an installed shim the counter stays 0 and
//!   the gauge honestly reports 0 allocations *observed*.
//!
//! Per-shard engine gauges ([`publish_shard_gauges`]) ride along here:
//! they intern their keys per `(prefix, shard)` pair — the registry wants
//! `&'static str` — following the label-interning precedent in
//! [`crate::recorder`].

use crate::registry::MetricsRegistry;
use owp_engine::Engine;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-global allocation counter, incremented by whichever
/// `#[global_allocator]` shim the enclosing binary installed.
pub static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// Gauge key for the steady-state allocation rate of the engine's batch
/// path (allocations per applied batch, measured after warm-up).
pub const ALLOCATIONS_PER_BATCH: &str = "engine_allocations_per_batch";

/// Gauge key for the two-phase repair rounds the last batch ran until
/// quiescent (1 = a single phase-1 pass settled everything).
pub const PHASE2_ROUNDS: &str = "engine_phase2_rounds";

/// Gauge key for telemetry events the engine's flight ring has
/// overwritten since construction (0 = the black box still holds the
/// whole run).
pub const RECORDER_DROPPED: &str = "recorder_dropped_events";

/// Gauge key for the flight ring's fill fraction in `[0, 1]` (1 = full,
/// i.e. every further event evicts the oldest).
pub const RECORDER_OCCUPANCY: &str = "recorder_ring_occupancy";

/// Allocations observed so far in this process (0 if no shim installed).
pub fn allocation_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Allocations observed since a previous [`allocation_count`] reading.
pub fn allocations_since(mark: u64) -> u64 {
    allocation_count().saturating_sub(mark)
}

/// Sets the [`ALLOCATIONS_PER_BATCH`] gauge. The canonical measurement
/// protocol (what e21 and the `zero_alloc` test do): apply one full event
/// cycle to warm the arenas, mark the counter, apply `batches` more, and
/// divide the difference.
pub fn publish_allocations_per_batch(reg: &MetricsRegistry, allocs: u64, batches: u64) {
    let rate = if batches == 0 { 0.0 } else { allocs as f64 / batches as f64 };
    reg.gauge(ALLOCATIONS_PER_BATCH).set(rate);
}

/// Interned `&'static str` keys for per-shard gauges: the registry keys
/// by static string, so dynamic `(prefix, shard)` names are leaked once
/// and reused for the life of the process (bounded by shards × prefixes).
fn shard_key(prefix: &'static str, s: usize) -> &'static str {
    static KEYS: Mutex<Option<HashMap<(&'static str, usize), &'static str>>> = Mutex::new(None);
    let mut guard = KEYS.lock().expect("shard-key interner poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry((prefix, s))
        .or_insert_with(|| Box::leak(format!("{prefix}_{s}").into_boxed_str()))
}

/// Publishes the engine's per-shard health gauges:
///
/// * `engine_shards`, `engine_boundary_edges`, `engine_boundary_fraction`
///   — the partition's static shape;
/// * `engine_shard_evaluated_<s>` — interior edges shard `s` evaluated in
///   the last applied batch (the phase-1 load balance);
/// * `engine_boundary_evaluated` — edges the phase-2 merge evaluated (the
///   sequential fraction the two-phase commit pays);
/// * [`PHASE2_ROUNDS`] — boundary-merge rounds the last batch needed to
///   reach quiescence (the cross-shard cascade depth);
/// * [`RECORDER_DROPPED`] / [`RECORDER_OCCUPANCY`] — the flight ring's
///   drop count and fill fraction, so a post-mortem knows how much of the
///   stream the black box still held.
pub fn publish_shard_gauges(reg: &MetricsRegistry, engine: &Engine) {
    let map = engine.shard_map();
    reg.gauge("engine_shards").set(map.shard_count() as f64);
    reg.gauge("engine_boundary_edges").set(map.boundary_count() as f64);
    reg.gauge("engine_boundary_fraction").set(map.boundary_fraction());
    reg.gauge("engine_boundary_evaluated")
        .set(engine.boundary_evaluated() as f64);
    for s in 0..map.shard_count() {
        reg.gauge(shard_key("engine_shard_evaluated", s))
            .set(engine.shard_evaluated(s) as f64);
    }
    reg.gauge(PHASE2_ROUNDS).set(engine.phase2_rounds() as f64);
    reg.gauge(RECORDER_DROPPED).set(engine.flight().dropped() as f64);
    reg.gauge(RECORDER_OCCUPANCY).set(engine.flight().occupancy());
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_engine::EngineEvent;
    use owp_graph::NodeId;
    use owp_matching::Problem;

    #[test]
    fn shard_gauges_cover_every_shard() {
        let mut e = owp_engine::Engine::builder(Problem::random_gnp(24, 0.3, 2, 41))
            .shards(4)
            .threads(1)
            .build();
        e.apply(EngineEvent::NodeLeave { node: NodeId(3) }).unwrap();
        let reg = MetricsRegistry::new();
        publish_shard_gauges(&reg, &e);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.contains("engine_shards"));
        assert!(json.contains("engine_boundary_fraction"));
        for s in 0..4 {
            assert!(json.contains(&format!("engine_shard_evaluated_{s}")), "shard {s}");
        }
        let total: f64 = (0..4).map(|s| e.shard_evaluated(s) as f64).sum::<f64>()
            + e.boundary_evaluated() as f64;
        assert!(total > 0.0, "a leave evaluates something");
    }

    #[test]
    fn forensic_gauges_reflect_the_engine() {
        let mut e = owp_engine::Engine::builder(Problem::random_gnp(24, 0.3, 2, 42))
            .flight_capacity(8)
            .build();
        for node in [NodeId(1), NodeId(2), NodeId(3)] {
            e.apply(EngineEvent::NodeLeave { node }).unwrap();
        }
        let reg = MetricsRegistry::new();
        publish_shard_gauges(&reg, &e);
        assert_eq!(reg.gauge(PHASE2_ROUNDS).get(), e.phase2_rounds() as f64);
        assert!(reg.gauge(PHASE2_ROUNDS).get() >= 1.0, "at least one round ran");
        assert_eq!(reg.gauge(RECORDER_DROPPED).get(), e.flight().dropped() as f64);
        let occ = reg.gauge(RECORDER_OCCUPANCY).get();
        assert!(occ > 0.0 && occ <= 1.0, "tiny ring fills fast: {occ}");
    }

    #[test]
    fn allocation_gauge_publishes_a_rate() {
        let reg = MetricsRegistry::new();
        publish_allocations_per_batch(&reg, 12, 4);
        assert_eq!(reg.gauge(ALLOCATIONS_PER_BATCH).get(), 3.0);
        publish_allocations_per_batch(&reg, 0, 0);
        assert_eq!(reg.gauge(ALLOCATIONS_PER_BATCH).get(), 0.0);
        // The hook itself: no shim is installed in unit tests, so the
        // counter only moves if we move it.
        let mark = allocation_count();
        ALLOC_COUNT.fetch_add(5, Ordering::Relaxed);
        assert_eq!(allocations_since(mark), 5);
    }
}
