//! The online invariant auditor: continuous checks of the paper's
//! structural guarantees, reported as structured violations and gauges.
//!
//! The auditor **never panics**: every broken invariant becomes an
//! [`AuditViolation`] (and bumps `audit_violations_total`), so a corrupted
//! run degrades to reporting instead of taking the process down — the
//! property a production overlay monitor needs.
//!
//! # Invariant catalogue
//!
//! | kind | property | source |
//! |---|---|---|
//! | [`InvariantKind::QuotaFeasibility`] | `c_i ≤ b_i` at every node | feasibility of eq. 2 |
//! | [`InvariantKind::Mutuality`] | edge selected ⇔ listed at both endpoints | matching well-formedness |
//! | [`InvariantKind::WeightSymmetry`] | stored `w(i,j)` equals eq. 9 | Lemma 5's precondition |
//! | [`InvariantKind::LocallyHeaviest`] | Lemma 4 witness at every unselected edge | Theorem 2 (½-approximation) |
//! | [`InvariantKind::EngineConsistency`] | maintained matching = canonical greedy over alive edges | PR 3's certified-repair invariant |
//! | [`InvariantKind::EpochMonotonicity`] | `DeltaReport` epochs strictly increase | engine versioning |
//! | [`InvariantKind::CausalAcyclicity`] | the trace's happens-before DAG is acyclic and clock-consistent | empirical Lemma 5 certificate |
//!
//! # Health gauges
//!
//! * `audit_epsilon_blocking_edges` — the ε-blocking-edge count of Floréen
//!   et al. (*Almost stable matchings in constant time*): an unselected
//!   edge is ε-blocking when **both** endpoints would profitably switch to
//!   it, tolerating a relative slack of ε. A locally-heaviest matching has
//!   **zero** ε-blocking edges at ε = 0 (each unselected edge's Lemma 4
//!   witness endpoint refuses the switch), so any positive value signals
//!   drift.
//! * `audit_satisfaction_ratio` — `w(M)` against the LP upper bound
//!   `Σ_i (top-bᵢ incident weights)/2 ≥ w(M*)`; since eq. 9 weights are
//!   exactly static satisfaction contributions, this is the satisfaction
//!   ratio against the greedy/LP bound. Theorem 2 guarantees the *true*
//!   ratio vs `w(M*)` is ≥ ½; the gauge is a conservative lower estimate
//!   and is informational (the exact optimum is not computed online).
//!
//! Ratio gauges are only refreshed by an audit pass that found no
//! structural violation — degraded mode keeps the last healthy values
//! rather than publishing numbers derived from a corrupt state.

use crate::registry::{Counter, Gauge, MetricsRegistry};
use owp_engine::{DeltaReport, Engine};
use owp_graph::NodeId;
use owp_matching::problem::Problem;
use owp_matching::verify;
use owp_matching::BMatching;
use std::fmt::Write as _;

/// Which invariant a violation broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InvariantKind {
    /// A node holds more connections than its quota allows.
    QuotaFeasibility,
    /// Edge selection and the two endpoint connection lists disagree.
    Mutuality,
    /// A stored edge weight does not match eq. 9 (symmetry/recomputation drift).
    WeightSymmetry,
    /// An unselected edge has no Lemma 4 witness — the ½-approximation
    /// certificate is broken.
    LocallyHeaviest,
    /// The engine's maintained matching differs from the canonical greedy
    /// matching over the alive edge set.
    EngineConsistency,
    /// A `DeltaReport` epoch failed to advance strictly.
    EpochMonotonicity,
    /// The happens-before DAG reconstructed from a trace is not a
    /// well-formed acyclic forest (cycle, temporal inversion, dangling or
    /// duplicated span) — Lemma 5 rules all of these out for live runs, so
    /// any hit means trace corruption or tampering.
    CausalAcyclicity,
}

impl InvariantKind {
    /// Short stable tag (the `"kind"` field of the JSON schema).
    pub fn tag(self) -> &'static str {
        match self {
            InvariantKind::QuotaFeasibility => "quota_feasibility",
            InvariantKind::Mutuality => "mutuality",
            InvariantKind::WeightSymmetry => "weight_symmetry",
            InvariantKind::LocallyHeaviest => "locally_heaviest",
            InvariantKind::EngineConsistency => "engine_consistency",
            InvariantKind::EpochMonotonicity => "epoch_monotonicity",
            InvariantKind::CausalAcyclicity => "causal_acyclicity",
        }
    }
}

impl std::fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One detected invariant breach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditViolation {
    /// The broken invariant.
    pub kind: InvariantKind,
    /// Engine epoch the breach was detected at (`None` for static audits).
    pub epoch: Option<u64>,
    /// Human-readable specifics (node/edge ids, expected vs found).
    pub detail: String,
}

impl AuditViolation {
    /// One JSON object (no trailing newline):
    /// `{"kind":"…","epoch":…,"detail":"…"}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(48 + self.detail.len());
        let _ = write!(s, "{{\"kind\":\"{}\",\"epoch\":", self.kind.tag());
        match self.epoch {
            Some(e) => {
                let _ = write!(s, "{e}");
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"detail\":\"");
        for c in self.detail.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                '\n' => s.push_str("\\n"),
                c => s.push(c),
            }
        }
        s.push_str("\"}");
        s
    }
}

/// Counts the ε-blocking edges of `m`: unselected edges where **both**
/// endpoints would switch — an endpoint switches if it has free quota, or
/// if one of its selected edges is lighter than `w(e)/(1+ε)`.
///
/// Zero at ε = 0 for any matching satisfying the Lemma 4 certificate.
pub fn epsilon_blocking_count(problem: &Problem, m: &BMatching, epsilon: f64) -> usize {
    let g = &problem.graph;
    let scale = 1.0 + epsilon.max(0.0);
    let blocking_at = |x: NodeId, w_e: f64| -> bool {
        let b = problem.quotas.get(x) as usize;
        if b == 0 {
            return false;
        }
        if m.degree(x) < b {
            return true;
        }
        m.connections(x).iter().any(|&j| {
            g.edge_between(x, j)
                .is_some_and(|f| problem.weights.get_f64(f) * scale < w_e)
        })
    };
    g.edges()
        .filter(|&e| {
            if m.contains(e) {
                return false;
            }
            let (u, v) = g.endpoints(e);
            let w_e = problem.weights.get_f64(e);
            blocking_at(u, w_e) && blocking_at(v, w_e)
        })
        .count()
}

/// The LP/greedy upper bound on the optimal matching weight:
/// `Σ_i (sum of the bᵢ heaviest weights incident to i) / 2`. Any feasible
/// matching uses at most `bᵢ` edges at `i` and each edge is counted at both
/// endpoints, so `w(M*) ≤` this bound.
pub fn weight_upper_bound(problem: &Problem) -> f64 {
    let g = &problem.graph;
    let mut total = 0.0f64;
    let mut incident: Vec<f64> = Vec::new();
    for i in g.nodes() {
        let b = problem.quotas.get(i) as usize;
        if b == 0 {
            continue;
        }
        incident.clear();
        incident.extend(g.neighbors(i).iter().map(|&(_, e)| problem.weights.get_f64(e)));
        incident.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        total += incident.iter().take(b).sum::<f64>();
    }
    total / 2.0
}

/// [`epsilon_blocking_count`] restricted to an alive sub-instance of a
/// universe problem: only edges with `alive[e]` exist, `quota[i]` is the
/// effective (alive-degree-clamped) quota. Counts exactly what
/// [`epsilon_blocking_count`] would on the projected sub-problem with
/// inherited universe weights.
pub fn epsilon_blocking_count_masked(
    problem: &Problem,
    alive: &[bool],
    quota: &[u32],
    m: &BMatching,
    epsilon: f64,
) -> usize {
    let g = &problem.graph;
    let scale = 1.0 + epsilon.max(0.0);
    let blocking_at = |x: NodeId, w_e: f64| -> bool {
        let b = quota[x.index()] as usize;
        if b == 0 {
            return false;
        }
        if m.degree(x) < b {
            return true;
        }
        m.connections(x).iter().any(|&j| {
            g.edge_between(x, j)
                .is_some_and(|f| problem.weights.get_f64(f) * scale < w_e)
        })
    };
    g.edges()
        .filter(|&e| {
            if !alive[e.index()] || m.contains(e) {
                return false;
            }
            let (u, v) = g.endpoints(e);
            let w_e = problem.weights.get_f64(e);
            blocking_at(u, w_e) && blocking_at(v, w_e)
        })
        .count()
}

/// [`weight_upper_bound`] restricted to an alive sub-instance: per node,
/// the top-`quota[i]` weights among its **alive** incident edges, halved.
pub fn weight_upper_bound_masked(problem: &Problem, alive: &[bool], quota: &[u32]) -> f64 {
    let g = &problem.graph;
    let mut total = 0.0f64;
    let mut incident: Vec<f64> = Vec::new();
    for i in g.nodes() {
        let b = quota[i.index()] as usize;
        if b == 0 {
            continue;
        }
        incident.clear();
        incident.extend(
            g.neighbors(i)
                .iter()
                .filter(|&&(_, e)| alive[e.index()])
                .map(|&(_, e)| problem.weights.get_f64(e)),
        );
        incident.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        total += incident.iter().take(b).sum::<f64>();
    }
    total / 2.0
}

/// The online auditor. Accumulates [`AuditViolation`]s across audit passes
/// and publishes health gauges into a [`MetricsRegistry`].
#[derive(Debug)]
pub struct Auditor {
    violations: Vec<AuditViolation>,
    violations_total: Counter,
    checks_total: Counter,
    eps_blocking: Gauge,
    satisfaction_ratio: Gauge,
    engine_matching_size: Gauge,
    engine_satisfaction: Gauge,
    lid_critical_path_len: Gauge,
    lid_critical_path_latency: Gauge,
    epsilon: f64,
    last_epoch: Option<u64>,
}

impl Auditor {
    /// An auditor publishing into `reg`, with ε = 0 (the strict
    /// blocking-edge notion).
    pub fn new(reg: &MetricsRegistry) -> Self {
        Auditor {
            violations: Vec::new(),
            violations_total: reg.counter("audit_violations_total"),
            checks_total: reg.counter("audit_checks_total"),
            eps_blocking: reg.gauge("audit_epsilon_blocking_edges"),
            satisfaction_ratio: reg.gauge("audit_satisfaction_ratio"),
            engine_matching_size: reg.gauge("audit_engine_matching_size"),
            engine_satisfaction: reg.gauge("audit_engine_satisfaction"),
            lid_critical_path_len: reg.gauge("lid_critical_path_len"),
            lid_critical_path_latency: reg.gauge("lid_critical_path_latency"),
            epsilon: 0.0,
            last_epoch: None,
        }
    }

    /// Sets the slack for the ε-blocking gauge.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.max(0.0);
        self
    }

    fn push(&mut self, kind: InvariantKind, epoch: Option<u64>, detail: String) {
        self.violations_total.inc();
        self.violations.push(AuditViolation { kind, epoch, detail });
    }

    /// Audits a static matching: quota feasibility, mutuality and the
    /// Lemma 4 locally-heaviest certificate; on a structurally clean pass,
    /// refreshes the ε-blocking and satisfaction-ratio gauges. Returns the
    /// number of violations this pass added.
    pub fn audit_matching(&mut self, problem: &Problem, m: &BMatching) -> usize {
        self.audit_matching_at(problem, m, None)
    }

    /// [`Auditor::audit_matching`] against a *live* state probe: identical
    /// checks, but every violation is stamped with the engine epoch the
    /// probed state belongs to. This is the entry point of matchd's
    /// continuous auditor, which restores an epoch-stamped
    /// `OriginSnapshot` off the hot path and audits it here.
    pub fn audit_live(&mut self, problem: &Problem, m: &BMatching, epoch: u64) -> usize {
        self.audit_matching_at(problem, m, Some(epoch))
    }

    /// [`Auditor::audit_live`] over an alive *sub-instance* described by a
    /// mask, without materializing the sub-problem: `problem` is the static
    /// universe, `alive[e]` marks the edges that exist right now, and `m`
    /// selects universe edge ids (all of which must be alive).
    ///
    /// Verdicts and gauges are identical to projecting the alive
    /// sub-instance (`DynamicProblem::snapshot_with_map`) and running
    /// [`Auditor::audit_live`] on it — the per-node quotas are clamped to
    /// alive degrees exactly as the projection's [`owp_graph::Quotas`]
    /// constructor would. Skipping the projection is what makes matchd's
    /// continuous auditor cheap enough to run at a fixed cadence: the
    /// universe `Problem` is re-derived once per structural change, not
    /// once per audit pass.
    ///
    /// # Panics
    /// Panics if `alive` does not cover the universe graph's edges.
    pub fn audit_live_masked(
        &mut self,
        problem: &Problem,
        alive: &[bool],
        m: &BMatching,
        epoch: u64,
    ) -> usize {
        let g = &problem.graph;
        assert_eq!(alive.len(), g.edge_count(), "alive mask/graph mismatch");
        self.checks_total.inc();
        let before = self.violations.len();
        let epoch = Some(epoch);

        // Effective quotas of the sub-instance: universe quota clamped to
        // alive degree, matching the projection's constructor clamp.
        let mut alive_deg = vec![0u32; g.node_count()];
        for e in g.edges() {
            if alive[e.index()] {
                let (u, v) = g.endpoints(e);
                alive_deg[u.index()] += 1;
                alive_deg[v.index()] += 1;
            }
        }
        let quota: Vec<u32> = g
            .nodes()
            .map(|i| problem.quotas.get(i).min(alive_deg[i.index()]))
            .collect();

        for i in g.nodes() {
            let c = m.degree(i);
            let b = quota[i.index()] as usize;
            if c > b {
                self.push(
                    InvariantKind::QuotaFeasibility,
                    epoch,
                    format!("node {} holds {c} connections, quota {b}", i.0),
                );
            }
        }

        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            if !alive[e.index()] {
                if m.contains(e) {
                    self.push(
                        InvariantKind::Mutuality,
                        epoch,
                        format!(
                            "edge {} = ({},{}) is selected but not alive",
                            e.0, u.0, v.0
                        ),
                    );
                }
                continue;
            }
            let listed =
                m.connections(u).contains(&v) && m.connections(v).contains(&u);
            if m.contains(e) != listed {
                self.push(
                    InvariantKind::Mutuality,
                    epoch,
                    format!(
                        "edge {} = ({},{}): selected={} but listed-at-both={}",
                        e.0,
                        u.0,
                        v.0,
                        m.contains(e),
                        listed
                    ),
                );
            }
        }

        if let Err(why) = verify::check_greedy_certificate_masked(problem, alive, &quota, m) {
            self.push(InvariantKind::LocallyHeaviest, epoch, why);
        }

        let added = self.violations.len() - before;
        if added == 0 {
            self.eps_blocking
                .set(epsilon_blocking_count_masked(problem, alive, &quota, m, self.epsilon) as f64);
            let upper = weight_upper_bound_masked(problem, alive, &quota);
            let ratio = if upper > 0.0 { m.total_weight(problem) / upper } else { 1.0 };
            self.satisfaction_ratio.set(ratio);
        }
        added
    }

    fn audit_matching_at(
        &mut self,
        problem: &Problem,
        m: &BMatching,
        epoch: Option<u64>,
    ) -> usize {
        self.checks_total.inc();
        let before = self.violations.len();
        let g = &problem.graph;

        for i in g.nodes() {
            let c = m.degree(i);
            let b = problem.quotas.get(i) as usize;
            if c > b {
                self.push(
                    InvariantKind::QuotaFeasibility,
                    epoch,
                    format!("node {} holds {c} connections, quota {b}", i.0),
                );
            }
        }

        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let listed =
                m.connections(u).contains(&v) && m.connections(v).contains(&u);
            if m.contains(e) != listed {
                self.push(
                    InvariantKind::Mutuality,
                    epoch,
                    format!(
                        "edge {} = ({},{}): selected={} but listed-at-both={}",
                        e.0,
                        u.0,
                        v.0,
                        m.contains(e),
                        listed
                    ),
                );
            }
        }

        if let Err(why) = verify::check_greedy_certificate(problem, m) {
            self.push(InvariantKind::LocallyHeaviest, epoch, why);
        }

        let added = self.violations.len() - before;
        if added == 0 {
            self.eps_blocking
                .set(epsilon_blocking_count(problem, m, self.epsilon) as f64);
            let upper = weight_upper_bound(problem);
            let ratio = if upper > 0.0 { m.total_weight(problem) / upper } else { 1.0 };
            self.satisfaction_ratio.set(ratio);
        }
        added
    }

    /// Audits eq. 9 weight symmetry of the stored weight table. Returns the
    /// number of violations added (0 or 1 — the first offending edge).
    pub fn audit_weights(&mut self, problem: &Problem) -> usize {
        self.checks_total.inc();
        match verify::check_weights(problem) {
            Ok(()) => 0,
            Err(why) => {
                self.push(InvariantKind::WeightSymmetry, None, why);
                1
            }
        }
    }

    /// Audits the engine's maintained matching against the canonical greedy
    /// matching over the current alive edge set (scan the rank order
    /// heaviest-first, select whenever both endpoints have quota left —
    /// with unique keys this is exactly the locally-heaviest matching the
    /// engine promises to maintain). Returns the violations added.
    pub fn audit_engine(&mut self, engine: &Engine) -> usize {
        self.checks_total.inc();
        let before = self.violations.len();
        let epoch = engine.epoch().0;
        let dp = engine.dynamic();
        let g = dp.graph();
        let m = engine.matching();

        let mut remaining: Vec<u32> = g.nodes().map(|i| dp.quotas().get(i)).collect();
        let mut expected = vec![false; g.edge_count()];
        for &e in dp.order().heaviest_first() {
            if !dp.is_alive(e) {
                continue;
            }
            let (u, v) = g.endpoints(e);
            if remaining[u.index()] > 0 && remaining[v.index()] > 0 {
                expected[e.index()] = true;
                remaining[u.index()] -= 1;
                remaining[v.index()] -= 1;
            }
        }
        for e in g.edges() {
            let want = expected[e.index()];
            let got = m.contains(e);
            if want != got {
                self.push(
                    InvariantKind::EngineConsistency,
                    Some(epoch),
                    format!(
                        "edge {}: canonical greedy says {}, engine matching says {}",
                        e.0,
                        if want { "selected" } else { "unselected" },
                        if got { "selected" } else { "unselected" }
                    ),
                );
            }
        }

        let added = self.violations.len() - before;
        if added == 0 {
            self.engine_matching_size.set(m.size() as f64);
            self.engine_satisfaction.set(engine.total_satisfaction());
        }
        added
    }

    /// Audits a trace's happens-before DAG (the empirical Lemma 5
    /// certificate): every [`owp_telemetry::CausalViolation`] found becomes
    /// a [`InvariantKind::CausalAcyclicity`] violation. On a clean pass the
    /// `lid_critical_path_len` / `lid_critical_path_latency` gauges are
    /// refreshed from the DAG (degraded mode keeps the last healthy
    /// values, matching the other gauges). Returns the violations added.
    pub fn audit_causal(&mut self, dag: &owp_telemetry::CausalDag) -> usize {
        self.checks_total.inc();
        let causal = dag.verify();
        let added = causal.len();
        for v in causal {
            self.push(
                InvariantKind::CausalAcyclicity,
                None,
                format!("{} at {}: {}", v.kind.tag(), v.span, v.detail),
            );
        }
        if added == 0 {
            let path = dag.critical_path();
            self.lid_critical_path_len.set(path.len() as f64);
            self.lid_critical_path_latency.set(path.total_latency() as f64);
        }
        added
    }

    /// Consumes one engine [`DeltaReport`]: checks strict epoch advance and
    /// refreshes the engine gauges from the report. Returns the violations
    /// added (0 or 1).
    pub fn observe_delta(&mut self, report: &DeltaReport) -> usize {
        self.checks_total.inc();
        let epoch = report.epoch.0;
        let mut added = 0;
        if let Some(last) = self.last_epoch {
            if epoch <= last {
                self.push(
                    InvariantKind::EpochMonotonicity,
                    Some(epoch),
                    format!("epoch {epoch} does not advance past {last}"),
                );
                added = 1;
            }
        }
        self.last_epoch = Some(epoch);
        if added == 0 {
            self.engine_matching_size.set(report.matching_size as f64);
            self.engine_satisfaction.set(report.total_satisfaction);
        }
        added
    }

    /// All violations detected so far, in detection order.
    pub fn report(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// `true` iff no audit pass has detected a violation.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations as JSONL (one object per line; empty string when clean).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_matching::weights::EdgeWeights;
    use owp_matching::{lic, Rational, SelectionPolicy};

    fn instance(seed: u64) -> Problem {
        Problem::random_gnp(40, 0.2, 2, seed)
    }

    #[test]
    fn clean_lic_run_audits_clean() {
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        for seed in 0..5 {
            let p = instance(seed);
            let m = lic(&p, SelectionPolicy::InOrder);
            assert_eq!(auditor.audit_weights(&p), 0);
            assert_eq!(auditor.audit_matching(&p, &m), 0);
        }
        assert!(auditor.is_clean());
        assert_eq!(auditor.to_jsonl(), "");
        // Locally heaviest ⇒ zero blocking edges at ε = 0, and the ratio
        // gauge sits inside (0, 1].
        assert_eq!(reg.gauge("audit_epsilon_blocking_edges").get(), 0.0);
        let ratio = reg.gauge("audit_satisfaction_ratio").get();
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio}");
        assert_eq!(reg.counter("audit_violations_total").get(), 0);
    }

    #[test]
    fn quota_overflow_is_reported_not_panicked() {
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        let p = instance(1);
        let mut m = lic(&p, SelectionPolicy::InOrder);
        // Force an extra edge onto a node that is already at quota.
        let full = p
            .graph
            .nodes()
            .find(|&i| m.degree(i) == p.quotas.get(i) as usize && p.quotas.get(i) > 0)
            .expect("some saturated node");
        let extra = p
            .graph
            .neighbors(full)
            .iter()
            .map(|&(_, e)| e)
            .find(|&e| !m.contains(e))
            .expect("an unselected incident edge");
        m.insert_unchecked(&p.graph, extra);
        let added = auditor.audit_matching(&p, &m);
        assert!(added > 0);
        assert!(auditor
            .report()
            .iter()
            .any(|v| v.kind == InvariantKind::QuotaFeasibility));
        assert!(!auditor.is_clean());
        assert_eq!(reg.counter("audit_violations_total").get(), added as u64);
        // Degraded mode: gauges were never refreshed by the dirty pass.
        assert_eq!(reg.gauge("audit_satisfaction_ratio").get(), 0.0);
        let line = auditor.to_jsonl();
        assert!(line.contains("\"kind\":\"quota_feasibility\""), "{line}");
    }

    #[test]
    fn live_audit_stamps_the_epoch() {
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        let p = instance(1);
        let mut m = lic(&p, SelectionPolicy::InOrder);
        let heaviest = *p.order.heaviest_first().iter().find(|&&e| m.contains(e)).unwrap();
        m.remove(&p.graph, heaviest);
        assert!(auditor.audit_live(&p, &m, 77) > 0);
        assert!(auditor.report().iter().all(|v| v.epoch == Some(77)));
        // The clean path refreshes gauges exactly like audit_matching.
        let mut clean = Auditor::new(&reg);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(clean.audit_live(&p, &m, 78), 0);
        assert_eq!(reg.gauge("audit_epsilon_blocking_edges").get(), 0.0);
    }

    #[test]
    fn asymmetric_weight_is_reported() {
        let p = instance(2);
        // Tamper with one edge's weight so it no longer matches eq. 9.
        let mut raw: Vec<Rational> =
            p.graph.edges().map(|e| p.weights.get(e)).collect();
        raw[0] = raw[0] + Rational::new(1, 2);
        let tampered = Problem::with_weights(
            p.graph.clone(),
            p.prefs.clone(),
            p.quotas.clone(),
            EdgeWeights::from_raw(raw),
        );
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        assert_eq!(auditor.audit_weights(&tampered), 1);
        assert_eq!(auditor.report()[0].kind, InvariantKind::WeightSymmetry);
        assert!(auditor.report()[0].to_json().starts_with("{\"kind\":\"weight_symmetry\""));
    }

    #[test]
    fn removing_a_matched_edge_breaks_the_certificate() {
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        let p = instance(3);
        let mut m = lic(&p, SelectionPolicy::InOrder);
        let heaviest = *p.order.heaviest_first().iter().find(|&&e| m.contains(e)).unwrap();
        m.remove(&p.graph, heaviest);
        let added = auditor.audit_matching(&p, &m);
        assert!(added > 0);
        assert!(auditor
            .report()
            .iter()
            .any(|v| v.kind == InvariantKind::LocallyHeaviest));
    }

    #[test]
    fn masked_live_audit_matches_projection() {
        use owp_engine::DynamicProblem;
        for seed in 0..4u64 {
            let p = instance(seed);
            // Deterministically deactivate some nodes and remove some edges.
            let active: Vec<bool> =
                (0..p.node_count()).map(|i| (i * 7 + seed as usize) % 5 != 0).collect();
            let present: Vec<bool> =
                (0..p.edge_count()).map(|k| (k * 11 + seed as usize) % 7 != 0).collect();
            let dp = DynamicProblem::from_parts(p.clone(), active, present);
            let (sub, map) = dp.snapshot_with_map();
            let sub_m = lic(&sub, SelectionPolicy::InOrder);

            // The same matching, expressed in universe edge ids.
            let alive: Vec<bool> = dp.graph().edges().map(|e| dp.is_alive(e)).collect();
            let mut uni_m = BMatching::empty(&p.graph);
            for e in sub_m.edge_ids() {
                uni_m.insert_unchecked(&p.graph, map[e.index()]);
            }

            let reg_proj = MetricsRegistry::new();
            let mut proj = Auditor::new(&reg_proj);
            assert_eq!(proj.audit_live(&sub, &sub_m, 5), 0);
            let reg_mask = MetricsRegistry::new();
            let mut mask = Auditor::new(&reg_mask);
            assert_eq!(mask.audit_live_masked(&p, &alive, &uni_m, 5), 0);

            // The gauges agree: ε-blocking exactly, the float ratio up to
            // summation order.
            assert_eq!(
                reg_proj.gauge("audit_epsilon_blocking_edges").get(),
                reg_mask.gauge("audit_epsilon_blocking_edges").get(),
                "seed {seed}"
            );
            let r_proj = reg_proj.gauge("audit_satisfaction_ratio").get();
            let r_mask = reg_mask.gauge("audit_satisfaction_ratio").get();
            assert!((r_proj - r_mask).abs() < 1e-9, "seed {seed}: {r_proj} vs {r_mask}");

            // Tamper identically in both views: dropping the heaviest
            // selected edge breaks the Lemma 4 certificate in each.
            let heaviest =
                *sub.order.heaviest_first().iter().find(|&&e| sub_m.contains(e)).unwrap();
            let mut sub_bad = sub_m.clone();
            sub_bad.remove(&sub.graph, heaviest);
            let mut uni_bad = uni_m.clone();
            uni_bad.remove(&p.graph, map[heaviest.index()]);
            assert!(proj.audit_live(&sub, &sub_bad, 6) > 0);
            assert!(mask.audit_live_masked(&p, &alive, &uni_bad, 6) > 0);
            assert!(mask
                .report()
                .iter()
                .any(|v| v.kind == InvariantKind::LocallyHeaviest && v.epoch == Some(6)));
        }
    }

    #[test]
    fn masked_live_audit_flags_dead_selected_edge() {
        use owp_engine::DynamicProblem;
        let p = instance(9);
        let active = vec![true; p.node_count()];
        let mut present = vec![true; p.edge_count()];
        let dp = DynamicProblem::from_parts(p.clone(), active, present.clone());
        let alive_all: Vec<bool> = dp.graph().edges().map(|e| dp.is_alive(e)).collect();
        let m = lic(&p, SelectionPolicy::InOrder);
        let selected = *m.edge_ids().first().expect("non-empty matching");
        // Kill one selected edge out from under the matching.
        present[selected.index()] = false;
        let mut alive = alive_all;
        alive[selected.index()] = false;
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        assert!(auditor.audit_live_masked(&p, &alive, &m, 3) > 0);
        assert!(auditor
            .report()
            .iter()
            .any(|v| v.kind == InvariantKind::Mutuality
                && v.detail.contains("selected but not alive")));
    }

    #[test]
    fn epsilon_blocking_counts_relaxed_pairs() {
        let p = instance(4);
        let empty = BMatching::empty(&p.graph);
        // Every edge blocks an empty matching (free quota everywhere).
        assert_eq!(epsilon_blocking_count(&p, &empty, 0.0), p.graph.edge_count());
        // A huge ε forgives any saturated endpoint.
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(epsilon_blocking_count(&p, &m, 0.0), 0);
        assert!(weight_upper_bound(&p) >= m.total_weight(&p));
    }

    #[test]
    fn causal_audit_certifies_clean_and_flags_tampered() {
        use owp_graph::NodeId as N;
        use owp_telemetry::{CausalDag, EventLog, MessageKind, Recorder as _, SpanId, TelemetryEvent};
        let sent = |time, span, parent: Option<u64>, from: u32, to: u32| TelemetryEvent::SpanSent {
            time,
            span: SpanId(span),
            parent: parent.map(SpanId),
            from: N(from),
            to: N(to),
            kind: MessageKind::Prop,
        };
        // Clean 2-hop chain refreshes the critical-path gauges.
        let mut log = EventLog::enabled();
        log.record(sent(0, 0, None, 0, 1));
        log.record(TelemetryEvent::SpanDelivered { time: 2, span: SpanId(0) });
        log.record(sent(2, 1, Some(0), 1, 2));
        log.record(TelemetryEvent::SpanDelivered { time: 5, span: SpanId(1) });
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        assert_eq!(auditor.audit_causal(&CausalDag::from_log(&log)), 0);
        assert!(auditor.is_clean());
        assert_eq!(reg.gauge("lid_critical_path_len").get(), 2.0);
        assert_eq!(reg.gauge("lid_critical_path_latency").get(), 5.0);

        // A tampered trace with a parent cycle is reported, never panics,
        // and leaves the healthy gauge values untouched (degraded mode).
        let mut bad = EventLog::enabled();
        bad.record(sent(0, 5, Some(6), 0, 1));
        bad.record(TelemetryEvent::SpanDelivered { time: 1, span: SpanId(5) });
        bad.record(sent(1, 6, Some(5), 1, 0));
        bad.record(TelemetryEvent::SpanDelivered { time: 2, span: SpanId(6) });
        let added = auditor.audit_causal(&CausalDag::from_log(&bad));
        assert!(added > 0);
        assert!(auditor
            .report()
            .iter()
            .any(|v| v.kind == InvariantKind::CausalAcyclicity
                && v.detail.contains("cycle_detected")));
        assert_eq!(reg.counter("audit_violations_total").get(), added as u64);
        assert_eq!(reg.gauge("lid_critical_path_len").get(), 2.0);
        let line = auditor.to_jsonl();
        assert!(line.contains("\"kind\":\"causal_acyclicity\""), "{line}");
    }

    #[test]
    fn epoch_monotonicity() {
        let reg = MetricsRegistry::new();
        let mut auditor = Auditor::new(&reg);
        let mk = |e: u64| DeltaReport {
            epoch: owp_engine::Epoch(e),
            events: 1,
            edges_added: vec![],
            edges_removed: vec![],
            evaluated: 0,
            reranked: 0,
            delta_satisfaction: 0.0,
            total_satisfaction: 1.5,
            matching_size: 3,
        };
        assert_eq!(auditor.observe_delta(&mk(1)), 0);
        assert_eq!(auditor.observe_delta(&mk(2)), 0);
        assert_eq!(reg.gauge("audit_engine_matching_size").get(), 3.0);
        assert_eq!(auditor.observe_delta(&mk(2)), 1);
        assert_eq!(auditor.report()[0].kind, InvariantKind::EpochMonotonicity);
        assert_eq!(auditor.report()[0].epoch, Some(2));
    }
}
