//! Offline vendored subset of the `criterion` 0.5 bench-harness API.
//!
//! Real criterion is unreachable in this build environment. This stand-in
//! keeps the same authoring surface (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `Bencher::iter`, [`black_box`], [`BenchmarkId`],
//! [`Throughput`]) and a simple but honest measurement loop: warm-up, then
//! timed batches until a wall-clock budget, reporting median / mean /
//! min ns-per-iteration (and derived throughput) on stdout.
//!
//! A positional CLI argument acts as a substring filter on benchmark names,
//! matching `cargo bench -- <filter>`; the `--bench`/`--test` flags cargo
//! passes are accepted and ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    /// Wall-clock measurement budget per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        let measurement = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(600));
        Criterion {
            filter,
            measurement,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Group-less single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_one(self, None, &id.id, None, |b| f(b));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the harness is wall-clock budgeted so
    /// the sample count is derived, not configured.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_one(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.throughput,
            |b| f(b),
        );
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        run_one(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs the measured loop.
pub struct Bencher {
    /// Collected per-iteration sample durations (ns).
    samples: Vec<f64>,
    budget: Duration,
}

impl Bencher {
    /// Measures `f`, discarding warm-up, until the time budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up & batch-size calibration: grow the batch until one batch
        // costs ≥ ~1ms (or a cap), so Instant overhead is amortized.
        let mut batch = 1u64;
        let warmup_deadline = Instant::now() + self.budget / 4;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
            if Instant::now() >= warmup_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < 3 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &criterion.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        budget: criterion.measurement,
    };
    f(&mut bencher);
    let mut s = bencher.samples;
    if s.is_empty() {
        println!("{full:<60} (no samples)");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    let min = s[0];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(e) => format!("  {:>12}/s", human(e as f64 * 1e9 / median)),
        Throughput::Bytes(by) => format!("  {:>10}B/s", human(by as f64 * 1e9 / median)),
    });
    println!(
        "{full:<60} median {:>12}  mean {:>12}  min {:>12}{}",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            measurement: Duration::from_millis(20),
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nothing-matches-this".into()),
            measurement: Duration::from_millis(5),
        };
        // Closure must never run when filtered out.
        c.bench_function("other", |_b| panic!("should be filtered"));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 5).id, "a/5");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
