//! Structural graph properties used by the experiment harness.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Connected-component labelling via BFS.
///
/// Returns `(labels, component_count)` where `labels[i]` is the 0-based
/// component index of node `i`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    const UNSEEN: usize = usize::MAX;
    let mut label = vec![UNSEEN; g.node_count()];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if label[s.index()] != UNSEEN {
            continue;
        }
        label[s.index()] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbor_ids(u) {
                if label[v.index()] == UNSEEN {
                    label[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// `true` iff the graph has at most one connected component.
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || connected_components(g).1 == 1
}

/// BFS hop distances from `source`; `None` for unreachable nodes.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let mut dist: Vec<Option<u32>> = vec![None; g.node_count()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued node has distance");
        for v in g.neighbor_ids(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Histogram of node degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for i in g.nodes() {
        hist[g.degree(i)] += 1;
    }
    hist
}

/// Average local clustering coefficient (Watts–Strogatz definition).
/// Nodes of degree < 2 contribute 0.
pub fn avg_clustering(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in g.nodes() {
        let nbrs = g.neighbors(i);
        let d = nbrs.len();
        if d < 2 {
            continue;
        }
        let mut links = 0usize;
        for a in 0..d {
            for b in (a + 1)..d {
                if g.has_edge(nbrs[a].0, nbrs[b].0) {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (d * (d - 1)) as f64;
    }
    total / g.node_count() as f64
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Positive for BA-like "rich club" mixing, ~0 for G(n,p).
/// Returns 0 for graphs with fewer than 2 edges or zero degree variance.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let m = g.edge_count();
    if m < 2 {
        return 0.0;
    }
    // Over directed edge endpoints (each edge counted both ways).
    let (mut sum_xy, mut sum_x, mut sum_x2) = (0.0f64, 0.0f64, 0.0f64);
    let cnt = (2 * m) as f64;
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        sum_xy += 2.0 * du * dv;
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
    }
    let mean = sum_x / cnt;
    let var = sum_x2 / cnt - mean * mean;
    if var <= 1e-15 {
        return 0.0;
    }
    (sum_xy / cnt - mean * mean) / var
}

/// Exact diameter (max eccentricity over the largest component) via BFS
/// from every node — O(n·m); fine for experiment-sized graphs. Returns 0
/// for graphs with no edges.
pub fn diameter(g: &Graph) -> u32 {
    let mut best = 0;
    for s in g.nodes() {
        for d in bfs_distances(g, s).into_iter().flatten() {
            best = best.max(d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, path, ring};
    use crate::GraphBuilder;

    #[test]
    fn diameter_of_classics() {
        assert_eq!(diameter(&path(6)), 5);
        assert_eq!(diameter(&ring(8)), 4);
        assert_eq!(diameter(&complete(5)), 1);
        assert_eq!(diameter(&GraphBuilder::new(3).build()), 0);
    }

    #[test]
    fn assortativity_signs() {
        // Regular graphs have zero degree variance → defined as 0.
        assert_eq!(degree_assortativity(&ring(10)), 0.0);
        // A star is maximally disassortative.
        let star = crate::generators::star(10);
        assert!(degree_assortativity(&star) < -0.99);
        // BA graphs on few nodes are typically disassortative; just check
        // the value is a sane correlation.
        use rand::SeedableRng;
        let g = crate::generators::barabasi_albert(
            200,
            3,
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );
        let r = degree_assortativity(&g);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn components_of_disjoint_paths() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 4); // {0,1}, {2,3}, {4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!is_connected(&g));
        assert!(is_connected(&ring(5)));
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = GraphBuilder::new(3).build();
        let d = bfs_distances(&g, NodeId(1));
        assert_eq!(d, vec![None, Some(0), None]);
    }

    #[test]
    fn clustering_extremes() {
        assert!((avg_clustering(&complete(5)) - 1.0).abs() < 1e-12);
        assert_eq!(avg_clustering(&ring(6)), 0.0);
        assert_eq!(avg_clustering(&GraphBuilder::new(0).build()), 0.0);
    }

    #[test]
    fn degree_histogram_star() {
        let g = crate::generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }
}
