//! Private preference lists `L_i` and the rank function `R_i(j)`.
//!
//! Every node `i` ranks its whole neighbourhood `Γ_i`: `R_i(j) ∈
//! {0, …, |L_i|−1}` with 0 the most desirable neighbour (paper §2). The list
//! is conceptually *private* — the matching algorithms only ever read the
//! derived satisfaction increments, never the list itself; keeping the table
//! as a separate value from the [`Graph`] makes that boundary explicit.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A rank in a preference list; 0 is the most desirable neighbour.
pub type Rank = u32;

/// Errors raised when constructing a [`PreferenceTable`] from explicit lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreferenceError {
    /// The number of lists does not match the number of nodes.
    WrongNodeCount {
        /// Lists supplied.
        got: usize,
        /// Nodes in the graph.
        expected: usize,
    },
    /// A list is not a permutation of the node's neighbourhood.
    NotAPermutation {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for PreferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreferenceError::WrongNodeCount { got, expected } => {
                write!(f, "{got} preference lists supplied for {expected} nodes")
            }
            PreferenceError::NotAPermutation { node } => {
                write!(f, "preference list of {node:?} is not a permutation of its neighbourhood")
            }
        }
    }
}

impl std::error::Error for PreferenceError {}

/// Per-node preference lists over neighbourhoods, with O(log d) rank lookup.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PreferenceTable {
    /// `lists[i]` = `L_i`, best neighbour first.
    lists: Vec<Vec<NodeId>>,
    /// `ranks[i]` = `(neighbour, rank)` sorted by neighbour id.
    ranks: Vec<Vec<(NodeId, Rank)>>,
}

impl PreferenceTable {
    fn from_lists_unchecked(lists: Vec<Vec<NodeId>>) -> Self {
        let build = |list: &[NodeId]| {
            let mut r: Vec<(NodeId, Rank)> = list
                .iter()
                .enumerate()
                .map(|(rank, &j)| (j, rank as Rank))
                .collect();
            r.sort_unstable_by_key(|&(j, _)| j);
            r
        };
        // The per-node rank arrays are a pure function of each list, so the
        // `parallel` build produces exactly the sequential result.
        #[cfg(feature = "parallel")]
        let ranks = {
            use rayon::prelude::*;
            (0..lists.len())
                .into_par_iter()
                .map(|i| build(&lists[i]))
                .collect()
        };
        #[cfg(not(feature = "parallel"))]
        let ranks = lists.iter().map(|list| build(list)).collect();
        PreferenceTable { lists, ranks }
    }

    /// Builds a table from explicit lists, validating that `lists[i]` is a
    /// permutation of `Γ_i` for every node.
    pub fn from_lists(g: &Graph, lists: Vec<Vec<NodeId>>) -> Result<Self, PreferenceError> {
        if lists.len() != g.node_count() {
            return Err(PreferenceError::WrongNodeCount {
                got: lists.len(),
                expected: g.node_count(),
            });
        }
        for (i, list) in lists.iter().enumerate() {
            let i = NodeId(i as u32);
            if list.len() != g.degree(i) {
                return Err(PreferenceError::NotAPermutation { node: i });
            }
            let mut sorted = list.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != list.len()
                || !sorted
                    .iter()
                    .zip(g.neighbor_ids(i))
                    .all(|(&a, b)| a == b)
            {
                return Err(PreferenceError::NotAPermutation { node: i });
            }
        }
        Ok(Self::from_lists_unchecked(lists))
    }

    /// Uniformly random preference lists: each node ranks its neighbourhood by
    /// an independent random permutation. The fully-heterogeneous case the
    /// paper argues about (arbitrary private metrics, possibly cyclic).
    pub fn random<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Self {
        let lists = g
            .nodes()
            .map(|i| {
                let mut nbrs: Vec<NodeId> = g.neighbor_ids(i).collect();
                nbrs.shuffle(rng);
                nbrs
            })
            .collect();
        Self::from_lists_unchecked(lists)
    }

    /// Builds preference lists from a suitability score: node `i` ranks
    /// neighbour `j` above `k` iff `score(i, j) > score(i, k)` (higher score =
    /// more desirable). Ties broken by smaller node id, so the table is
    /// deterministic.
    pub fn by_score<F: FnMut(NodeId, NodeId) -> f64>(g: &Graph, mut score: F) -> Self {
        let lists = g
            .nodes()
            .map(|i| {
                let mut scored: Vec<(f64, NodeId)> =
                    g.neighbor_ids(i).map(|j| (score(i, j), j)).collect();
                scored.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0)
                        .expect("suitability scores must not be NaN")
                        .then_with(|| a.1.cmp(&b.1))
                });
                scored.into_iter().map(|(_, j)| j).collect()
            })
            .collect();
        Self::from_lists_unchecked(lists)
    }

    /// Globally aligned preferences: every node ranks neighbours by node id
    /// ascending (an *acyclic* preference system in the sense of Gai et al.,
    /// used as the easy baseline case in the experiments).
    pub fn by_node_id(g: &Graph) -> Self {
        let lists = g.nodes().map(|i| g.neighbor_ids(i).collect()).collect();
        Self::from_lists_unchecked(lists)
    }

    /// Replaces `L_i` with a new permutation of `i`'s neighbourhood,
    /// rebuilding the rank lookup for that node only.
    ///
    /// This is the mutation entry point of the dynamic engine
    /// (`owp-engine`'s `PreferenceUpdate` event): a peer re-ranks its
    /// neighbourhood at runtime, e.g. after observing transaction history.
    /// The list must cover the **full** neighbourhood `Γ_i` of the
    /// underlying (universe) graph, exactly like [`PreferenceTable::from_lists`].
    pub fn set_list(
        &mut self,
        g: &Graph,
        i: NodeId,
        list: Vec<NodeId>,
    ) -> Result<(), PreferenceError> {
        if list.len() != g.degree(i) {
            return Err(PreferenceError::NotAPermutation { node: i });
        }
        let mut sorted = list.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != list.len()
            || !sorted.iter().zip(g.neighbor_ids(i)).all(|(&a, b)| a == b)
        {
            return Err(PreferenceError::NotAPermutation { node: i });
        }
        let mut ranks: Vec<(NodeId, Rank)> = list
            .iter()
            .enumerate()
            .map(|(rank, &j)| (j, rank as Rank))
            .collect();
        ranks.sort_unstable_by_key(|&(j, _)| j);
        self.lists[i.index()] = list;
        self.ranks[i.index()] = ranks;
        Ok(())
    }

    /// The rank `R_i(j)` of neighbour `j` in `i`'s list, or `None` if `j` is
    /// not a neighbour of `i`.
    #[inline]
    pub fn rank(&self, i: NodeId, j: NodeId) -> Option<Rank> {
        let ranks = &self.ranks[i.index()];
        ranks
            .binary_search_by_key(&j, |&(v, _)| v)
            .ok()
            .map(|pos| ranks[pos].1)
    }

    /// The full preference list `L_i`, best neighbour first.
    #[inline]
    pub fn list(&self, i: NodeId) -> &[NodeId] {
        &self.lists[i.index()]
    }

    /// The list length `|L_i|` (equals the degree `d_i`).
    #[inline]
    pub fn list_len(&self, i: NodeId) -> usize {
        self.lists[i.index()].len()
    }

    /// Number of nodes covered by the table.
    pub fn node_count(&self) -> usize {
        self.lists.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, star};
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_is_inverse_of_list() {
        let g = complete(6);
        let mut rng = StdRng::seed_from_u64(20);
        let p = PreferenceTable::random(&g, &mut rng);
        for i in g.nodes() {
            for (rank, &j) in p.list(i).iter().enumerate() {
                assert_eq!(p.rank(i, j), Some(rank as Rank));
            }
            assert_eq!(p.rank(i, i), None);
            assert_eq!(p.list_len(i), g.degree(i));
        }
    }

    #[test]
    fn by_score_orders_descending() {
        let g = star(5);
        // Hub prefers higher ids (higher score).
        let p = PreferenceTable::by_score(&g, |_, j| j.0 as f64);
        assert_eq!(p.list(NodeId(0)), &[NodeId(4), NodeId(3), NodeId(2), NodeId(1)]);
        assert_eq!(p.rank(NodeId(0), NodeId(4)), Some(0));
        assert_eq!(p.rank(NodeId(0), NodeId(1)), Some(3));
    }

    #[test]
    fn by_score_breaks_ties_by_id() {
        let g = star(4);
        let p = PreferenceTable::by_score(&g, |_, _| 1.0);
        assert_eq!(p.list(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn by_node_id_is_sorted() {
        let g = complete(5);
        let p = PreferenceTable::by_node_id(&g);
        for i in g.nodes() {
            let list = p.list(i);
            assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn from_lists_validates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        let g = b.build();

        // Valid permutation.
        let ok = PreferenceTable::from_lists(
            &g,
            vec![vec![NodeId(2), NodeId(1)], vec![NodeId(0)], vec![NodeId(0)]],
        );
        assert!(ok.is_ok());
        let p = ok.unwrap();
        assert_eq!(p.rank(NodeId(0), NodeId(2)), Some(0));

        // Wrong count.
        assert_eq!(
            PreferenceTable::from_lists(&g, vec![vec![]]),
            Err(PreferenceError::WrongNodeCount { got: 1, expected: 3 })
        );

        // Not a permutation (duplicate).
        assert_eq!(
            PreferenceTable::from_lists(
                &g,
                vec![vec![NodeId(1), NodeId(1)], vec![NodeId(0)], vec![NodeId(0)]],
            ),
            Err(PreferenceError::NotAPermutation { node: NodeId(0) })
        );

        // Not a permutation (non-neighbour).
        assert_eq!(
            PreferenceTable::from_lists(
                &g,
                vec![vec![NodeId(2), NodeId(1)], vec![NodeId(2)], vec![NodeId(0)]],
            ),
            Err(PreferenceError::NotAPermutation { node: NodeId(1) })
        );
    }

    #[test]
    fn set_list_replaces_one_node_and_revalidates() {
        let g = complete(5);
        let mut p = PreferenceTable::by_node_id(&g);
        let before_other = p.list(NodeId(1)).to_vec();

        // Reverse node 0's list.
        let mut rev: Vec<NodeId> = p.list(NodeId(0)).to_vec();
        rev.reverse();
        p.set_list(&g, NodeId(0), rev.clone()).expect("valid permutation");
        assert_eq!(p.list(NodeId(0)), &rev[..]);
        assert_eq!(p.rank(NodeId(0), rev[0]), Some(0));
        assert_eq!(p.rank(NodeId(0), rev[3]), Some(3));
        // Other nodes untouched.
        assert_eq!(p.list(NodeId(1)), &before_other[..]);

        // Wrong length.
        assert_eq!(
            p.set_list(&g, NodeId(0), vec![NodeId(1)]),
            Err(PreferenceError::NotAPermutation { node: NodeId(0) })
        );
        // Duplicate entry.
        assert_eq!(
            p.set_list(
                &g,
                NodeId(0),
                vec![NodeId(1), NodeId(1), NodeId(2), NodeId(3)]
            ),
            Err(PreferenceError::NotAPermutation { node: NodeId(0) })
        );
        // Non-neighbour (itself).
        assert_eq!(
            p.set_list(
                &g,
                NodeId(0),
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
            ),
            Err(PreferenceError::NotAPermutation { node: NodeId(0) })
        );
        // Failed updates must not corrupt the table.
        assert_eq!(p.list(NodeId(0)), &rev[..]);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let g = complete(7);
        let p1 = PreferenceTable::random(&g, &mut StdRng::seed_from_u64(5));
        let p2 = PreferenceTable::random(&g, &mut StdRng::seed_from_u64(5));
        for i in g.nodes() {
            assert_eq!(p1.list(i), p2.list(i));
        }
    }
}
