//! Plain-text serialization of problem instances.
//!
//! The format records everything needed to rerun an experiment instance:
//!
//! ```text
//! # comment
//! nodes 4
//! edge 0 1
//! edge 1 2
//! pref 0: 1
//! pref 1: 2 0
//! pref 2: 1
//! pref 3:
//! quota 0 1
//! quota 1 2
//! ```
//!
//! `pref` and `quota` lines are optional; [`Instance`] fills in random
//! defaults when they are absent is *not* done here — absence simply leaves
//! the corresponding field `None` so the caller decides.

use crate::graph::{Graph, NodeId};
use crate::preferences::PreferenceTable;
use crate::quota::Quotas;
use crate::GraphBuilder;
use std::fmt::Write as _;

/// A full problem instance: topology plus (optionally) preferences and quotas.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The overlay graph.
    pub graph: Graph,
    /// Preference lists, if recorded.
    pub preferences: Option<PreferenceTable>,
    /// Quotas, if recorded.
    pub quotas: Option<Quotas>,
}

/// Errors raised while parsing the instance format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The `nodes` header line is missing or malformed.
    MissingHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Preference lists were present but invalid for the graph.
    BadPreferences(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing `nodes <n>` header"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::BadPreferences(msg) => write!(f, "invalid preferences: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes an instance to the plain-text format.
pub fn write_instance(inst: &Instance) -> String {
    let g = &inst.graph;
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.node_count());
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let _ = writeln!(out, "edge {u} {v}");
    }
    if let Some(p) = &inst.preferences {
        for i in g.nodes() {
            let list: Vec<String> = p.list(i).iter().map(|j| j.to_string()).collect();
            let _ = writeln!(out, "pref {i}: {}", list.join(" "));
        }
    }
    if let Some(q) = &inst.quotas {
        for (i, b) in q.iter() {
            let _ = writeln!(out, "quota {i} {b}");
        }
    }
    out
}

/// Parses the plain-text instance format.
pub fn read_instance(text: &str) -> Result<Instance, ParseError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut prefs: Vec<(u32, Vec<NodeId>)> = Vec::new();
    let mut quotas: Vec<(u32, u32)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| ParseError::BadLine {
            line: lineno,
            reason: reason.to_string(),
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("nodes") => {
                let v = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("expected `nodes <n>`"))?;
                n = Some(v);
            }
            Some("edge") => {
                let u = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("expected `edge <u> <v>`"))?;
                let v = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("expected `edge <u> <v>`"))?;
                edges.push((u, v));
            }
            Some("pref") => {
                let head = parts.next().ok_or_else(|| bad("expected `pref <i>:`"))?;
                let i: u32 = head
                    .trim_end_matches(':')
                    .parse()
                    .map_err(|_| bad("bad node id in pref line"))?;
                let mut list = Vec::new();
                for tok in parts {
                    let j: u32 = tok.parse().map_err(|_| bad("bad node id in pref list"))?;
                    list.push(NodeId(j));
                }
                prefs.push((i, list));
            }
            Some("quota") => {
                let i = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("expected `quota <i> <b>`"))?;
                let b = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("expected `quota <i> <b>`"))?;
                quotas.push((i, b));
            }
            _ => return Err(bad("unknown directive")),
        }
    }

    let n = n.ok_or(ParseError::MissingHeader)?;
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    let graph = b.build();

    let preferences = if prefs.is_empty() {
        None
    } else {
        let mut lists = vec![Vec::new(); n];
        for (i, list) in prefs {
            lists[i as usize] = list;
        }
        Some(
            PreferenceTable::from_lists(&graph, lists)
                .map_err(|e| ParseError::BadPreferences(e.to_string()))?,
        )
    };

    let quotas_out = if quotas.is_empty() {
        None
    } else {
        let mut q = vec![0u32; n];
        for (i, b) in quotas {
            q[i as usize] = b;
        }
        Some(Quotas::from_vec(&graph, q))
    };

    Ok(Instance {
        graph,
        preferences,
        quotas: quotas_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::complete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_full_instance() {
        let g = complete(5);
        let mut rng = StdRng::seed_from_u64(42);
        let p = PreferenceTable::random(&g, &mut rng);
        let q = Quotas::uniform(&g, 2);
        let inst = Instance {
            graph: g,
            preferences: Some(p),
            quotas: Some(q),
        };
        let text = write_instance(&inst);
        let back = read_instance(&text).expect("parse");
        assert_eq!(back.graph.node_count(), 5);
        assert_eq!(back.graph.edge_count(), 10);
        let (p1, p2) = (
            inst.preferences.as_ref().unwrap(),
            back.preferences.as_ref().unwrap(),
        );
        for i in inst.graph.nodes() {
            assert_eq!(p1.list(i), p2.list(i));
        }
        assert_eq!(inst.quotas, back.quotas);
    }

    #[test]
    fn roundtrip_graph_only() {
        let g = complete(3);
        let inst = Instance {
            graph: g,
            preferences: None,
            quotas: None,
        };
        let back = read_instance(&write_instance(&inst)).expect("parse");
        assert!(back.preferences.is_none());
        assert!(back.quotas.is_none());
        assert_eq!(back.graph.edge_count(), 3);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            read_instance("edge 0 1"),
            Err(ParseError::MissingHeader)
        ));
        assert!(matches!(
            read_instance("nodes 2\nedge 0"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            read_instance("nodes 2\nfrobnicate"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# instance\n\nnodes 2\n  edge 0 1  \n";
        let inst = read_instance(text).expect("parse");
        assert_eq!(inst.graph.edge_count(), 1);
    }
}
