//! Connection quotas `b_i` — the "b" of the b-matching.
//!
//! Each node wants at most `b_i` connections and can never exceed that number
//! (paper §2). The paper assumes `b_i ≤ |L_i|` ("otherwise we can easily take
//! `b_i = |L_i|`"), so all constructors clamp to the degree.

use crate::graph::{Graph, NodeId};
use rand::Rng;

/// Per-node connection quotas, clamped to node degrees.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Quotas {
    b: Vec<u32>,
}

impl Quotas {
    /// Uniform quota `b` for every node, clamped per node to its degree.
    pub fn uniform(g: &Graph, b: u32) -> Self {
        Quotas {
            b: g.nodes().map(|i| b.min(g.degree(i) as u32)).collect(),
        }
    }

    /// Explicit per-node quotas, clamped per node to its degree.
    ///
    /// # Panics
    /// Panics if `b.len() != g.node_count()`.
    pub fn from_vec(g: &Graph, b: Vec<u32>) -> Self {
        assert_eq!(b.len(), g.node_count(), "quota vector length mismatch");
        Quotas {
            b: b.into_iter()
                .zip(g.nodes())
                .map(|(q, i)| q.min(g.degree(i) as u32))
                .collect(),
        }
    }

    /// Independent uniform quotas in `lo..=hi`, clamped to degrees.
    pub fn random_range<R: Rng + ?Sized>(g: &Graph, lo: u32, hi: u32, rng: &mut R) -> Self {
        assert!(lo <= hi, "empty quota range {lo}..={hi}");
        Quotas {
            b: g.nodes()
                .map(|i| rng.gen_range(lo..=hi).min(g.degree(i) as u32))
                .collect(),
        }
    }

    /// Sets `b_i`, clamped to `i`'s degree like every constructor — the
    /// mutation entry point of the dynamic engine (`owp-engine`'s
    /// `QuotaChange` event). Returns the value actually stored.
    pub fn set(&mut self, g: &Graph, i: NodeId, b: u32) -> u32 {
        let clamped = b.min(g.degree(i) as u32);
        self.b[i.index()] = clamped;
        clamped
    }

    /// Quota of node `i` (`b_i`).
    #[inline]
    pub fn get(&self, i: NodeId) -> u32 {
        self.b[i.index()]
    }

    /// `b_max`, the maximum quota over all nodes (0 for the empty graph).
    /// This is the quantity in the paper's `¼(1 + 1/b_max)` bound.
    pub fn bmax(&self) -> u32 {
        self.b.iter().copied().max().unwrap_or(0)
    }

    /// Minimum quota over all nodes.
    pub fn bmin(&self) -> u32 {
        self.b.iter().copied().min().unwrap_or(0)
    }

    /// Sum of all quotas — an upper bound on `2 × |matching|`.
    pub fn total(&self) -> u64 {
        self.b.iter().map(|&q| q as u64).sum()
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.b.len()
    }

    /// Iterator over `(node, quota)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.b
            .iter()
            .enumerate()
            .map(|(i, &q)| (NodeId(i as u32), q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_clamps_to_degree() {
        let g = star(5); // hub degree 4, leaves degree 1
        let q = Quotas::uniform(&g, 3);
        assert_eq!(q.get(NodeId(0)), 3);
        for i in 1..5u32 {
            assert_eq!(q.get(NodeId(i)), 1);
        }
        assert_eq!(q.bmax(), 3);
        assert_eq!(q.bmin(), 1);
        assert_eq!(q.total(), 3 + 4);
    }

    #[test]
    fn from_vec_clamps() {
        let g = complete(4); // all degrees 3
        let q = Quotas::from_vec(&g, vec![10, 2, 0, 3]);
        assert_eq!(q.get(NodeId(0)), 3);
        assert_eq!(q.get(NodeId(1)), 2);
        assert_eq!(q.get(NodeId(2)), 0);
        assert_eq!(q.get(NodeId(3)), 3);
    }

    #[test]
    fn random_range_within_bounds() {
        let g = complete(10);
        let mut rng = StdRng::seed_from_u64(30);
        let q = Quotas::random_range(&g, 2, 5, &mut rng);
        for (_, b) in q.iter() {
            assert!((2..=5).contains(&b));
        }
    }

    #[test]
    fn set_clamps_and_reports() {
        let g = star(5); // hub degree 4, leaves degree 1
        let mut q = Quotas::uniform(&g, 2);
        assert_eq!(q.set(&g, NodeId(0), 10), 4, "clamped to hub degree");
        assert_eq!(q.get(NodeId(0)), 4);
        assert_eq!(q.set(&g, NodeId(1), 0), 0);
        assert_eq!(q.get(NodeId(1)), 0);
        assert_eq!(q.set(&g, NodeId(2), 1), 1);
        assert_eq!(q.bmax(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_rejects_wrong_length() {
        let g = complete(3);
        Quotas::from_vec(&g, vec![1, 1]);
    }
}
