//! Core undirected simple-graph storage.
//!
//! [`Graph`] is an immutable CSR (compressed sparse row) structure built once
//! via [`crate::GraphBuilder`] and then shared read-only by every algorithm.
//! Nodes are dense indices `0..n`; every undirected edge `{u, v}` has a single
//! [`EdgeId`] shared by both directions, which lets per-edge data (weights,
//! matching membership) live in flat arrays.

use std::fmt;

/// Identifier of a node (peer) in the overlay graph.
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`. The id doubles
/// as the tie-breaking "node identity" the paper uses to make edge weights
/// unique.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing flat per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node id exceeds u32"))
    }
}

/// Identifier of an undirected edge. Both directions of `{u, v}` share one id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize`, for indexing flat per-edge arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An immutable undirected simple graph in CSR form.
///
/// Construct with [`crate::GraphBuilder`]. Self-loops and parallel edges are
/// rejected at build time, so `G(V, E)` matches the paper's model exactly.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    /// `offsets[i]..offsets[i+1]` indexes `adj` for node `i`.
    offsets: Vec<u32>,
    /// Flattened adjacency: `(neighbour, edge id)` pairs, sorted by neighbour.
    adj: Vec<(NodeId, EdgeId)>,
    /// Endpoints of each edge, canonicalized so `endpoints[e].0 < endpoints[e].1`.
    endpoints: Vec<(NodeId, NodeId)>,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        adj: Vec<(NodeId, EdgeId)>,
        endpoints: Vec<(NodeId, NodeId)>,
    ) -> Self {
        Graph {
            offsets,
            adj,
            endpoints,
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edge ids `0..m`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// The canonical endpoints `(u, v)` of edge `e`, with `u < v`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Given one endpoint of `e`, returns the other.
    ///
    /// # Panics
    /// Panics in debug builds if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints[e.index()];
        debug_assert!(v == a || v == b, "{v:?} is not an endpoint of {e:?}");
        if v == a {
            b
        } else {
            a
        }
    }

    /// Degree `d_i` of node `i` (also `|Γ_i|`, the neighbourhood size).
    #[inline]
    pub fn degree(&self, i: NodeId) -> usize {
        (self.offsets[i.index() + 1] - self.offsets[i.index()]) as usize
    }

    /// Neighbours of `i` with the connecting edge ids, sorted by neighbour id.
    #[inline]
    pub fn neighbors(&self, i: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.offsets[i.index()] as usize;
        let hi = self.offsets[i.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Iterator over neighbour node ids of `i`.
    pub fn neighbor_ids(&self, i: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(i).iter().map(|&(v, _)| v)
    }

    /// The edge id connecting `u` and `v`, if such an edge exists.
    ///
    /// Binary search over `u`'s (sorted) adjacency — O(log d_u).
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|pos| nbrs[pos].1)
    }

    /// `true` iff `u` and `v` are adjacent in `G`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|i| self.degree(i)).max().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(0), NodeId(2));
        b.build()
    }

    #[test]
    fn triangle_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn endpoints_are_canonical() {
        let g = triangle();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(u < v);
            assert_eq!(g.other_endpoint(e, u), v);
            assert_eq!(g.other_endpoint(e, v), u);
        }
    }

    #[test]
    fn edge_between_finds_all_edges() {
        let g = triangle();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert_eq!(g.edge_between(u, v), Some(e));
            assert_eq!(g.edge_between(v, u), Some(e));
        }
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn neighbors_sorted() {
        let g = triangle();
        for i in g.nodes() {
            let nbrs = g.neighbors(i);
            assert!(nbrs.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.node_count(), 5);
        for i in g.nodes() {
            assert_eq!(g.degree(i), 0);
            assert!(g.neighbors(i).is_empty());
        }
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(format!("{}", NodeId(7)), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", EdgeId(3)), "e3");
        assert_eq!(NodeId::from(4u32), NodeId(4));
        assert_eq!(NodeId::from(4usize), NodeId(4));
    }
}
