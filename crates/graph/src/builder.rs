//! Mutable construction of [`Graph`]s.
//!
//! The builder accumulates edges, silently deduplicates parallel edges,
//! rejects self-loops, and finally freezes everything into CSR form.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::BTreeSet;

/// Incremental builder for an undirected simple [`Graph`].
///
/// ```
/// use owp_graph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(0)); // duplicate, ignored
/// b.add_edge(NodeId(2), NodeId(3));
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Canonicalized `(min, max)` edge set; BTreeSet gives deterministic
    /// edge-id assignment independent of insertion order.
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes (ids `0..n`) and no edges.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "node count exceeds u32 range");
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge is new.
    ///
    /// # Panics
    /// Panics on self-loops (`u == v`) or out-of-range endpoints; the paper's
    /// model is a simple graph.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u != v, "self-loop {u:?} rejected: G(V,E) is simple");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge ({u:?},{v:?}) out of range for n={}",
            self.n
        );
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.insert(key)
    }

    /// `true` iff `{u, v}` was already added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Freezes the builder into an immutable CSR [`Graph`].
    ///
    /// Edge ids are assigned in canonical `(u, v)` lexicographic order, so the
    /// same edge set always produces the same ids — this keeps experiment runs
    /// reproducible regardless of generator insertion order.
    pub fn build(self) -> Graph {
        let n = self.n;
        let endpoints: Vec<(NodeId, NodeId)> = self.edges.into_iter().collect();

        let mut degree = vec![0u32; n];
        for &(u, v) in &endpoints {
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }

        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }

        let mut adj = vec![(NodeId(0), EdgeId(0)); offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (idx, &(u, v)) in endpoints.iter().enumerate() {
            let e = EdgeId(idx as u32);
            adj[cursor[u.index()] as usize] = (v, e);
            cursor[u.index()] += 1;
            adj[cursor[v.index()] as usize] = (u, e);
            cursor[v.index()] += 1;
        }

        // Sort each adjacency slice by neighbour id so `edge_between` can
        // binary-search. Slices are small; insertion via sort_unstable is fine.
        for i in 0..n {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            adj[lo..hi].sort_unstable_by_key(|&(v, _)| v);
        }

        Graph::from_parts(offsets, adj, endpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_symmetry() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(NodeId(0), NodeId(1)));
        assert!(!b.add_edge(NodeId(1), NodeId(0)));
        assert!(b.has_edge(NodeId(0), NodeId(1)));
        assert!(b.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    fn edge_ids_deterministic() {
        // Same edge set, different insertion order -> same edge ids.
        let mut b1 = GraphBuilder::new(4);
        b1.add_edge(NodeId(2), NodeId(3));
        b1.add_edge(NodeId(0), NodeId(1));
        let g1 = b1.build();

        let mut b2 = GraphBuilder::new(4);
        b2.add_edge(NodeId(0), NodeId(1));
        b2.add_edge(NodeId(3), NodeId(2));
        let g2 = b2.build();

        for e in g1.edges() {
            assert_eq!(g1.endpoints(e), g2.endpoints(e));
        }
    }

    #[test]
    fn csr_degrees_match() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(0), NodeId(3));
        b.add_edge(NodeId(3), NodeId(4));
        let g = b.build();
        assert_eq!(g.degree(NodeId(0)), 3);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert_eq!(g.degree(NodeId(4)), 1);
        assert_eq!(g.edge_count(), 4);
    }
}
