//! # owp-graph — graph substrate for *Overlays with preferences*
//!
//! This crate provides everything the matching algorithms of
//! Georgiadis & Papatriantafilou (IPDPS 2010) assume to exist:
//!
//! * an undirected simple [`Graph`] with O(1) edge-id lookup and CSR-style
//!   neighbour iteration ([`graph`], [`builder`]);
//! * random and structured topology [`generators`] (Erdős–Rényi, G(n,m),
//!   Barabási–Albert, Watts–Strogatz, random geometric, random regular,
//!   ring/path/star/grid/complete) so experiments can sweep over the overlay
//!   shapes the paper motivates;
//! * per-node [`preferences`] — the private preference lists `L_i` with rank
//!   function `R_i(j) ∈ {0, …, |L_i|−1}` (0 = most desirable neighbour);
//! * per-node connection [`quota`]s `b_i` (the "b" of the b-matching);
//! * structural [`properties`] (components, degrees, clustering) used by the
//!   experiment harness, and an edge-list [`io`] format for reproducibility.
//!
//! The crate is dependency-light by design: the whole substrate is built from
//! scratch (no `petgraph`), per the reproduction mandate in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod generators;
pub mod graph;
pub mod io;
pub mod preferences;
pub mod properties;
pub mod quota;

pub use builder::GraphBuilder;
pub use graph::{EdgeId, Graph, NodeId};
pub use preferences::{PreferenceTable, Rank};
pub use quota::Quotas;
