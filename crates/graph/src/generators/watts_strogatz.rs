//! Watts–Strogatz small-world graphs.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Samples a Watts–Strogatz small-world graph: a ring lattice where every node
/// connects to its `k` nearest neighbours (`k/2` on each side), then each
/// lattice edge is rewired to a uniformly random endpoint with probability
/// `beta`.
///
/// # Panics
/// Panics unless `k` is even, `k < n`, and `0.0 <= beta <= 1.0`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k.is_multiple_of(2), "k must be even (got {k})");
    assert!(k < n, "need k < n (got k={k}, n={n})");
    assert!((0.0..=1.0).contains(&beta), "beta={beta} out of [0,1]");
    let mut b = GraphBuilder::new(n);
    if n == 0 || k == 0 {
        return b.build();
    }

    // Rewire `(u, ·)` to a uniformly random free endpoint. Succeeds whenever
    // `u` still has a non-neighbour, which is guaranteed here because every
    // node adds at most k < n − 1 edges... except in near-complete corners, so
    // we fall back to dropping the edge only when `u` is saturated.
    let rewire = |b: &mut GraphBuilder, u: usize, rng: &mut R| -> bool {
        let uid = NodeId(u as u32);
        for _ in 0..8 * n {
            let w = rng.gen_range(0..n);
            if w != u && !b.has_edge(uid, NodeId(w as u32)) {
                b.add_edge(uid, NodeId(w as u32));
                return true;
            }
        }
        // Exhaustive fallback (only reachable in pathological densities).
        for w in 0..n {
            if w != u && !b.has_edge(uid, NodeId(w as u32)) {
                b.add_edge(uid, NodeId(w as u32));
                return true;
            }
        }
        false
    };

    for u in 0..n {
        for step in 1..=(k / 2) {
            let v = (u + step) % n;
            let (uid, vid) = (NodeId(u as u32), NodeId(v as u32));
            if rng.gen_range(0.0..1.0) < beta || b.has_edge(uid, vid) {
                rewire(&mut b, u, rng);
            } else {
                b.add_edge(uid, vid);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.edge_count(), 20 * 4 / 2);
        for i in g.nodes() {
            assert_eq!(g.degree(i), 4);
        }
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = watts_strogatz(50, 6, 0.3, &mut rng);
        assert_eq!(g.edge_count(), 50 * 6 / 2);
    }

    #[test]
    fn beta_one_destroys_lattice() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = watts_strogatz(100, 4, 1.0, &mut rng);
        // With full rewiring some node should deviate from degree 4.
        assert!(g.nodes().any(|i| g.degree(i) != 4));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_k() {
        let mut rng = StdRng::seed_from_u64(12);
        watts_strogatz(10, 3, 0.1, &mut rng);
    }
}
