//! Random geometric graphs — proximity overlays.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// A random geometric graph together with the sampled node coordinates.
///
/// The coordinates are returned because the paper's "node's distance" metric
/// needs them to build preference lists (closer neighbour = better rank).
#[derive(Clone, Debug)]
pub struct GeometricGraph {
    /// The proximity graph: `{u, v} ∈ E` iff `dist(u, v) <= radius`.
    pub graph: Graph,
    /// Unit-square positions, indexed by node id.
    pub positions: Vec<(f64, f64)>,
    /// The connection radius used.
    pub radius: f64,
}

impl GeometricGraph {
    /// Euclidean distance between nodes `u` and `v`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        let (x1, y1) = self.positions[u.index()];
        let (x2, y2) = self.positions[v.index()];
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    }
}

/// Samples a random geometric graph: `n` points uniform in the unit square,
/// an edge between every pair at Euclidean distance at most `radius`.
///
/// Grid-bucketed so the cost is O(n + m) in the sparse regime rather than
/// O(n²).
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> GeometricGraph {
    assert!(radius >= 0.0, "radius must be non-negative");
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let mut b = GraphBuilder::new(n);

    if radius > 0.0 && n >= 2 {
        // Bucket points into cells of side `radius`; only compare points in
        // the same or neighbouring cells.
        let cells = ((1.0 / radius).floor() as usize).max(1);
        let cell_of = |p: (f64, f64)| -> (usize, usize) {
            let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
            let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
            (cx, cy)
        };
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
        for (i, &p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            buckets[cy * cells + cx].push(i as u32);
        }
        let r2 = radius * radius;
        for cy in 0..cells {
            for cx in 0..cells {
                for dy in 0..=1usize {
                    for dx in -1i64..=1 {
                        if dy == 0 && dx < 0 {
                            continue; // visit each unordered cell pair once
                        }
                        let nx = cx as i64 + dx;
                        let ny = cy + dy;
                        if nx < 0 || nx >= cells as i64 || ny >= cells {
                            continue;
                        }
                        let a = &buckets[cy * cells + cx];
                        let bkt = &buckets[ny * cells + nx as usize];
                        let same = dy == 0 && dx == 0;
                        for (ai, &u) in a.iter().enumerate() {
                            let start = if same { ai + 1 } else { 0 };
                            for &v in &bkt[start..] {
                                if u == v {
                                    continue;
                                }
                                let (x1, y1) = positions[u as usize];
                                let (x2, y2) = positions[v as usize];
                                let d2 = (x1 - x2).powi(2) + (y1 - y2).powi(2);
                                if d2 <= r2 {
                                    b.add_edge(NodeId(u), NodeId(v));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    GeometricGraph {
        graph: b.build(),
        positions,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(13);
        let gg = random_geometric(80, 0.2, &mut rng);
        let g = &gg.graph;
        for u in 0..80u32 {
            for v in (u + 1)..80 {
                let (u, v) = (NodeId(u), NodeId(v));
                let within = gg.distance(u, v) <= gg.radius;
                assert_eq!(g.has_edge(u, v), within, "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn radius_zero_and_large() {
        let mut rng = StdRng::seed_from_u64(14);
        assert_eq!(random_geometric(30, 0.0, &mut rng).graph.edge_count(), 0);
        let full = random_geometric(30, 2.0, &mut rng);
        assert_eq!(full.graph.edge_count(), 30 * 29 / 2);
    }

    #[test]
    fn positions_in_unit_square() {
        let mut rng = StdRng::seed_from_u64(15);
        let gg = random_geometric(100, 0.1, &mut rng);
        assert!(gg
            .positions
            .iter()
            .all(|&(x, y)| (0.0..1.0).contains(&x) && (0.0..1.0).contains(&y)));
    }
}
