//! Random and structured topology generators.
//!
//! The paper motivates overlays whose shape depends on the application —
//! resource sharing, search, ad-hoc connectivity. The experiment harness
//! therefore sweeps over the classic families:
//!
//! * [`erdos_renyi`] / [`gnm`] — unstructured random overlays;
//! * [`barabasi_albert`] — preferential attachment (heavy-tailed degrees, the
//!   usual model for unstructured P2P networks);
//! * [`watts_strogatz`] — small-world rewiring;
//! * [`random_geometric`] — proximity overlays (the "node's distance" metric
//!   from the introduction arises naturally here);
//! * [`random_regular`] — fixed-degree overlays;
//! * structured graphs ([`ring`], [`path`], [`star`], [`complete`], [`grid`],
//!   [`complete_bipartite`]) used by unit tests and worst-case constructions.
//!
//! All generators are deterministic given the caller-supplied RNG, which is
//! how every experiment in `EXPERIMENTS.md` pins its seeds.

mod barabasi_albert;
mod erdos_renyi;
mod geometric;
mod regular;
mod structured;
mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::{erdos_renyi, gnm, random_bipartite};
pub use geometric::{random_geometric, GeometricGraph};
pub use regular::random_regular;
pub use structured::{complete, complete_bipartite, grid, path, ring, star};
pub use watts_strogatz::watts_strogatz;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_generators_produce_simple_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let graphs = vec![
            erdos_renyi(30, 0.2, &mut rng),
            gnm(30, 60, &mut rng),
            barabasi_albert(30, 3, &mut rng),
            watts_strogatz(30, 4, 0.2, &mut rng),
            random_geometric(30, 0.35, &mut rng).graph,
            random_regular(30, 4, &mut rng),
            ring(30),
            path(30),
            star(30),
            complete(10),
            grid(5, 6),
            complete_bipartite(4, 5),
        ];
        for g in graphs {
            // Simplicity: neighbour lists strictly increasing implies no
            // self-loops or parallel edges.
            for i in g.nodes() {
                let nbrs = g.neighbors(i);
                assert!(nbrs.windows(2).all(|w| w[0].0 < w[1].0));
                assert!(nbrs.iter().all(|&(v, _)| v != i));
            }
            // Handshake lemma.
            let total: usize = g.nodes().map(|i| g.degree(i)).sum();
            assert_eq!(total, 2 * g.edge_count());
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        for seed in [1u64, 42, 999] {
            let g1 = erdos_renyi(40, 0.15, &mut StdRng::seed_from_u64(seed));
            let g2 = erdos_renyi(40, 0.15, &mut StdRng::seed_from_u64(seed));
            assert_eq!(g1.edge_count(), g2.edge_count());
            for e in g1.edges() {
                assert_eq!(g1.endpoints(e), g2.endpoints(e));
            }
        }
    }
}
