//! Barabási–Albert preferential attachment.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Samples a Barabási–Albert graph: start from a clique on `m + 1` nodes, then
/// attach each new node to `m` distinct existing nodes chosen with probability
/// proportional to their current degree.
///
/// This is the standard model for unstructured peer-to-peer overlays with
/// heavy-tailed degree distributions (a few well-connected "hub" peers).
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "attachment count m must be >= 1");
    assert!(n > m, "need n > m (got n={n}, m={m})");
    let mut b = GraphBuilder::new(n);

    // `targets` holds one entry per edge endpoint, so uniform sampling from it
    // is exactly degree-proportional sampling.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    // Seed clique on m+1 nodes.
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(NodeId(u as u32), NodeId(v as u32));
            targets.push(NodeId(u as u32));
            targets.push(NodeId(v as u32));
        }
    }

    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    for new in (m + 1)..n {
        chosen.clear();
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        let new_id = NodeId(new as u32);
        for &t in &chosen {
            b.add_edge(new_id, t);
            targets.push(new_id);
            targets.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_count_formula() {
        let mut rng = StdRng::seed_from_u64(5);
        let (n, m) = (50, 3);
        let g = barabasi_albert(n, m, &mut rng);
        // clique(m+1) + m edges per remaining node
        let expected = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(g.edge_count(), expected);
    }

    #[test]
    fn min_degree_is_m() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = barabasi_albert(60, 2, &mut rng);
        let min_deg = g.nodes().map(|i| g.degree(i)).min().unwrap();
        assert!(min_deg >= 2);
    }

    #[test]
    fn hubs_emerge() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(300, 2, &mut rng);
        // Preferential attachment should produce at least one node whose
        // degree is well above the mean.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    #[should_panic(expected = "need n > m")]
    fn rejects_tiny_n() {
        let mut rng = StdRng::seed_from_u64(8);
        barabasi_albert(3, 3, &mut rng);
    }
}
