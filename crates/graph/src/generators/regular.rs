//! Random regular graphs.
//!
//! Construction: start from a deterministic `d`-regular circulant lattice
//! and randomize it with a long sequence of degree-preserving double-edge
//! swaps (the standard Markov-chain approach). Unlike naive configuration-
//! model rejection sampling — whose acceptance probability decays like
//! `exp(−(d²−1)/4)` and is hopeless beyond `d ≈ 6` — this works for any
//! feasible `(n, d)` and mixes toward the uniform distribution.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;
use std::collections::BTreeSet;

/// Samples a random `d`-regular simple graph on `n` nodes.
///
/// # Panics
/// Panics if `n * d` is odd or `d >= n` (no simple d-regular graph exists).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even (got n={n}, d={d})");
    assert!(d < n, "need d < n (got d={d}, n={n})");
    if d == 0 || n == 0 {
        return GraphBuilder::new(n).build();
    }

    // Deterministic d-regular circulant: each node connects to its d/2
    // nearest ring neighbours on each side, plus the antipode when d is odd
    // (d odd forces n even by the parity assert).
    let mut set: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
    let add = |set: &mut BTreeSet<(u32, u32)>, edges: &mut Vec<(u32, u32)>, a: usize, b: usize| {
        let key = ((a.min(b)) as u32, (a.max(b)) as u32);
        if set.insert(key) {
            edges.push(key);
        }
    };
    for i in 0..n {
        for step in 1..=(d / 2) {
            add(&mut set, &mut edges, i, (i + step) % n);
        }
        if d % 2 == 1 {
            add(&mut set, &mut edges, i, (i + n / 2) % n);
        }
    }
    debug_assert_eq!(edges.len(), n * d / 2, "circulant base must be d-regular");

    // Randomize with double-edge swaps: pick edges (a,b), (c,e); replace
    // with (a,c), (b,e) when that keeps the graph simple. Degrees are
    // invariant; ~10 swaps per edge mixes well for experiment purposes.
    let m = edges.len();
    let attempts = 10 * m;
    for _ in 0..attempts {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (mut c, mut e) = edges[j];
        // Randomize the orientation of the second edge.
        if rng.gen_range(0..2) == 1 {
            std::mem::swap(&mut c, &mut e);
        }
        // New edges (a,c) and (b,e): all four endpoints must be distinct.
        if a == c || a == e || b == c || b == e {
            continue;
        }
        let k1 = (a.min(c), a.max(c));
        let k2 = (b.min(e), b.max(e));
        if set.contains(&k1) || set.contains(&k2) {
            continue;
        }
        set.remove(&edges[i]);
        set.remove(&edges[j]);
        set.insert(k1);
        set.insert(k2);
        edges[i] = k1;
        edges[j] = k2;
    }

    let mut builder = GraphBuilder::new(n);
    for (a, b) in edges {
        builder.add_edge(NodeId(a), NodeId(b));
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_node_has_degree_d() {
        let mut rng = StdRng::seed_from_u64(16);
        for &(n, d) in &[(10usize, 3usize), (20, 4), (7, 2), (4, 3), (64, 10), (50, 7)] {
            let g = random_regular(n, d, &mut rng);
            for i in g.nodes() {
                assert_eq!(g.degree(i), d, "n={n} d={d}");
            }
            assert_eq!(g.edge_count(), n * d / 2);
        }
    }

    #[test]
    fn degree_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = random_regular(5, 0, &mut rng);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn swaps_actually_randomize() {
        // The result should differ from the deterministic circulant: node 0
        // keeps neighbours {1, n−1, …} in the lattice; after mixing some
        // long-range edge should exist somewhere.
        let mut rng = StdRng::seed_from_u64(18);
        let n = 40;
        let g = random_regular(n, 4, &mut rng);
        let mut long_range = 0;
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let dist = (v.0 - u.0).min(n as u32 - (v.0 - u.0));
            if dist > 2 {
                long_range += 1;
            }
        }
        assert!(long_range > 10, "only {long_range} long-range edges after mixing");
    }

    #[test]
    fn seed_determinism() {
        let g1 = random_regular(30, 6, &mut StdRng::seed_from_u64(9));
        let g2 = random_regular(30, 6, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for e in g1.edges() {
            assert_eq!(g1.endpoints(e), g2.endpoints(e));
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn rejects_odd_total() {
        let mut rng = StdRng::seed_from_u64(18);
        random_regular(5, 3, &mut rng);
    }
}
