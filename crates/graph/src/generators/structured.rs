//! Deterministic structured topologies used by tests, examples, and the
//! worst-case constructions of `owp-matching::bounds`.

use crate::{Graph, GraphBuilder, NodeId};

/// Cycle graph `C_n`: node `i` connects to `(i+1) mod n`. Empty for `n < 3`.
pub fn ring(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n >= 3 {
        for i in 0..n {
            b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32));
        }
    }
    b.build()
}

/// Path graph `P_n`: nodes `0 — 1 — … — n−1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId((i - 1) as u32), NodeId(i as u32));
    }
    b.build()
}

/// Star graph: node 0 is the hub connected to all others.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId(i as u32));
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(NodeId(u as u32), NodeId(v as u32));
        }
    }
    b.build()
}

/// `rows × cols` grid graph (4-neighbourhood). Node `(r, c)` has id
/// `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`: left part ids `0..a`, right part ids
/// `a..a+b`. Used by the exact bipartite flow solver cross-checks.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            builder.add_edge(NodeId(u as u32), NodeId((a + v) as u32));
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_degrees() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        for i in g.nodes() {
            assert_eq!(g.degree(i), 2);
        }
        assert_eq!(ring(2).edge_count(), 0);
    }

    #[test]
    fn path_endpoints() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(4)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
    }

    #[test]
    fn star_hub() {
        let g = star(7);
        assert_eq!(g.degree(NodeId(0)), 6);
        for i in 1..7u32 {
            assert_eq!(g.degree(NodeId(i)), 1);
        }
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(8).edge_count(), 28);
        assert_eq!(complete(1).edge_count(), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.degree(NodeId(0)), 2); // corner
        assert_eq!(g.degree(NodeId(5)), 4); // interior (1,1)
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        for u in 0..3u32 {
            assert_eq!(g.degree(NodeId(u)), 4);
            for v in 0..3u32 {
                if u != v {
                    assert!(!g.has_edge(NodeId(u), NodeId(v)));
                }
            }
        }
    }
}
