//! Erdős–Rényi random graphs: the `G(n, p)` and `G(n, m)` models.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Samples `G(n, p)`: each of the `n(n−1)/2` possible edges is present
/// independently with probability `p`.
///
/// Uses geometric skipping (Batagelj–Brandes) so the cost is
/// O(n + m) rather than O(n²) for sparse `p`.
///
/// # Panics
/// Panics unless `0.0 <= p <= 1.0`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
        }
        return b.build();
    }

    // Batagelj–Brandes: walk the strictly-upper-triangular adjacency matrix in
    // row-major order, skipping ahead by geometrically distributed gaps.
    let lp = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen_range(0.0..1.0);
        w += 1 + ((1.0 - r).ln() / lp).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(NodeId(w as u32), NodeId(v as u32));
        }
    }
    b.build()
}

/// Samples `G(n, m)`: a graph drawn uniformly among all graphs with exactly
/// `n` nodes and `m` distinct edges.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n−1)/2`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max, "m={m} exceeds max possible edges {max} for n={n}");
    let mut b = GraphBuilder::new(n);
    // Rejection sampling is fine while m is at most ~half of all pairs;
    // otherwise sample the complement.
    if m <= max / 2 || max == 0 {
        while b.edge_count() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
        }
    } else {
        // Dense case: pick the m' = max - m edges to *exclude*.
        let excluded = max - m;
        let mut excl = std::collections::BTreeSet::new();
        while excl.len() < excluded {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                let key = (u.min(v), u.max(v));
                excl.insert(key);
            }
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if !excl.contains(&(u, v)) {
                    b.add_edge(NodeId(u as u32), NodeId(v as u32));
                }
            }
        }
    }
    b.build()
}

/// Samples a random bipartite graph: left part ids `0..a`, right part ids
/// `a..a+b`, each of the `a·b` cross edges present independently with
/// probability `p`.
pub fn random_bipartite<R: Rng + ?Sized>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            if rng.gen_range(0.0..1.0) < p {
                builder.add_edge(NodeId(u as u32), NodeId((a + v) as u32));
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bipartite_has_no_intra_part_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        let (a, b) = (8usize, 6usize);
        let g = random_bipartite(a, b, 0.5, &mut rng);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(u.index() < a);
            assert!(v.index() >= a);
        }
        assert_eq!(random_bipartite(3, 3, 1.0, &mut rng).edge_count(), 9);
        assert_eq!(random_bipartite(3, 3, 0.0, &mut rng).edge_count(), 0);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(20, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(20, 1.0, &mut rng).edge_count(), 190);
        assert_eq!(erdos_renyi(1, 0.5, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(0, 0.5, &mut rng).edge_count(), 0);
    }

    #[test]
    fn gnp_density_close_to_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // 5 sigma tolerance for a binomial with ~1990 expectation.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "got {got}, expected {expected} ± {}",
            5.0 * sigma
        );
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(n, m) in &[(10usize, 0usize), (10, 20), (10, 45), (10, 40), (2, 1)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.edge_count(), m, "n={n} m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn gnm_rejects_too_many_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        gnm(4, 7, &mut rng);
    }
}
