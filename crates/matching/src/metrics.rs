//! Aggregate quality metrics of a matching — the rows the experiment tables
//! print.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use crate::satisfaction::{node_satisfaction, node_satisfaction_modified};
use owp_graph::NodeId;

/// Summary statistics of one matching on one problem instance.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MatchingReport {
    /// Edges selected.
    pub edges: usize,
    /// Total eq. 9 weight.
    pub total_weight: f64,
    /// Total true satisfaction (eq. 1).
    pub satisfaction_total: f64,
    /// Mean per-node true satisfaction.
    pub satisfaction_mean: f64,
    /// Minimum per-node true satisfaction.
    pub satisfaction_min: f64,
    /// Total modified satisfaction (eq. 6).
    pub satisfaction_modified_total: f64,
    /// Jain's fairness index over per-node satisfactions.
    pub jain_index: f64,
    /// Fraction of nodes with `c_i = b_i` (fully served).
    pub saturated_fraction: f64,
    /// Per-node satisfactions, indexed by node id.
    pub per_node: Vec<f64>,
}

/// The three totals the per-round convergence time-series samples: selected
/// edge count, total eq. 9 weight and Σ `S_i`.
///
/// The satisfaction sum adds per-node satisfactions in ascending node order
/// — the same addition sequence as [`MatchingReport::compute`] — so a
/// trajectory's final row matches the full report **bit-for-bit**.
pub fn matching_totals(problem: &Problem, m: &BMatching) -> (usize, f64, f64) {
    let sat: f64 = (0..problem.node_count())
        .map(|i| {
            let i = NodeId(i as u32);
            node_satisfaction(&problem.prefs, &problem.quotas, i, m.connections(i))
        })
        .sum();
    (m.size(), m.total_weight(problem), sat)
}

impl MatchingReport {
    /// Computes the full report.
    pub fn compute(problem: &Problem, m: &BMatching) -> Self {
        let n = problem.node_count();
        let per_node: Vec<f64> = (0..n)
            .map(|i| {
                let i = NodeId(i as u32);
                node_satisfaction(&problem.prefs, &problem.quotas, i, m.connections(i))
            })
            .collect();
        let modified_total: f64 = (0..n)
            .map(|i| {
                let i = NodeId(i as u32);
                node_satisfaction_modified(&problem.prefs, &problem.quotas, i, m.connections(i))
            })
            .sum();
        let total: f64 = per_node.iter().sum();
        let mean = if n == 0 { 0.0 } else { total / n as f64 };
        let min = per_node.iter().copied().fold(f64::INFINITY, f64::min);
        let sum_sq: f64 = per_node.iter().map(|s| s * s).sum();
        let jain = if sum_sq == 0.0 || n == 0 {
            1.0
        } else {
            total * total / (n as f64 * sum_sq)
        };
        let saturated = (0..n)
            .filter(|&i| {
                let i = NodeId(i as u32);
                m.degree(i) == problem.quotas.get(i) as usize
            })
            .count() as f64;
        MatchingReport {
            edges: m.size(),
            total_weight: m.total_weight(problem),
            satisfaction_total: total,
            satisfaction_mean: mean,
            satisfaction_min: if min.is_finite() { min } else { 0.0 },
            satisfaction_modified_total: modified_total,
            jain_index: jain,
            saturated_fraction: if n == 0 { 1.0 } else { saturated / n as f64 },
            per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lic::{lic, SelectionPolicy};
    use owp_graph::generators::complete;

    #[test]
    fn totals_match_the_full_report_bit_for_bit() {
        for seed in 0..5 {
            let p = Problem::random_gnp(30, 0.3, 2, seed);
            let m = lic(&p, SelectionPolicy::InOrder);
            let r = MatchingReport::compute(&p, &m);
            let (edges, weight, sat) = matching_totals(&p, &m);
            assert_eq!(edges, r.edges);
            assert_eq!(weight.to_bits(), r.total_weight.to_bits());
            assert_eq!(sat.to_bits(), r.satisfaction_total.to_bits());
        }
    }

    #[test]
    fn report_fields_consistent() {
        let p = Problem::random_over(complete(10), 3, 5);
        let m = lic(&p, SelectionPolicy::InOrder);
        let r = MatchingReport::compute(&p, &m);
        assert_eq!(r.edges, m.size());
        assert!((r.satisfaction_total - r.per_node.iter().sum::<f64>()).abs() < 1e-12);
        assert!(r.satisfaction_min <= r.satisfaction_mean + 1e-12);
        assert!((0.0..=1.0 + 1e-12).contains(&r.jain_index));
        assert!((0.0..=1.0).contains(&r.saturated_fraction));
        assert!(r.total_weight > 0.0);
    }

    #[test]
    fn perfect_equality_gives_jain_one() {
        // K4 with b=3 and full saturation: everyone gets everything → S = 1.
        let p = Problem::random_over(complete(4), 3, 1);
        let m = lic(&p, SelectionPolicy::InOrder);
        let r = MatchingReport::compute(&p, &m);
        assert_eq!(r.edges, 6);
        assert!((r.jain_index - 1.0).abs() < 1e-12);
        assert!((r.satisfaction_mean - 1.0).abs() < 1e-12);
        assert_eq!(r.saturated_fraction, 1.0);
    }

    #[test]
    fn empty_matching_report() {
        let p = Problem::random_over(complete(5), 2, 2);
        let m = BMatching::empty(&p.graph);
        let r = MatchingReport::compute(&p, &m);
        assert_eq!(r.edges, 0);
        assert_eq!(r.total_weight, 0.0);
        assert_eq!(r.satisfaction_total, 0.0);
        assert_eq!(r.saturated_fraction, 0.0);
        assert_eq!(r.jain_index, 1.0, "all-zero vector treated as fair");
    }
}
