//! A bundled problem instance: graph + preferences + quotas + derived weights.

use crate::order::EdgeOrder;
use crate::weights::EdgeWeights;
use owp_graph::{Graph, NodeId, PreferenceTable, Quotas};
use owp_telemetry::PhaseProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One instance of the maximizing-satisfaction b-matching problem, with the
/// eq. 9 edge weights precomputed.
///
/// All algorithms in this crate take a `&Problem`; bundling keeps the four
/// pieces consistent (preferences defined on exactly this graph, quotas
/// clamped to its degrees, weights derived from exactly these lists).
#[derive(Clone, Debug)]
pub struct Problem {
    /// The overlay graph `G(V, E)`.
    pub graph: Graph,
    /// Private preference lists `L_i`.
    pub prefs: PreferenceTable,
    /// Connection quotas `b_i`.
    pub quotas: Quotas,
    /// Eq. 9 edge weights (derived).
    pub weights: EdgeWeights,
    /// Dense integer ranks over the [`crate::EdgeKey`] order (derived) —
    /// what the algorithms actually consult after setup.
    pub order: EdgeOrder,
}

impl Problem {
    /// Bundles the pieces, computing eq. 9 weights.
    pub fn new(graph: Graph, prefs: PreferenceTable, quotas: Quotas) -> Self {
        assert_eq!(prefs.node_count(), graph.node_count(), "prefs/graph mismatch");
        assert_eq!(quotas.node_count(), graph.node_count(), "quotas/graph mismatch");
        let weights = EdgeWeights::compute(&graph, &prefs, &quotas);
        let order = EdgeOrder::compute(&graph, &weights);
        Problem {
            graph,
            prefs,
            quotas,
            weights,
            order,
        }
    }

    /// Bundles the pieces with **explicit** weights instead of eq. 9 — used
    /// by the weight-design ablations (e.g. the unnormalized variant of
    /// [`EdgeWeights::compute_unnormalized`]).
    ///
    /// # Panics
    /// Panics if the weight table does not cover exactly the graph's edges.
    pub fn with_weights(
        graph: Graph,
        prefs: PreferenceTable,
        quotas: Quotas,
        weights: EdgeWeights,
    ) -> Self {
        assert_eq!(prefs.node_count(), graph.node_count(), "prefs/graph mismatch");
        assert_eq!(quotas.node_count(), graph.node_count(), "quotas/graph mismatch");
        assert_eq!(weights.len(), graph.edge_count(), "weights/graph mismatch");
        let order = EdgeOrder::compute(&graph, &weights);
        Problem {
            graph,
            prefs,
            quotas,
            weights,
            order,
        }
    }

    /// [`Problem::new`] under a [`PhaseProfile`]: splits construction wall
    /// time into the eq. 9 weight computation and the global edge-rank
    /// ordering. Produces the identical bundle.
    pub fn new_profiled(
        graph: Graph,
        prefs: PreferenceTable,
        quotas: Quotas,
        prof: &mut PhaseProfile,
    ) -> Self {
        assert_eq!(prefs.node_count(), graph.node_count(), "prefs/graph mismatch");
        assert_eq!(quotas.node_count(), graph.node_count(), "quotas/graph mismatch");
        let weights = prof.time("weights", |_| EdgeWeights::compute(&graph, &prefs, &quotas));
        let order = prof.time("order", |_| EdgeOrder::compute(&graph, &weights));
        Problem {
            graph,
            prefs,
            quotas,
            weights,
            order,
        }
    }

    /// Random preferences and uniform quota `b` over a given graph — the
    /// workhorse constructor of the experiment suite.
    pub fn random_over(graph: Graph, b: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let prefs = PreferenceTable::random(&graph, &mut rng);
        let quotas = Quotas::uniform(&graph, b);
        Problem::new(graph, prefs, quotas)
    }

    /// [`Problem::random_over`] under a [`PhaseProfile`]: identical RNG call
    /// sequence (so the instance is bit-identical to `random_over(graph, b,
    /// seed)`), with preference generation, weight computation and edge
    /// ordering timed as separate phases.
    pub fn random_over_profiled(graph: Graph, b: u32, seed: u64, prof: &mut PhaseProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let prefs = prof.time("prefs", |_| PreferenceTable::random(&graph, &mut rng));
        let quotas = Quotas::uniform(&graph, b);
        Problem::new_profiled(graph, prefs, quotas, prof)
    }

    /// Random G(n, p) topology, random preferences, uniform quota `b`.
    pub fn random_gnp(n: usize, p: f64, b: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = owp_graph::generators::erdos_renyi(n, p, &mut rng);
        let prefs = PreferenceTable::random(&graph, &mut rng);
        let quotas = Quotas::uniform(&graph, b);
        Problem::new(graph, prefs, quotas)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// `b_max` over the instance.
    pub fn bmax(&self) -> u32 {
        self.quotas.bmax()
    }

    /// Iterator over nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::complete;

    #[test]
    fn bundles_consistently() {
        let p = Problem::random_gnp(20, 0.3, 3, 7);
        assert_eq!(p.weights.len(), p.edge_count());
        assert!(p.bmax() <= 3);
        assert_eq!(p.node_count(), 20);
    }

    #[test]
    fn profiled_construction_is_bit_identical() {
        let mut prof = PhaseProfile::new();
        let p1 = Problem::random_over_profiled(complete(12), 2, 23, &mut prof);
        let p2 = Problem::random_over(complete(12), 2, 23);
        for i in p1.nodes() {
            assert_eq!(p1.prefs.list(i), p2.prefs.list(i));
        }
        for e in p1.graph.edges() {
            assert_eq!(p1.weights.get(e), p2.weights.get(e));
            assert_eq!(p1.order.rank(e), p2.order.rank(e));
        }
        for phase in ["prefs", "weights", "order"] {
            assert!(prof.total_of(phase).is_some(), "missing phase {phase}");
        }
    }

    #[test]
    fn random_over_deterministic() {
        let p1 = Problem::random_over(complete(8), 2, 11);
        let p2 = Problem::random_over(complete(8), 2, 11);
        for i in p1.nodes() {
            assert_eq!(p1.prefs.list(i), p2.prefs.list(i));
        }
        for e in p1.graph.edges() {
            assert_eq!(p1.weights.get(e), p2.weights.get(e));
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_mismatched_parts() {
        let g1 = complete(4);
        let g2 = complete(5);
        let prefs = PreferenceTable::by_node_id(&g2);
        let quotas = Quotas::uniform(&g1, 1);
        Problem::new(g1, prefs, quotas);
    }
}
