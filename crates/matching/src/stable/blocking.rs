//! Blocking pairs for b-matchings with preference lists.
//!
//! An unmatched edge `(i, j)` *blocks* a b-matching when both endpoints
//! would rather have it: each of `i`, `j` either has free quota or prefers
//! the other to its currently worst connection (stable fixtures criterion,
//! Irving & Scott). A matching with no blocking pair is *stable*.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use owp_graph::NodeId;

/// `true` iff node `x` would accept a connection to `y` given matching `m`:
/// `x` has free quota, or ranks `y` strictly above its worst connection.
pub fn would_accept(problem: &Problem, m: &BMatching, x: NodeId, y: NodeId) -> bool {
    let b = problem.quotas.get(x) as usize;
    if b == 0 {
        return false;
    }
    let conns = m.connections(x);
    if conns.len() < b {
        return true;
    }
    let rank_y = problem.prefs.rank(x, y).expect("neighbour");
    let worst = conns
        .iter()
        .map(|&z| problem.prefs.rank(x, z).expect("connection is a neighbour"))
        .max()
        .expect("saturated node has connections");
    rank_y < worst
}

/// All blocking pairs of `m`, as `(i, j)` with `i < j`.
pub fn blocking_pairs(problem: &Problem, m: &BMatching) -> Vec<(NodeId, NodeId)> {
    let g = &problem.graph;
    let mut out = Vec::new();
    for e in g.edges() {
        if m.contains(e) {
            continue;
        }
        let (u, v) = g.endpoints(e);
        if would_accept(problem, m, u, v) && would_accept(problem, m, v, u) {
            out.push((u, v));
        }
    }
    out
}

/// `true` iff `m` has no blocking pair (is a stable fixture assignment).
pub fn is_stable(problem: &Problem, m: &BMatching) -> bool {
    blocking_pairs(problem, m).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::{complete, path};
    use owp_graph::{PreferenceTable, Quotas};

    #[test]
    fn empty_matching_blocked_by_every_edge() {
        let g = complete(4);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let m = BMatching::empty(&p.graph);
        assert_eq!(blocking_pairs(&p, &m).len(), p.edge_count());
        assert!(!is_stable(&p, &m));
    }

    #[test]
    fn aligned_preferences_top_pairing_is_stable() {
        // Path 0—1—2, b=1, id-ordered prefs: node 1 prefers 0. Matching
        // {(0,1)} leaves node 2 alone, but (1,2) does not block: 1 is
        // saturated with a better partner.
        let g = path(3);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let e01 = p.graph.edge_between(NodeId(0), NodeId(1)).unwrap();
        let m = BMatching::from_edges(&p, [e01]);
        assert!(is_stable(&p, &m));
    }

    #[test]
    fn worse_partner_creates_block() {
        // Same path but match (1,2): node 1 prefers 0, node 0 is free →
        // (0,1) blocks.
        let g = path(3);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let e12 = p.graph.edge_between(NodeId(1), NodeId(2)).unwrap();
        let m = BMatching::from_edges(&p, [e12]);
        let blocks = blocking_pairs(&p, &m);
        assert_eq!(blocks, vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn would_accept_respects_quota_zero() {
        let g = path(2);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![0, 1]);
        let p = Problem::new(g, prefs, quotas);
        let m = BMatching::empty(&p.graph);
        assert!(!would_accept(&p, &m, NodeId(0), NodeId(1)));
        assert!(would_accept(&p, &m, NodeId(1), NodeId(0)));
        assert!(is_stable(&p, &m), "quota-0 endpoint cannot block");
    }
}
