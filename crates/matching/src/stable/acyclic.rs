//! Acyclicity of preference systems (Gai et al., Euro-Par 2007).
//!
//! Model each undirected edge as a vertex and, for every node `i` and every
//! consecutive pair in its preference order, add an arc from the less
//! preferred incident edge to the more preferred one. The preference system
//! is *acyclic* iff this digraph has no directed cycle — equivalently, the
//! "i prefers e to f" relations can be embedded into a global edge order.
//! Gai et al. prove stabilization of preference dynamics exactly for such
//! systems; the paper's LID side-steps the restriction by optimizing
//! satisfaction with eq. 9's symmetric weights (which are always globally
//! ordered, hence always "acyclic").

use crate::problem::Problem;
use owp_graph::{Graph, NodeId, PreferenceTable, Quotas};

/// `true` iff the preference system `(g, prefs)` is acyclic.
pub fn is_acyclic(g: &Graph, prefs: &PreferenceTable) -> bool {
    let m = g.edge_count();
    // Arcs: worse edge -> immediately better edge, per node.
    let mut arcs: Vec<Vec<u32>> = vec![Vec::new(); m];
    for i in g.nodes() {
        let list = prefs.list(i);
        for w in list.windows(2) {
            let better = g.edge_between(i, w[0]).expect("list entry is neighbour");
            let worse = g.edge_between(i, w[1]).expect("list entry is neighbour");
            arcs[worse.index()].push(better.0);
        }
    }

    // Iterative three-colour DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; m];
    for start in 0..m {
        if colour[start] != Colour::White {
            continue;
        }
        // Stack of (vertex, next-child-index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = Colour::Grey;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < arcs[v].len() {
                let child = arcs[v][*next] as usize;
                *next += 1;
                match colour[child] {
                    Colour::Grey => return false, // back-edge: cycle
                    Colour::White => {
                        colour[child] = Colour::Grey;
                        stack.push((child, 0));
                    }
                    Colour::Black => {}
                }
            } else {
                colour[v] = Colour::Black;
                stack.pop();
            }
        }
    }
    true
}

/// The rock-paper-scissors gadget: `K_3`, `b ≡ 1`, node 0 prefers 1 ≻ 2,
/// node 1 prefers 2 ≻ 0, node 2 prefers 0 ≻ 1. Cyclic, and it admits no
/// stable matching — the canonical instance the paper's satisfaction
/// approach is designed to survive.
pub fn rps_gadget() -> Problem {
    let g = owp_graph::generators::complete(3);
    let lists = vec![
        vec![NodeId(1), NodeId(2)],
        vec![NodeId(2), NodeId(0)],
        vec![NodeId(0), NodeId(1)],
    ];
    let prefs = PreferenceTable::from_lists(&g, lists).expect("valid lists");
    let quotas = Quotas::uniform(&g, 1);
    Problem::new(g, prefs, quotas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::complete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn aligned_preferences_are_acyclic() {
        let g = complete(7);
        let prefs = PreferenceTable::by_node_id(&g);
        assert!(is_acyclic(&g, &prefs));
    }

    #[test]
    fn score_based_preferences_are_acyclic() {
        // Preferences induced by any global edge score are acyclic by
        // construction — this is why eq. 9's weight lists always converge.
        let g = complete(6);
        // Symmetric score (shared by both endpoints of an edge).
        let prefs = PreferenceTable::by_score(&g, |i, j| ((i.0 * 31 + j.0 * 31) + i.0 * j.0) as f64);
        assert!(is_acyclic(&g, &prefs));
    }

    #[test]
    fn rps_is_cyclic() {
        let p = rps_gadget();
        assert!(!is_acyclic(&p.graph, &p.prefs));
    }

    #[test]
    fn random_preferences_on_k3_sometimes_cyclic() {
        // Sanity: over many random K3 instances both outcomes occur.
        let g = complete(3);
        let mut cyclic = 0;
        let mut acyclic = 0;
        for seed in 0..50 {
            let prefs = PreferenceTable::random(&g, &mut StdRng::seed_from_u64(seed));
            if is_acyclic(&g, &prefs) {
                acyclic += 1;
            } else {
                cyclic += 1;
            }
        }
        assert!(cyclic > 0, "RPS-like orientations have probability 1/4");
        assert!(acyclic > 0);
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = owp_graph::GraphBuilder::new(3).build();
        let prefs = PreferenceTable::by_node_id(&g);
        assert!(is_acyclic(&g, &prefs));
    }
}
