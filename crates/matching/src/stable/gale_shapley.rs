//! Gale–Shapley deferred acceptance for bipartite b-matching (college
//! admissions) — reference [4] of the paper.
//!
//! On a bipartite instance (proposer side / acceptor side), deferred
//! acceptance always finds a *stable* b-matching: proposers walk down their
//! preference lists; acceptors hold their best `b` proposals so far and
//! bounce the rest. The result is proposer-optimal among stable matchings.
//!
//! The paper's setting is the *roommates* generalization where stability can
//! be unattainable; this classical algorithm is the experiment suite's
//! "stability is easy here" reference point on bipartite instances.

use crate::bmatching::BMatching;
use crate::flow::two_color;
use crate::problem::Problem;
use owp_graph::NodeId;

/// Runs deferred acceptance with side-0 nodes (per [`two_color`]) proposing.
/// Returns `None` if the graph is not bipartite.
///
/// Quotas are respected on both sides: a proposer proposes while it holds
/// fewer than `b` acceptances and has list left; an acceptor keeps its best
/// `b` proposers (by its own preference list) and rejects the rest.
pub fn gale_shapley(problem: &Problem) -> Option<BMatching> {
    let g = &problem.graph;
    let side = two_color(g)?;

    // Per proposer: next list position to propose to.
    let n = g.node_count();
    let mut next = vec![0usize; n];
    // Per acceptor: currently held proposers.
    let mut held: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    // Per proposer: current number of held acceptances.
    let mut accepted = vec![0u32; n];

    let rank = |x: NodeId, y: NodeId| problem.prefs.rank(x, y).expect("neighbour");

    // Work stack of proposers that may still want to propose.
    let mut stack: Vec<NodeId> = g
        .nodes()
        .filter(|&i| side[i.index()] == 0 && problem.quotas.get(i) > 0)
        .collect();

    while let Some(p) = stack.pop() {
        loop {
            if accepted[p.index()] >= problem.quotas.get(p) {
                break;
            }
            let list = problem.prefs.list(p);
            let Some(&a) = list.get(next[p.index()]) else {
                break;
            };
            next[p.index()] += 1;

            let b_a = problem.quotas.get(a) as usize;
            if b_a == 0 {
                continue;
            }
            if held[a.index()].len() < b_a {
                held[a.index()].push(p);
                accepted[p.index()] += 1;
            } else {
                // Find the acceptor's worst held proposer.
                let (worst_pos, &worst) = held[a.index()]
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &q)| rank(a, q))
                    .expect("held non-empty");
                if rank(a, p) < rank(a, worst) {
                    held[a.index()][worst_pos] = p;
                    accepted[p.index()] += 1;
                    accepted[worst.index()] -= 1;
                    // The bounced proposer resumes proposing.
                    stack.push(worst);
                }
                // Else: rejected outright; continue down the list.
            }
        }
    }

    let mut edges = Vec::new();
    for a in g.nodes() {
        for &p in &held[a.index()] {
            edges.push(g.edge_between(p, a).expect("held pair is an edge"));
        }
    }
    Some(BMatching::from_edges(problem, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::blocking::is_stable;
    use crate::verify;
    use owp_graph::generators::{complete, complete_bipartite, random_bipartite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_stable_on_bipartite_instances() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_bipartite(10, 12, 0.4, &mut rng);
            for b in [1u32, 2, 3] {
                let p = Problem::random_over(g.clone(), b, seed * 7 + b as u64);
                let m = gale_shapley(&p).expect("bipartite");
                verify::check_valid(&p, &m).expect("valid");
                assert!(
                    is_stable(&p, &m),
                    "seed {seed} b={b}: deferred acceptance must be stable"
                );
            }
        }
    }

    #[test]
    fn non_bipartite_returns_none() {
        let p = Problem::random_over(complete(5), 1, 1);
        assert!(gale_shapley(&p).is_none());
    }

    #[test]
    fn saturates_when_capacity_allows() {
        // K_{3,3} with b = 3 on both sides: everyone gets everyone.
        let p = Problem::random_over(complete_bipartite(3, 3), 3, 9);
        let m = gale_shapley(&p).expect("bipartite");
        assert_eq!(m.size(), 9);
    }

    #[test]
    fn b1_on_k22_matches_both_pairs() {
        let p = Problem::random_over(complete_bipartite(2, 2), 1, 4);
        let m = gale_shapley(&p).expect("bipartite");
        assert_eq!(m.size(), 2, "a perfect matching exists and stability finds one");
        assert!(is_stable(&p, &m));
    }

    #[test]
    fn proposer_optimality_weakly_beats_acceptor_view() {
        // Classic sanity: the proposer side's mean rank of partners is at
        // least as good as under the reversed proposal direction. We emulate
        // the reversal by relabelling sides via an id shift (left part gets
        // the high ids) and comparing per-node ranks.
        let mut rng = StdRng::seed_from_u64(77);
        let g = random_bipartite(8, 8, 0.5, &mut rng);
        let p = Problem::random_over(g, 2, 3);
        let m = gale_shapley(&p).expect("bipartite");
        // Proposers are side 0 = ids 0..8 (random_bipartite construction).
        let mut total_rank = 0u64;
        let mut count = 0u64;
        for i in 0..8u32 {
            let i = NodeId(i);
            for &j in m.connections(i) {
                total_rank += p.prefs.rank(i, j).unwrap() as u64;
                count += 1;
            }
        }
        if count > 0 {
            let mean_rank = total_rank as f64 / count as f64;
            let mean_list = 0.5
                * (0..8u32)
                    .map(|i| p.prefs.list_len(NodeId(i)) as f64 - 1.0)
                    .sum::<f64>()
                / 8.0;
            assert!(
                mean_rank <= mean_list + 1e-9,
                "proposers should do no worse than the middle of their lists"
            );
        }
    }
}
