//! Better-response dynamics: iterated blocking-pair resolution.
//!
//! The natural decentralized process studied by Gai et al. and Mathieu:
//! while a blocking pair exists, satisfy it — both endpoints adopt the
//! connection, each dropping its worst connection if over quota. For
//! *acyclic* preference systems this converges to a stable b-matching; for
//! general (cyclic) systems it can oscillate forever, which is precisely
//! the paper's motivation for optimizing satisfaction instead.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use crate::stable::blocking::would_accept;

/// Outcome of a dynamics run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicsOutcome {
    /// Blocking-pair resolutions performed.
    pub steps: u64,
    /// `true` iff a stable state was reached (no blocking pair remains).
    pub converged: bool,
}

/// Runs better-response dynamics from `start` for at most `max_steps`
/// resolutions, scanning for blocking pairs in edge-id order (a round-robin
/// fair scheduler). Returns the final matching and the outcome.
pub fn better_response(
    problem: &Problem,
    start: BMatching,
    max_steps: u64,
) -> (BMatching, DynamicsOutcome) {
    let g = &problem.graph;
    let mut m = start;
    let mut steps = 0u64;

    'outer: while steps < max_steps {
        let mut found = false;
        for e in g.edges() {
            if m.contains(e) {
                continue;
            }
            let (u, v) = g.endpoints(e);
            if would_accept(problem, &m, u, v) && would_accept(problem, &m, v, u) {
                // Resolve: drop worst connections when saturated, then match.
                for (x, y) in [(u, v), (v, u)] {
                    let b = problem.quotas.get(x) as usize;
                    if m.degree(x) >= b {
                        let worst = *m
                            .connections(x)
                            .iter()
                            .max_by_key(|&&z| problem.prefs.rank(x, z).expect("neighbour"))
                            .expect("saturated node has connections");
                        let _ = y;
                        let we = g.edge_between(x, worst).expect("edge exists");
                        m.remove(g, we);
                    }
                }
                m.insert(problem, e);
                steps += 1;
                found = true;
                if steps >= max_steps {
                    break 'outer;
                }
            }
        }
        if !found {
            return (m, DynamicsOutcome { steps, converged: true });
        }
    }

    let converged = crate::stable::blocking::blocking_pairs(problem, &m).is_empty();
    (m, DynamicsOutcome { steps, converged })
}

/// Convenience: dynamics from the empty matching.
pub fn better_response_from_empty(problem: &Problem, max_steps: u64) -> (BMatching, DynamicsOutcome) {
    better_response(problem, BMatching::empty(&problem.graph), max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::acyclic::rps_gadget;
    use crate::stable::blocking::is_stable;
    use crate::verify;
    use owp_graph::generators::complete;
    use owp_graph::{PreferenceTable, Quotas};

    #[test]
    fn converges_on_aligned_preferences() {
        // Globally aligned (acyclic) preferences: dynamics must converge.
        let g = complete(8);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 2);
        let p = Problem::new(g, prefs, quotas);
        let (m, out) = better_response_from_empty(&p, 100_000);
        assert!(out.converged, "acyclic systems converge (Gai et al.)");
        assert!(is_stable(&p, &m));
        verify::check_valid(&p, &m).expect("valid");
    }

    #[test]
    fn converges_on_random_small_instances() {
        // Random roommates instances usually admit stable solutions; what we
        // assert unconditionally is validity + the converged flag being
        // truthful.
        for seed in 0..10 {
            let p = Problem::random_gnp(12, 0.5, 2, seed);
            let (m, out) = better_response_from_empty(&p, 50_000);
            verify::check_valid(&p, &m).expect("valid");
            assert_eq!(out.converged, is_stable(&p, &m));
        }
    }

    #[test]
    fn rps_gadget_never_converges() {
        // The rock-paper-scissors preference cycle with b=1 has no stable
        // matching; dynamics must still be running at the step cap.
        let p = rps_gadget();
        let (m, out) = better_response_from_empty(&p, 1_000);
        assert!(!out.converged, "cyclic gadget admits no stable matching");
        assert_eq!(out.steps, 1_000);
        verify::check_valid(&p, &m).expect("still a valid matching at cutoff");
    }

    #[test]
    fn stable_start_is_a_fixpoint() {
        let g = complete(6);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let (m1, out1) = better_response_from_empty(&p, 100_000);
        assert!(out1.converged);
        let (m2, out2) = better_response(&p, m1.clone(), 100_000);
        assert_eq!(out2.steps, 0);
        assert!(m1.same_edges(&m2));
    }
}
