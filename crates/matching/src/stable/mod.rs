//! Stable-fixtures (generalized stable roommates) machinery.
//!
//! The paper reframes overlay construction away from *stability* — which
//! Gai et al. showed is only guaranteed for acyclic preference systems —
//! toward *satisfaction maximization*. This module supplies the stability
//! side of that comparison:
//!
//! * [`blocking`] — blocking-pair detection for b-matchings with
//!   preferences (the stability criterion of the stable fixtures problem);
//! * [`dynamics`] — better-response dynamics (iterated blocking-pair
//!   resolution), the natural decentralized process that converges for
//!   acyclic systems and may cycle otherwise;
//! * [`acyclic`] — the acyclicity test on the preference system, and a
//!   generator of cyclic gadgets;
//! * [`gale_shapley`] — deferred acceptance on bipartite instances
//!   (reference [4]; always stable there);
//! * [`fixtures`] — phase 1 of Irving & Scott's stable fixtures algorithm
//!   (reference [7]; proposal/deletion reduction, decides aligned and many
//!   random instances outright).

pub mod acyclic;
pub mod blocking;
pub mod dynamics;
pub mod fixtures;
pub mod gale_shapley;

pub use acyclic::{is_acyclic, rps_gadget};
pub use blocking::{blocking_pairs, is_stable};
pub use dynamics::{better_response, DynamicsOutcome};
pub use fixtures::{phase1, Phase1Table};
pub use gale_shapley::gale_shapley;
