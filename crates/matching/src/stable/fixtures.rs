//! Phase 1 of Irving & Scott's stable fixtures algorithm — reference [7],
//! the generalized stable roommates setting the paper's problem lives in.
//!
//! Every agent proposes down its preference list until `b_x` of its
//! proposals are provisionally *held*; an agent holds at most `b_y` incoming
//! proposals, bouncing the worst when a better one arrives. Whenever `y`
//! becomes full, every agent ranked below `y`'s worst held proposer is
//! *deleted* from `y`'s list (mutually) — such pairs can belong to no stable
//! matching. Deletions can withdraw already-held proposals, cascading until
//! quiescence.
//!
//! Phase 1 alone decides two useful cases:
//!
//! * if after reduction every agent's list has **exactly** `b_x` entries,
//!   those pairs are a stable matching (returned as `Some(matching)`);
//! * if some agent's list shrank below its quota, no stable matching can
//!   fill that agent (the table still reports the reduced lists).
//!
//! The full algorithm needs a rotation-elimination phase 2 to decide every
//! instance; that is out of scope here (documented substitution — the
//! experiments use [`crate::stable::dynamics`] for general instances), but
//! phase 1's reduced table is exactly what the experiments need to measure
//! how much of the instance stability constraints already pin down.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use owp_graph::{NodeId, Rank};
use std::collections::HashSet;

/// Outcome of phase 1.
#[derive(Debug)]
pub struct Phase1Table {
    /// Per node: the reduced preference list (original order, deletions
    /// removed).
    pub reduced: Vec<Vec<NodeId>>,
    /// Per node: incoming proposals currently held.
    pub holds: Vec<Vec<NodeId>>,
    /// Pairs deleted during reduction (canonical `(min, max)`).
    pub deleted_pairs: usize,
    /// `Some(matching)` iff the reduced table decides the instance
    /// (every reduced list has exactly `b_x` entries).
    pub decided: Option<BMatching>,
}

struct Phase1<'p> {
    problem: &'p Problem,
    deleted: HashSet<(u32, u32)>,
    /// Per node: cursor into its preference list (next proposal candidate).
    cursor: Vec<usize>,
    /// Per node: incoming held proposals.
    holds: Vec<Vec<NodeId>>,
    /// Per node: how many of its outgoing proposals are currently held.
    out_held: Vec<u32>,
    /// Per node: outgoing proposals currently held by the target.
    out_targets: Vec<HashSet<u32>>,
    queue: Vec<NodeId>,
    queued: Vec<bool>,
}

impl<'p> Phase1<'p> {
    fn new(problem: &'p Problem) -> Self {
        let n = problem.node_count();
        Phase1 {
            problem,
            deleted: HashSet::new(),
            cursor: vec![0; n],
            holds: vec![Vec::new(); n],
            out_held: vec![0; n],
            out_targets: (0..n).map(|_| HashSet::new()).collect(),
            queue: Vec::new(),
            queued: vec![false; n],
        }
    }

    fn key(a: NodeId, b: NodeId) -> (u32, u32) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    fn is_deleted(&self, a: NodeId, b: NodeId) -> bool {
        self.deleted.contains(&Self::key(a, b))
    }

    fn rank(&self, x: NodeId, y: NodeId) -> Rank {
        self.problem.prefs.rank(x, y).expect("neighbour")
    }

    fn enqueue(&mut self, x: NodeId) {
        if !self.queued[x.index()] {
            self.queued[x.index()] = true;
            self.queue.push(x);
        }
    }

    /// Deletes the pair `{a, b}`, withdrawing any held proposal between
    /// them (in either direction) and re-queueing the losers.
    fn delete_pair(&mut self, a: NodeId, b: NodeId) {
        if !self.deleted.insert(Self::key(a, b)) {
            return;
        }
        for (x, y) in [(a, b), (b, a)] {
            // x's proposal held by y?
            if self.out_targets[x.index()].remove(&y.0) {
                self.out_held[x.index()] -= 1;
                self.holds[y.index()].retain(|&z| z != x);
                self.enqueue(x);
            }
        }
    }

    /// `y` becomes full: prune everyone it likes less than its worst held
    /// proposer.
    fn prune_below_worst(&mut self, y: NodeId) {
        let b_y = self.problem.quotas.get(y) as usize;
        if self.holds[y.index()].len() < b_y {
            return;
        }
        let worst_rank = self.holds[y.index()]
            .iter()
            .map(|&z| self.rank(y, z))
            .max()
            .expect("full holder has holds");
        let victims: Vec<NodeId> = self.problem.prefs.list(y)
            [worst_rank as usize + 1..]
            .iter()
            .copied()
            .filter(|&z| !self.is_deleted(y, z))
            .collect();
        for z in victims {
            self.delete_pair(y, z);
        }
    }

    /// One proposal by `x` to the next live candidate. Returns `false` when
    /// `x` has nothing further to do.
    fn propose_once(&mut self, x: NodeId) -> bool {
        if self.out_held[x.index()] >= self.problem.quotas.get(x) {
            return false;
        }
        let list = self.problem.prefs.list(x);
        // Advance past deleted or already-held targets.
        while self.cursor[x.index()] < list.len() {
            let y = list[self.cursor[x.index()]];
            if self.is_deleted(x, y) || self.out_targets[x.index()].contains(&y.0) {
                self.cursor[x.index()] += 1;
            } else {
                break;
            }
        }
        let Some(&y) = list.get(self.cursor[x.index()]) else {
            return false;
        };
        self.cursor[x.index()] += 1;

        let b_y = self.problem.quotas.get(y) as usize;
        if b_y == 0 {
            self.delete_pair(x, y);
            return true;
        }
        if self.holds[y.index()].len() < b_y {
            self.holds[y.index()].push(x);
            self.out_targets[x.index()].insert(y.0);
            self.out_held[x.index()] += 1;
            self.prune_below_worst(y);
            return true;
        }
        // y full: bounce its worst held proposer if x is better.
        let (worst_pos, worst) = {
            let (pos, &w) = self.holds[y.index()]
                .iter()
                .enumerate()
                .max_by_key(|&(_, &z)| self.rank(y, z))
                .expect("full holder has holds");
            (pos, w)
        };
        if self.rank(y, x) < self.rank(y, worst) {
            self.holds[y.index()][worst_pos] = x;
            self.out_targets[x.index()].insert(y.0);
            self.out_held[x.index()] += 1;
            self.delete_pair(y, worst);
            self.prune_below_worst(y);
        } else {
            self.delete_pair(x, y);
        }
        true
    }

    fn run(mut self) -> Phase1Table {
        for i in self.problem.nodes() {
            self.enqueue(i);
        }
        while let Some(x) = self.queue.pop() {
            self.queued[x.index()] = false;
            while self.propose_once(x) {}
        }

        let reduced: Vec<Vec<NodeId>> = self
            .problem
            .nodes()
            .map(|i| {
                self.problem
                    .prefs
                    .list(i)
                    .iter()
                    .copied()
                    .filter(|&j| !self.is_deleted(i, j))
                    .collect()
            })
            .collect();

        // Decided iff every reduced list has exactly b_i entries; the pairs
        // then form a (necessarily symmetric) stable matching.
        let decided = if self
            .problem
            .nodes()
            .all(|i| reduced[i.index()].len() == self.problem.quotas.get(i) as usize)
        {
            let mut edges = Vec::new();
            let g = &self.problem.graph;
            for i in self.problem.nodes() {
                for &j in &reduced[i.index()] {
                    debug_assert!(
                        reduced[j.index()].contains(&i),
                        "reduced table must be symmetric"
                    );
                    if i < j {
                        edges.push(g.edge_between(i, j).expect("pair is an edge"));
                    }
                }
            }
            Some(BMatching::from_edges(self.problem, edges))
        } else {
            None
        };

        Phase1Table {
            reduced,
            holds: self.holds,
            deleted_pairs: self.deleted.len(),
            decided,
        }
    }
}

/// Runs phase 1 of the stable fixtures algorithm.
pub fn phase1(problem: &Problem) -> Phase1Table {
    Phase1::new(problem).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::acyclic::rps_gadget;
    use crate::stable::blocking::is_stable;
    use crate::verify;
    use owp_graph::generators::complete;
    use owp_graph::PreferenceTable;
    use owp_graph::Quotas;

    #[test]
    fn aligned_preferences_are_decided_and_stable() {
        // Globally aligned (id-ordered) preferences: phase 1 must fully
        // decide the instance, and its matching must be stable.
        for n in [4usize, 6, 8] {
            let g = complete(n);
            let prefs = PreferenceTable::by_node_id(&g);
            let quotas = Quotas::uniform(&g, 1);
            let p = Problem::new(g, prefs, quotas);
            let table = phase1(&p);
            let m = table.decided.expect("aligned b=1 is decided by phase 1");
            verify::check_valid(&p, &m).expect("valid");
            assert!(is_stable(&p, &m));
            // Consecutive pairing (0,1), (2,3), …
            assert!(m.connections(NodeId(0)).contains(&NodeId(1)));
        }
    }

    #[test]
    fn rps_gadget_is_undecided_by_phase1() {
        // The cyclic gadget has no stable matching; phase 1 cannot decide it
        // (that takes phase 2), and must leave over-long reduced lists.
        let p = rps_gadget();
        let table = phase1(&p);
        assert!(table.decided.is_none());
        assert!(p
            .nodes()
            .any(|i| table.reduced[i.index()].len() > p.quotas.get(i) as usize));
    }

    #[test]
    fn reduced_lists_are_symmetric_and_within_originals() {
        for seed in 0..15 {
            let p = Problem::random_gnp(16, 0.4, 2, seed);
            let table = phase1(&p);
            for i in p.nodes() {
                for &j in &table.reduced[i.index()] {
                    assert!(
                        table.reduced[j.index()].contains(&i),
                        "seed {seed}: deletion must be mutual"
                    );
                    assert!(p.graph.has_edge(i, j));
                }
            }
        }
    }

    #[test]
    fn decided_instances_yield_stable_matchings() {
        let mut decided = 0;
        for seed in 0..40 {
            let p = Problem::random_gnp(12, 0.5, 1, 100 + seed);
            let table = phase1(&p);
            if let Some(m) = table.decided {
                decided += 1;
                verify::check_valid(&p, &m).expect("valid");
                assert!(is_stable(&p, &m), "seed {seed}: decided ⇒ stable");
            }
        }
        assert!(decided > 0, "some random roommates instances decide in phase 1");
    }

    #[test]
    fn holds_respect_quotas() {
        for seed in 0..10 {
            let p = Problem::random_gnp(14, 0.5, 3, 200 + seed);
            let table = phase1(&p);
            for i in p.nodes() {
                assert!(table.holds[i.index()].len() <= p.quotas.get(i) as usize);
            }
        }
    }

    #[test]
    fn zero_quota_nodes_are_fully_pruned() {
        let g = complete(4);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![0, 1, 1, 1]);
        let p = Problem::new(g, prefs, quotas);
        let table = phase1(&p);
        assert!(table.reduced[0].is_empty(), "quota-0 node keeps nobody");
    }
}
