//! Exact rational arithmetic for edge weights.
//!
//! Every quantity in the paper's weight formula (eq. 9) is a ratio of small
//! integers: ranks, list lengths and quotas. Using exact rationals instead of
//! `f64` makes *locally heaviest* comparisons exact, which in turn makes the
//! LIC ≡ LID equivalence (Theorem 3) testable bit-for-bit and rules out the
//! float-tie pathologies the ablation bench (`bench_weights`) demonstrates.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// An exact rational number `num/den` with `den > 0`, stored reduced.
///
/// Arithmetic uses `i128` and panics on overflow; after gcd reduction the
/// values arising from eq. 9 stay far below the overflow range for every
/// instance size this repository can hold in memory (see `DESIGN.md` §3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a < 0 {
        -a
    } else {
        a
    }
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den`, reduced and sign-normalized.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Creates the integer `n`.
    pub fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (reduced form, sign-carrying).
    pub fn numerator(self) -> i128 {
        self.num
    }

    /// Denominator (reduced form, always positive).
    pub fn denominator(self) -> i128 {
        self.den
    }

    /// Lossy conversion for reporting.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    fn checked_add_impl(self, rhs: Rational) -> Option<Rational> {
        // a/b + c/d = (a·(l/b) + c·(l/d)) / l with l = lcm(b, d).
        let g = gcd(self.den, rhs.den);
        let l = (self.den / g).checked_mul(rhs.den)?;
        let lhs = self.num.checked_mul(l / self.den)?;
        let rhs_t = rhs.num.checked_mul(l / rhs.den)?;
        Some(Rational::new(lhs.checked_add(rhs_t)?, l))
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add_impl(rhs)
            .expect("rational addition overflowed i128")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + Rational::new(-rhs.num, rhs.den)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiplication with positive denominators preserves order.
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational comparison overflowed i128");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational comparison overflowed i128");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_signs() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(7, 1), Rational::from_int(7));
    }

    #[test]
    fn ordering_is_exact() {
        let a = Rational::new(1, 3);
        let b = Rational::new(2, 6);
        let c = Rational::new(333_333_333, 1_000_000_000);
        assert_eq!(a, b);
        assert!(c < a, "1/3 > 0.333333333 exactly");
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::ONE > Rational::new(999_999, 1_000_000));
    }

    #[test]
    fn arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(third + third + third, Rational::ONE);
        assert!((half.to_f64() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn predicates() {
        assert!(Rational::ZERO.is_zero());
        assert!(!Rational::ZERO.is_positive());
        assert!(Rational::new(3, 7).is_positive());
        assert_eq!(Rational::new(3, 7).numerator(), 3);
        assert_eq!(Rational::new(3, 7).denominator(), 7);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Rational::new(3, 7)), "3/7");
        assert_eq!(format!("{}", Rational::from_int(4)), "4");
        assert_eq!(format!("{:?}", Rational::new(-1, 2)), "-1/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Rational::new(1, 0);
    }

    #[test]
    fn distinguishes_tiny_differences_f64_conflates() {
        // Two weights whose f64 images are identical but which differ exactly.
        let a = Rational::new(1, 10_000_000_000_000_000_000_000_000i128);
        let b = Rational::new(2, 10_000_000_000_000_000_000_000_000i128);
        assert!(a < b);
        assert_eq!(a.to_f64(), b.to_f64() / 2.0);
    }
}
