//! Exact maximum-weight b-matching on *bipartite* instances via min-cost
//! flow — an algorithmically independent cross-check of the branch & bound
//! solver in [`crate::exact`].
//!
//! Construction: `source → left (cap b_i, cost 0)`, `left → right (cap 1,
//! cost −w)`, `right → sink (cap b_j, cost 0)`. Successive shortest
//! augmenting paths (Bellman–Ford, handles the negative arc costs) are sent
//! while the shortest path is negative, i.e. while one more matched edge
//! still increases total weight — since eq. 9 weights are all positive this
//! saturates greedily but *optimally*.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use owp_graph::{EdgeId, Graph, NodeId};

/// Two-colours the graph; returns `side[i] ∈ {0, 1}` per node or `None` if
/// an odd cycle exists (graph not bipartite). Isolated nodes get side 0.
pub fn two_color(g: &Graph) -> Option<Vec<u8>> {
    let n = g.node_count();
    let mut side = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if side[s] != u8::MAX {
            continue;
        }
        side[s] = 0;
        queue.push_back(NodeId(s as u32));
        while let Some(u) = queue.pop_front() {
            for v in g.neighbor_ids(u) {
                if side[v.index()] == u8::MAX {
                    side[v.index()] = 1 - side[u.index()];
                    queue.push_back(v);
                } else if side[v.index()] == side[u.index()] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

struct Arc {
    to: usize,
    cap: i64,
    cost: f64,
    /// Index of the reverse arc in `to`'s list.
    rev: usize,
    /// Matching edge this arc realizes (forward matching arcs only).
    edge: Option<EdgeId>,
}

struct FlowNet {
    adj: Vec<Vec<Arc>>,
}

impl FlowNet {
    fn new(n: usize) -> Self {
        FlowNet {
            adj: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn add(&mut self, from: usize, to: usize, cap: i64, cost: f64, edge: Option<EdgeId>) {
        let rev_f = self.adj[to].len();
        let rev_b = self.adj[from].len();
        self.adj[from].push(Arc {
            to,
            cap,
            cost,
            rev: rev_f,
            edge,
        });
        self.adj[to].push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
            rev: rev_b,
            edge: None,
        });
    }

    /// One Bellman–Ford shortest-path pass from `s`; returns per-node
    /// `(dist, prev node, prev arc idx)`.
    fn bellman_ford(&self, s: usize) -> Vec<(f64, usize, usize)> {
        let n = self.adj.len();
        let mut state = vec![(f64::INFINITY, usize::MAX, usize::MAX); n];
        state[s].0 = 0.0;
        for _ in 0..n {
            let mut changed = false;
            for u in 0..n {
                let du = state[u].0;
                if !du.is_finite() {
                    continue;
                }
                for (k, arc) in self.adj[u].iter().enumerate() {
                    if arc.cap > 0 && du + arc.cost < state[arc.to].0 - 1e-12 {
                        state[arc.to] = (du + arc.cost, u, k);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        state
    }
}

/// Exact maximum-weight b-matching of a **bipartite** problem. Returns
/// `None` if the graph is not bipartite (use [`crate::exact::optimal_weight`]
/// then).
pub fn optimal_weight_bipartite(problem: &Problem) -> Option<BMatching> {
    let g = &problem.graph;
    let side = two_color(g)?;

    let n = g.node_count();
    let (s, t) = (n, n + 1);
    let mut net = FlowNet::new(n + 2);
    for i in g.nodes() {
        let b = problem.quotas.get(i) as i64;
        if side[i.index()] == 0 {
            net.add(s, i.index(), b, 0.0, None);
        } else {
            net.add(i.index(), t, b, 0.0, None);
        }
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let (left, right) = if side[u.index()] == 0 { (u, v) } else { (v, u) };
        debug_assert_ne!(side[left.index()], side[right.index()]);
        let w = problem.weights.get_f64(e);
        net.add(left.index(), right.index(), 1, -w, Some(e));
    }

    // Successive shortest paths while they strictly improve total weight.
    loop {
        let state = net.bellman_ford(s);
        let (dist_t, ..) = state[t];
        if !dist_t.is_finite() || dist_t >= -1e-12 {
            break;
        }
        // Unit augmentation along the path.
        let mut v = t;
        while v != s {
            let (_, pu, pk) = state[v];
            let rev = net.adj[pu][pk].rev;
            net.adj[pu][pk].cap -= 1;
            net.adj[v][rev].cap += 1;
            v = pu;
        }
    }

    // Matched edges = forward matching arcs whose capacity was consumed.
    let mut edges = Vec::new();
    for u in 0..n {
        for arc in &net.adj[u] {
            if let Some(e) = arc.edge {
                if arc.cap == 0 {
                    edges.push(e);
                }
            }
        }
    }
    Some(BMatching::from_edges(problem, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{optimal_weight, DEFAULT_BUDGET};
    use crate::lic::{lic, SelectionPolicy};
    use crate::verify;
    use owp_graph::generators::{complete, complete_bipartite, random_bipartite};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_color_classifies() {
        assert!(two_color(&complete_bipartite(3, 4)).is_some());
        assert!(two_color(&complete(3)).is_none(), "odd cycle");
        assert!(two_color(&owp_graph::generators::ring(6)).is_some());
        assert!(two_color(&owp_graph::generators::ring(5)).is_none());
        let side = two_color(&complete_bipartite(2, 2)).unwrap();
        assert_eq!(side, vec![0, 0, 1, 1]);
    }

    #[test]
    fn agrees_with_branch_and_bound() {
        // The decisive cross-check: two independent exact algorithms must
        // produce the same optimal value on every bipartite instance.
        for seed in 0..15 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_bipartite(7, 6, 0.5, &mut rng);
            for b in [1u32, 2, 3] {
                let p = Problem::random_over(g.clone(), b, seed * 13 + b as u64);
                let flow = optimal_weight_bipartite(&p).expect("bipartite");
                verify::check_valid(&p, &flow).expect("valid");
                let bnb = optimal_weight(&p, DEFAULT_BUDGET);
                assert!(bnb.proven_optimal);
                let fw = flow.total_weight(&p);
                assert!(
                    (fw - bnb.value).abs() < 1e-9,
                    "seed {seed} b={b}: flow {fw} vs B&B {}",
                    bnb.value
                );
            }
        }
    }

    #[test]
    fn beats_or_ties_greedy() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let g = random_bipartite(8, 8, 0.4, &mut rng);
            let p = Problem::random_over(g, 2, seed);
            let Some(flow) = optimal_weight_bipartite(&p) else {
                panic!("bipartite")
            };
            let greedy = lic(&p, SelectionPolicy::InOrder);
            assert!(flow.total_weight(&p) >= greedy.total_weight(&p) - 1e-9);
            // And the ½-approximation seen from the other side.
            assert!(greedy.total_weight(&p) >= 0.5 * flow.total_weight(&p) - 1e-9);
        }
    }

    #[test]
    fn non_bipartite_returns_none() {
        let p = Problem::random_over(complete(5), 2, 1);
        assert!(optimal_weight_bipartite(&p).is_none());
    }

    #[test]
    fn saturates_complete_bipartite_with_ample_quota() {
        let g = complete_bipartite(3, 3);
        let p = Problem::random_over(g, 3, 2);
        let m = optimal_weight_bipartite(&p).unwrap();
        assert_eq!(m.size(), 9, "all positive-weight edges fit");
    }
}
