//! Edmonds' blossom algorithm for maximum-weight matching on general graphs
//! — the paper's reference [2] ("Paths, trees and flowers") in its weighted
//! primal–dual form (Galil's O(n³) formulation, following van Rantwijk's
//! well-known implementation structure).
//!
//! This gives an exact polynomial-time OPT for the one-to-one (`b ≡ 1`)
//! case on graphs far beyond what branch & bound reaches, so the E2-style
//! approximation-ratio measurements can scale. Correctness is established
//! by cross-checking against three independent exact methods (B&B, bitmask
//! DP, bipartite min-cost flow) over hundreds of random instances.
//!
//! Implementation notes:
//! * integer arithmetic throughout — input weights are scaled to `i64` and
//!   **doubled**, which keeps all dual variables integral (the standard
//!   trick);
//! * vertices are `0..n`; blossoms occupy ids `n..2n`;
//! * an edge `k` has endpoints `2k` and `2k+1` (the `p ^ 1` trick navigates
//!   between them).

use crate::bmatching::BMatching;
use crate::problem::Problem;
use owp_graph::EdgeId;

const NONE: i64 = -1;

/// Maximum-weight matching on an abstract weighted graph.
///
/// `edges[k] = (i, j, w)` with `i != j`, vertices `0..n`. Returns `mate`
/// where `mate[v]` is `v`'s partner or `usize::MAX`.
pub struct Blossom {
    nvertex: usize,
    nedge: usize,
    edges: Vec<(usize, usize, i64)>,
    endpoint: Vec<usize>,
    neighbend: Vec<Vec<usize>>,
    mate: Vec<i64>, // endpoint index or -1
    label: Vec<u8>,
    labelend: Vec<i64>,
    inblossom: Vec<usize>,
    blossomparent: Vec<i64>,
    blossomchilds: Vec<Vec<usize>>,
    blossombase: Vec<i64>,
    blossomendps: Vec<Vec<usize>>,
    bestedge: Vec<i64>,
    blossombestedges: Vec<Vec<usize>>,
    unusedblossoms: Vec<usize>,
    dualvar: Vec<i64>,
    allowedge: Vec<bool>,
    queue: Vec<usize>,
}

impl Blossom {
    /// Builds the solver state for the given doubled-integer-weight edges.
    fn new(nvertex: usize, edges: Vec<(usize, usize, i64)>) -> Self {
        let nedge = edges.len();
        let maxweight = edges.iter().map(|&(_, _, w)| w).max().unwrap_or(0).max(0);
        let mut endpoint = Vec::with_capacity(2 * nedge);
        for &(i, j, _) in &edges {
            endpoint.push(i);
            endpoint.push(j);
        }
        let mut neighbend = vec![Vec::new(); nvertex];
        for (k, &(i, j, _)) in edges.iter().enumerate() {
            neighbend[i].push(2 * k + 1);
            neighbend[j].push(2 * k);
        }
        let mut dualvar = vec![maxweight; nvertex];
        dualvar.extend(std::iter::repeat(0).take(nvertex));
        Blossom {
            nvertex,
            nedge,
            edges,
            endpoint,
            neighbend,
            mate: vec![NONE; nvertex],
            label: vec![0; 2 * nvertex],
            labelend: vec![NONE; 2 * nvertex],
            inblossom: (0..nvertex).collect(),
            blossomparent: vec![NONE; 2 * nvertex],
            blossomchilds: vec![Vec::new(); 2 * nvertex],
            blossombase: (0..nvertex as i64)
                .chain(std::iter::repeat(NONE).take(nvertex))
                .collect(),
            blossomendps: vec![Vec::new(); 2 * nvertex],
            bestedge: vec![NONE; 2 * nvertex],
            blossombestedges: vec![Vec::new(); 2 * nvertex],
            unusedblossoms: (nvertex..2 * nvertex).collect(),
            dualvar,
            allowedge: vec![false; nedge],
            queue: Vec::new(),
        }
    }

    #[inline]
    fn slack(&self, k: usize) -> i64 {
        let (i, j, wt) = self.edges[k];
        self.dualvar[i] + self.dualvar[j] - 2 * wt
    }

    /// All vertices inside blossom `b` (which may be a plain vertex).
    fn blossom_leaves(&self, b: usize, out: &mut Vec<usize>) {
        if b < self.nvertex {
            out.push(b);
        } else {
            for t in self.blossomchilds[b].clone() {
                self.blossom_leaves(t, out);
            }
        }
    }

    fn assign_label(&mut self, w: usize, t: u8, p: i64) {
        let b = self.inblossom[w];
        debug_assert!(self.label[w] == 0 && self.label[b] == 0);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NONE;
        self.bestedge[b] = NONE;
        if t == 1 {
            let mut leaves = Vec::new();
            self.blossom_leaves(b, &mut leaves);
            self.queue.extend(leaves);
        } else if t == 2 {
            let base = self.blossombase[b] as usize;
            debug_assert!(self.mate[base] >= 0);
            let mate_ep = self.mate[base] as usize;
            self.assign_label(self.endpoint[mate_ep], 1, self.mate[base] ^ 1);
        }
    }

    /// Traces back from `v` and `w` to find a common ancestor base vertex.
    fn scan_blossom(&mut self, v: usize, w: usize) -> i64 {
        let mut path = Vec::new();
        let mut base = NONE;
        let mut v = v as i64;
        let mut w = w as i64;
        while v != NONE || w != NONE {
            if v != NONE {
                let b = self.inblossom[v as usize];
                if self.label[b] & 4 != 0 {
                    base = self.blossombase[b];
                    break;
                }
                debug_assert_eq!(self.label[b], 1);
                path.push(b);
                self.label[b] = 5;
                debug_assert_eq!(
                    self.labelend[b],
                    self.mate[self.blossombase[b] as usize]
                );
                if self.labelend[b] == NONE {
                    v = NONE;
                } else {
                    let t = self.endpoint[self.labelend[b] as usize];
                    let bt = self.inblossom[t];
                    debug_assert_eq!(self.label[bt], 2);
                    debug_assert!(self.labelend[bt] >= 0);
                    v = self.endpoint[self.labelend[bt] as usize] as i64;
                }
            }
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for b in path {
            self.label[b] = 1;
        }
        base
    }

    /// Builds a new blossom with the given base, through edge `k`.
    fn add_blossom(&mut self, base: usize, k: usize) {
        let (mut v, mut w, _) = self.edges[k];
        let bb = self.inblossom[base];
        let mut bv = self.inblossom[v];
        let mut bw = self.inblossom[w];
        let b = self.unusedblossoms.pop().expect("blossom id available");
        self.blossombase[b] = base as i64;
        self.blossomparent[b] = NONE;
        self.blossomparent[bb] = b as i64;

        let mut path = Vec::new();
        let mut endps = Vec::new();
        while bv != bb {
            self.blossomparent[bv] = b as i64;
            path.push(bv);
            endps.push(self.labelend[bv] as usize);
            debug_assert!(
                self.label[bv] == 2
                    || (self.label[bv] == 1
                        && self.labelend[bv] == self.mate[self.blossombase[bv] as usize])
            );
            debug_assert!(self.labelend[bv] >= 0);
            v = self.endpoint[self.labelend[bv] as usize];
            bv = self.inblossom[v];
        }
        path.push(bb);
        path.reverse();
        endps.reverse();
        endps.push(2 * k);
        while bw != bb {
            self.blossomparent[bw] = b as i64;
            path.push(bw);
            endps.push((self.labelend[bw] as usize) ^ 1);
            debug_assert!(
                self.label[bw] == 2
                    || (self.label[bw] == 1
                        && self.labelend[bw] == self.mate[self.blossombase[bw] as usize])
            );
            debug_assert!(self.labelend[bw] >= 0);
            w = self.endpoint[self.labelend[bw] as usize];
            bw = self.inblossom[w];
        }

        debug_assert_eq!(self.label[bb], 1);
        self.label[b] = 1;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0;

        self.blossomchilds[b] = path.clone();
        self.blossomendps[b] = endps;

        let mut leaves = Vec::new();
        self.blossom_leaves(b, &mut leaves);
        for &lv in &leaves {
            if self.label[self.inblossom[lv]] == 2 {
                self.queue.push(lv);
            }
            self.inblossom[lv] = b;
        }

        // Compute the blossom's best-edge lists.
        let mut bestedgeto = vec![NONE; 2 * self.nvertex];
        for &bv in &path {
            let nblists: Vec<Vec<usize>> = if self.blossombestedges[bv].is_empty() {
                let mut ls = Vec::new();
                let mut lvs = Vec::new();
                self.blossom_leaves(bv, &mut lvs);
                for lv in lvs {
                    ls.push(self.neighbend[lv].iter().map(|&p| p / 2).collect());
                }
                ls
            } else {
                vec![self.blossombestedges[bv].clone()]
            };
            for nblist in nblists {
                for k2 in nblist {
                    let (mut i, mut j, _) = self.edges[k2];
                    if self.inblossom[j] == b {
                        std::mem::swap(&mut i, &mut j);
                    }
                    let _ = i;
                    let bj = self.inblossom[j];
                    if bj != b
                        && self.label[bj] == 1
                        && (bestedgeto[bj] == NONE
                            || self.slack(k2) < self.slack(bestedgeto[bj] as usize))
                    {
                        bestedgeto[bj] = k2 as i64;
                    }
                }
            }
            self.blossombestedges[bv] = Vec::new();
            self.bestedge[bv] = NONE;
        }
        self.blossombestedges[b] = bestedgeto
            .into_iter()
            .filter(|&k2| k2 != NONE)
            .map(|k2| k2 as usize)
            .collect();
        self.bestedge[b] = NONE;
        for k2 in self.blossombestedges[b].clone() {
            if self.bestedge[b] == NONE
                || self.slack(k2) < self.slack(self.bestedge[b] as usize)
            {
                self.bestedge[b] = k2 as i64;
            }
        }
    }

    /// Expands blossom `b`, restoring its children as top-level blossoms.
    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        for s in self.blossomchilds[b].clone() {
            self.blossomparent[s] = NONE;
            if s < self.nvertex {
                self.inblossom[s] = s;
            } else if endstage && self.dualvar[s] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                let mut lvs = Vec::new();
                self.blossom_leaves(s, &mut lvs);
                for v in lvs {
                    self.inblossom[v] = s;
                }
            }
        }

        if !endstage && self.label[b] == 2 {
            // Relabel the path from the entry child to the base.
            debug_assert!(self.labelend[b] >= 0);
            let entrychild =
                self.inblossom[self.endpoint[(self.labelend[b] as usize) ^ 1]];
            let childs = self.blossomchilds[b].clone();
            let endps = self.blossomendps[b].clone();
            let len = childs.len() as i64;
            let mut j = childs.iter().position(|&c| c == entrychild).unwrap() as i64;
            let (jstep, endptrick): (i64, usize) = if j & 1 != 0 {
                j -= len;
                (1, 0)
            } else {
                (-1, 1)
            };
            let idx = |x: i64| -> usize {
                (((x % len) + len) % len) as usize
            };
            let mut p = self.labelend[b] as usize;
            while j != 0 {
                // Relabel the T-sub-blossom.
                self.label[self.endpoint[p ^ 1]] = 0;
                let q = endps[idx(j - endptrick as i64)] ^ endptrick ^ 1;
                self.label[self.endpoint[q]] = 0;
                self.assign_label(self.endpoint[p ^ 1], 2, p as i64);
                self.allowedge[endps[idx(j - endptrick as i64)] / 2] = true;
                j += jstep;
                p = endps[idx(j - endptrick as i64)] ^ endptrick;
                self.allowedge[p / 2] = true;
                j += jstep;
            }
            // Relabel the base T-sub-blossom.
            let bv = childs[idx(j)];
            self.label[self.endpoint[p ^ 1]] = 2;
            self.label[bv] = 2;
            self.labelend[self.endpoint[p ^ 1]] = p as i64;
            self.labelend[bv] = p as i64;
            self.bestedge[bv] = NONE;
            // Clear labels on the remaining (even-side) sub-blossoms.
            j += jstep;
            while childs[idx(j)] != entrychild {
                let bv = childs[idx(j)];
                if self.label[bv] == 1 {
                    j += jstep;
                    continue;
                }
                let mut lvs = Vec::new();
                self.blossom_leaves(bv, &mut lvs);
                let mut vfound = None;
                for v in lvs {
                    if self.label[v] != 0 {
                        vfound = Some(v);
                        break;
                    }
                }
                if let Some(v) = vfound {
                    debug_assert_eq!(self.label[v], 2);
                    debug_assert_eq!(self.inblossom[v], bv);
                    self.label[v] = 0;
                    let base = self.blossombase[bv] as usize;
                    let m = self.mate[base] as usize;
                    self.label[self.endpoint[m]] = 0;
                    let le = self.labelend[v];
                    self.assign_label(v, 2, le);
                }
                j += jstep;
            }
        }

        self.label[b] = 0;
        self.labelend[b] = NONE;
        self.blossomchilds[b] = Vec::new();
        self.blossomendps[b] = Vec::new();
        self.blossombase[b] = NONE;
        self.blossombestedges[b] = Vec::new();
        self.bestedge[b] = NONE;
        self.unusedblossoms.push(b);
    }

    /// Swaps matched/unmatched edges around blossom `b` so that `v` becomes
    /// its base.
    fn augment_blossom(&mut self, b: usize, v: usize) {
        let mut t = v;
        while self.blossomparent[t] != b as i64 {
            t = self.blossomparent[t] as usize;
        }
        if t >= self.nvertex {
            self.augment_blossom(t, v);
        }
        let childs = self.blossomchilds[b].clone();
        let endps = self.blossomendps[b].clone();
        let len = childs.len() as i64;
        let i = childs.iter().position(|&c| c == t).unwrap() as i64;
        let mut j = i;
        let (jstep, endptrick): (i64, usize) = if i & 1 != 0 {
            j -= len;
            (1, 0)
        } else {
            (-1, 1)
        };
        let idx = |x: i64| -> usize { (((x % len) + len) % len) as usize };
        while j != 0 {
            j += jstep;
            let t2 = childs[idx(j)];
            let p = endps[idx(j - endptrick as i64)] ^ endptrick;
            if t2 >= self.nvertex {
                self.augment_blossom(t2, self.endpoint[p]);
            }
            j += jstep;
            let t3 = childs[idx(j)];
            if t3 >= self.nvertex {
                self.augment_blossom(t3, self.endpoint[p ^ 1]);
            }
            self.mate[self.endpoint[p]] = (p ^ 1) as i64;
            self.mate[self.endpoint[p ^ 1]] = p as i64;
        }
        // Rotate so that sub-blossom i becomes the base.
        let i = i as usize;
        let mut nc = childs[i..].to_vec();
        nc.extend_from_slice(&childs[..i]);
        let mut ne = endps[i..].to_vec();
        ne.extend_from_slice(&endps[..i]);
        self.blossomchilds[b] = nc;
        self.blossomendps[b] = ne;
        self.blossombase[b] = self.blossombase[self.blossomchilds[b][0]];
        debug_assert_eq!(self.blossombase[b], v as i64);
    }

    /// Augments the matching along the path through edge `k` = (v, w).
    fn augment_matching(&mut self, k: usize) {
        let (v, w, _) = self.edges[k];
        for (s0, p0) in [(v, 2 * k + 1), (w, 2 * k)] {
            let mut s = s0;
            let mut p = p0;
            loop {
                let bs = self.inblossom[s];
                debug_assert_eq!(self.label[bs], 1);
                debug_assert_eq!(
                    self.labelend[bs],
                    self.mate[self.blossombase[bs] as usize]
                );
                if bs >= self.nvertex {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p as i64;
                if self.labelend[bs] == NONE {
                    break;
                }
                let t = self.endpoint[self.labelend[bs] as usize];
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] >= 0);
                s = self.endpoint[self.labelend[bt] as usize];
                let j = self.endpoint[(self.labelend[bt] as usize) ^ 1];
                debug_assert_eq!(self.blossombase[bt] as usize, t);
                if bt >= self.nvertex {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = (self.labelend[bt] as usize) ^ 1;
            }
        }
    }

    /// Runs the full algorithm; returns `mate` as vertex indices.
    fn solve(mut self) -> Vec<i64> {
        if self.nedge == 0 {
            return vec![NONE; self.nvertex];
        }
        for _ in 0..self.nvertex {
            // New stage.
            self.label = vec![0; 2 * self.nvertex];
            self.bestedge = vec![NONE; 2 * self.nvertex];
            for lst in self.blossombestedges[self.nvertex..].iter_mut() {
                *lst = Vec::new();
            }
            self.allowedge = vec![false; self.nedge];
            self.queue.clear();

            for v in 0..self.nvertex {
                if self.mate[v] == NONE && self.label[self.inblossom[v]] == 0 {
                    self.assign_label(v, 1, NONE);
                }
            }

            let mut augmented = false;
            loop {
                while let Some(v) = self.queue.pop() {
                    debug_assert_eq!(self.label[self.inblossom[v]], 1);
                    for pi in 0..self.neighbend[v].len() {
                        let p = self.neighbend[v][pi];
                        let k = p / 2;
                        let w = self.endpoint[p];
                        if self.inblossom[v] == self.inblossom[w] {
                            continue;
                        }
                        let mut kslack = 0;
                        if !self.allowedge[k] {
                            kslack = self.slack(k);
                            if kslack <= 0 {
                                self.allowedge[k] = true;
                            }
                        }
                        if self.allowedge[k] {
                            if self.label[self.inblossom[w]] == 0 {
                                self.assign_label(w, 2, (p ^ 1) as i64);
                            } else if self.label[self.inblossom[w]] == 1 {
                                let base = self.scan_blossom(v, w);
                                if base >= 0 {
                                    self.add_blossom(base as usize, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    break;
                                }
                            } else if self.label[w] == 0 {
                                debug_assert_eq!(self.label[self.inblossom[w]], 2);
                                self.label[w] = 2;
                                self.labelend[w] = (p ^ 1) as i64;
                            }
                        } else if self.label[self.inblossom[w]] == 1 {
                            let b = self.inblossom[v];
                            if self.bestedge[b] == NONE
                                || kslack < self.slack(self.bestedge[b] as usize)
                            {
                                self.bestedge[b] = k as i64;
                            }
                        } else if self.label[w] == 0
                            && (self.bestedge[w] == NONE
                                || kslack < self.slack(self.bestedge[w] as usize))
                        {
                            self.bestedge[w] = k as i64;
                        }
                    }
                    if augmented {
                        break;
                    }
                }
                if augmented {
                    break;
                }

                // Dual update.
                let mut deltaedge = 0usize;
                let mut deltablossom = 0usize;

                // Type 1: minimum vertex dual (we maximize weight, not card).
                let mut deltatype = 1i32;
                let mut delta = *self.dualvar[..self.nvertex].iter().min().expect("nonempty");

                // Type 2: free vertex with an edge to an S-vertex.
                for v in 0..self.nvertex {
                    if self.label[self.inblossom[v]] == 0 && self.bestedge[v] != NONE {
                        let d = self.slack(self.bestedge[v] as usize);
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = self.bestedge[v] as usize;
                        }
                    }
                }

                // Type 3: S-blossom to S-blossom edge (half slack).
                for b in 0..2 * self.nvertex {
                    if self.blossomparent[b] == NONE
                        && self.label[b] == 1
                        && self.bestedge[b] != NONE
                    {
                        let kslack = self.slack(self.bestedge[b] as usize);
                        debug_assert!(kslack % 2 == 0, "duals must stay integral");
                        let d = kslack / 2;
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = self.bestedge[b] as usize;
                        }
                    }
                }

                // Type 4: expandable T-blossom.
                for b in self.nvertex..2 * self.nvertex {
                    if self.blossombase[b] >= 0
                        && self.blossomparent[b] == NONE
                        && self.label[b] == 2
                        && (deltatype == -1 || self.dualvar[b] < delta)
                    {
                        delta = self.dualvar[b];
                        deltatype = 4;
                        deltablossom = b;
                    }
                }

                if deltatype == -1 {
                    deltatype = 1;
                    delta = self.dualvar[..self.nvertex]
                        .iter()
                        .copied()
                        .min()
                        .unwrap()
                        .max(0);
                }

                // Apply the delta.
                for v in 0..self.nvertex {
                    match self.label[self.inblossom[v]] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in self.nvertex..2 * self.nvertex {
                    if self.blossombase[b] >= 0 && self.blossomparent[b] == NONE {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }

                match deltatype {
                    1 => break, // optimum reached
                    2 => {
                        self.allowedge[deltaedge] = true;
                        let (mut i, j, _) = self.edges[deltaedge];
                        if self.label[self.inblossom[i]] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        self.allowedge[deltaedge] = true;
                        let (i, _, _) = self.edges[deltaedge];
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    4 => self.expand_blossom(deltablossom, false),
                    _ => unreachable!(),
                }
            }

            if !augmented {
                break;
            }

            // End of stage: expand all S-blossoms with zero dual.
            for b in self.nvertex..2 * self.nvertex {
                if self.blossomparent[b] == NONE
                    && self.blossombase[b] >= 0
                    && self.label[b] == 1
                    && self.dualvar[b] == 0
                {
                    self.expand_blossom(b, true);
                }
            }
        }

        // Translate endpoint mates to vertex mates.
        let endpoint = self.endpoint;
        self.mate
            .iter()
            .map(|&m| if m == NONE { NONE } else { endpoint[m as usize] as i64 })
            .collect()
    }
}

/// Maximum-weight matching over abstract integer-weight edges.
///
/// Weights are doubled internally; pass plain weights.
pub fn max_weight_matching(nvertex: usize, edges: &[(usize, usize, i64)]) -> Vec<Option<usize>> {
    let doubled: Vec<(usize, usize, i64)> = edges
        .iter()
        .map(|&(i, j, w)| {
            assert!(i != j && i < nvertex && j < nvertex, "bad edge ({i},{j})");
            (i, j, 2 * w)
        })
        .collect();
    let mate = Blossom::new(nvertex, doubled).solve();
    mate.into_iter()
        .map(|m| if m == NONE { None } else { Some(m as usize) })
        .collect()
}

/// Scale used to convert eq. 9 `f64` weights to integers (2⁴⁰ preserves far
/// more precision than the weights contain).
const SCALE: f64 = (1u64 << 40) as f64;

/// Exact maximum-weight **one-to-one** matching of a problem instance via
/// the blossom algorithm. Ignores edges with a zero-quota endpoint.
///
/// # Panics
/// Panics if any quota exceeds 1.
pub fn optimal_weight_blossom(problem: &Problem) -> BMatching {
    assert!(
        problem.quotas.bmax() <= 1,
        "blossom solver is one-to-one (b = 1) only"
    );
    let g = &problem.graph;
    let mut edges = Vec::with_capacity(g.edge_count());
    let mut ids: Vec<EdgeId> = Vec::with_capacity(g.edge_count());
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if problem.quotas.get(u) == 1 && problem.quotas.get(v) == 1 {
            let w = (problem.weights.get_f64(e) * SCALE).round() as i64;
            edges.push((u.index(), v.index(), w));
            ids.push(e);
        }
    }
    let mate = max_weight_matching(g.node_count(), &edges);
    let mut chosen = Vec::new();
    for (k, &(i, j, _)) in edges.iter().enumerate() {
        if mate[i] == Some(j) && mate[j] == Some(i) {
            chosen.push(ids[k]);
            debug_assert!(i < j || j < i);
        }
    }
    BMatching::from_edges(problem, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{optimal_weight, optimal_weight_b1_dp, DEFAULT_BUDGET};
    use crate::flow::optimal_weight_bipartite;
    use crate::lic::{lic, SelectionPolicy};
    use crate::verify;
    use owp_graph::generators::{complete, random_bipartite, ring};
    use owp_graph::{PreferenceTable, Quotas};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trivial_cases() {
        assert_eq!(max_weight_matching(0, &[]), Vec::<Option<usize>>::new());
        assert_eq!(max_weight_matching(2, &[]), vec![None, None]);
        assert_eq!(
            max_weight_matching(2, &[(0, 1, 5)]),
            vec![Some(1), Some(0)]
        );
        // Negative-weight edge is never taken.
        assert_eq!(max_weight_matching(2, &[(0, 1, -5)]), vec![None, None]);
    }

    #[test]
    fn classic_textbook_instances() {
        // Path with a tempting middle edge: take the two outer edges.
        let m = max_weight_matching(4, &[(0, 1, 5), (1, 2, 6), (2, 3, 5)]);
        assert_eq!(m, vec![Some(1), Some(0), Some(3), Some(2)]);

        // Triangle plus pendant (forces blossom machinery): classic
        // van Rantwijk test: create S-blossom and use it for augmentation.
        let m = max_weight_matching(4, &[(0, 1, 8), (0, 2, 9), (1, 2, 10), (2, 3, 7)]);
        assert_eq!(m, vec![Some(1), Some(0), Some(3), Some(2)]);

        // Maximum cardinality not required: only positive gain edges used.
        let m = max_weight_matching(4, &[(0, 1, 2), (1, 2, 0), (2, 3, 2)]);
        assert_eq!(m[0], Some(1));
        assert_eq!(m[2], Some(3));
    }

    #[test]
    fn nested_blossom_instance() {
        // van Rantwijk's nested S-blossom test:
        // create nested S-blossom, use for augmentation.
        let edges = [
            (0, 1, 9),
            (0, 2, 9),
            (1, 2, 10),
            (1, 3, 5),
            (3, 4, 4),
            (0, 5, 3),
            (4, 5, 3),
        ];
        let m = max_weight_matching(6, &edges);
        assert_eq!(m, vec![Some(2), Some(3), Some(0), Some(1), Some(5), Some(4)]);
    }

    /// Checks `mate` is a consistent matching and returns its total weight.
    fn weight_of(edges: &[(usize, usize, i64)], mate: &[Option<usize>]) -> i64 {
        for (v, &m) in mate.iter().enumerate() {
            if let Some(u) = m {
                assert_eq!(mate[u], Some(v), "mate array must be symmetric");
            }
        }
        edges
            .iter()
            .filter(|&&(i, j, _)| mate[i] == Some(j))
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Brute-force optimum via the bitmask DP (independent of Problem).
    fn dp_opt(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
        let full = 1usize << n;
        let mut dp = vec![0i64; full];
        for mask in 1..full {
            let i = mask.trailing_zeros() as usize;
            let rest = mask & !(1 << i);
            let mut best = dp[rest];
            for &(a, b, w) in edges {
                let j = if a == i { b } else if b == i { a } else { continue };
                if rest & (1 << j) != 0 {
                    best = best.max(w + dp[rest & !(1 << j)]);
                }
            }
            dp[mask] = best;
        }
        dp[full - 1]
    }

    #[test]
    fn blossom_expansion_instances() {
        // "Nasty" instances that force blossom creation, T-relabelling and
        // expansion during a stage (weights chosen so the pentagon
        // 0-1-2-3-4 shrinks and must be reopened to reach the pendants).
        let nasty1: [(usize, usize, i64); 10] = [
            (0, 1, 45),
            (0, 4, 45),
            (1, 2, 50),
            (2, 3, 45),
            (3, 4, 50),
            (0, 5, 30),
            (2, 8, 35),
            (4, 7, 35),
            (5, 6, 26),
            (7, 8, 5),
        ];
        let m = max_weight_matching(9, &nasty1);
        assert_eq!(weight_of(&nasty1, &m), dp_opt(9, &nasty1));

        let nasty2: [(usize, usize, i64); 10] = [
            (0, 1, 45),
            (0, 4, 45),
            (1, 2, 50),
            (2, 3, 45),
            (3, 4, 50),
            (0, 5, 30),
            (2, 8, 35),
            (4, 7, 26),
            (5, 6, 40),
            (7, 8, 30),
        ];
        let m = max_weight_matching(9, &nasty2);
        assert_eq!(weight_of(&nasty2, &m), dp_opt(9, &nasty2));

        // Expand-then-augment through a relabeled T-blossom.
        let nasty3: [(usize, usize, i64); 10] = [
            (0, 1, 45),
            (0, 4, 45),
            (1, 2, 50),
            (2, 3, 45),
            (3, 4, 50),
            (0, 5, 30),
            (2, 8, 35),
            (4, 7, 28),
            (5, 6, 26),
            (7, 8, 26),
        ];
        let m = max_weight_matching(9, &nasty3);
        assert_eq!(weight_of(&nasty3, &m), dp_opt(9, &nasty3));
    }

    #[test]
    fn agrees_with_dp_oracle_on_random_graphs() {
        for seed in 0..40 {
            let p = Problem::random_gnp(14, 0.4, 1, 5000 + seed);
            let m = optimal_weight_blossom(&p);
            verify::check_valid(&p, &m).expect("valid");
            let dp = optimal_weight_b1_dp(&p);
            let got = m.total_weight(&p);
            assert!(
                (got - dp).abs() < 1e-6,
                "seed {seed}: blossom {got} vs DP {dp}"
            );
        }
    }

    #[test]
    fn agrees_with_bnb_on_denser_graphs() {
        for seed in 0..15 {
            let p = Problem::random_gnp(12, 0.7, 1, 6000 + seed);
            let m = optimal_weight_blossom(&p);
            let bnb = optimal_weight(&p, DEFAULT_BUDGET);
            assert!(bnb.proven_optimal);
            assert!(
                (m.total_weight(&p) - bnb.value).abs() < 1e-6,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_with_flow_on_bipartite() {
        for seed in 0..15 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_bipartite(9, 9, 0.4, &mut rng);
            let p = Problem::random_over(g, 1, seed);
            let m = optimal_weight_blossom(&p);
            let f = optimal_weight_bipartite(&p).expect("bipartite");
            assert!(
                (m.total_weight(&p) - f.total_weight(&p)).abs() < 1e-6,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn odd_cycles_need_blossoms_and_work() {
        // Rings of odd length exercise blossom shrinking heavily.
        for n in [5usize, 7, 9, 11] {
            let p = Problem::random_over(ring(n), 1, n as u64);
            let m = optimal_weight_blossom(&p);
            verify::check_valid(&p, &m).expect("valid");
            assert_eq!(m.size(), n / 2, "odd ring matches ⌊n/2⌋ edges");
            let dp = optimal_weight_b1_dp(&p);
            assert!((m.total_weight(&p) - dp).abs() < 1e-6);
        }
    }

    #[test]
    fn scales_beyond_the_dp_oracle() {
        // n = 60 is far beyond bitmask DP; validate against the ½-approx
        // bound from below and maximality from above.
        let p = Problem::random_gnp(60, 0.15, 1, 31);
        let m = optimal_weight_blossom(&p);
        verify::check_valid(&p, &m).expect("valid");
        let greedy = lic(&p, SelectionPolicy::InOrder);
        let (gw, ow) = (greedy.total_weight(&p), m.total_weight(&p));
        assert!(ow >= gw - 1e-9, "OPT at least greedy");
        assert!(gw >= 0.5 * ow - 1e-9, "Theorem 2 against the blossom OPT");
    }

    #[test]
    fn randomized_stress_against_dp() {
        // Many instances across the density spectrum; every one must match
        // the bitmask-DP optimum exactly.
        let mut rng = StdRng::seed_from_u64(123);
        use rand::Rng;
        for trial in 0..150 {
            let n = rng.gen_range(4..17);
            let p_edge = rng.gen_range(0.15..0.95);
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_range(0.0..1.0) < p_edge {
                        edges.push((i, j, rng.gen_range(1..1000i64)));
                    }
                }
            }
            let m = max_weight_matching(n, &edges);
            let got = weight_of(&edges, &m);
            let want = dp_opt(n, &edges);
            assert_eq!(got, want, "trial {trial}: n={n} edges={edges:?}");
        }
    }

    #[test]
    fn respects_zero_quota_endpoints() {
        let g = complete(6);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![1, 1, 1, 1, 0, 0]);
        let p = Problem::new(g, prefs, quotas);
        let m = optimal_weight_blossom(&p);
        assert_eq!(m.degree(owp_graph::NodeId(4)), 0);
        assert_eq!(m.degree(owp_graph::NodeId(5)), 0);
        verify::check_valid(&p, &m).expect("valid");
    }
}
