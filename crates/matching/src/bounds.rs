//! Theoretical bounds of the paper, and instances that make them tight.

use crate::problem::Problem;
use owp_graph::{GraphBuilder, NodeId, PreferenceTable, Quotas};

/// Lemma 1 / Theorem 1 bound: the modified (static-only) objective is a
/// `½ (1 + 1/b_max)`-approximation of true satisfaction maximization.
pub fn modified_bound(bmax: u32) -> f64 {
    assert!(bmax >= 1, "bound defined for b_max ≥ 1");
    0.5 * (1.0 + 1.0 / bmax as f64)
}

/// Theorem 3 bound: LID/LIC achieve at least `¼ (1 + 1/b_max)` of the
/// optimal total satisfaction.
pub fn overall_bound(bmax: u32) -> f64 {
    0.5 * modified_bound(bmax)
}

/// Theorem 2 bound: LIC/LID reach at least half of the optimal many-to-many
/// matching weight.
pub const WEIGHT_BOUND: f64 = 0.5;

/// Builds the Lemma-1 stress instance for quota `b` and list length `l`
/// (`l > b ≥ 1`): a "centre" node whose `l` neighbours are ranked
/// `v_0 ≻ v_1 ≻ …`, where each of the top `l − b` neighbours also has a
/// private "stealer" partner it mutually top-ranks.
///
/// The eq. 9 weights make every (leaf, stealer) edge heavier than every
/// (centre, leaf) edge, so the weighted matching hands the centre exactly
/// its `b` *bottom-ranked* neighbours — the worst case for the dynamic
/// satisfaction term that Lemma 1's `½(1 + 1/b)` ratio is computed from.
///
/// Node ids: centre = 0, leaves = `1..=l`, stealers = `l+1..=l+(l−b)`
/// (stealer `l+k` pairs with leaf `k`).
pub fn lemma1_tight_instance(b: u32, l: u32) -> Problem {
    assert!(b >= 1 && l > b, "need l > b ≥ 1 (got b={b}, l={l})");
    let stealers = l - b;
    let n = 1 + l + stealers;
    let mut builder = GraphBuilder::new(n as usize);
    for k in 1..=l {
        builder.add_edge(NodeId(0), NodeId(k));
    }
    for k in 1..=stealers {
        builder.add_edge(NodeId(k), NodeId(l + k));
    }
    let g = builder.build();

    let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); n as usize];
    // Centre ranks leaves by id: leaf k has rank k − 1.
    lists[0] = (1..=l).map(NodeId).collect();
    for k in 1..=l {
        if k <= stealers {
            // Top leaves prefer their stealer over the centre.
            lists[k as usize] = vec![NodeId(l + k), NodeId(0)];
        } else {
            lists[k as usize] = vec![NodeId(0)];
        }
    }
    for k in 1..=stealers {
        lists[(l + k) as usize] = vec![NodeId(k)];
    }
    let prefs = PreferenceTable::from_lists(&g, lists).expect("valid lists");

    let mut quotas = vec![1u32; n as usize];
    quotas[0] = b;
    let quotas = Quotas::from_vec(&g, quotas);
    Problem::new(g, prefs, quotas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lic::{lic, SelectionPolicy};
    use crate::satisfaction::node_satisfaction;

    #[test]
    fn bound_values() {
        assert!((modified_bound(1) - 1.0).abs() < 1e-12);
        assert!((modified_bound(2) - 0.75).abs() < 1e-12);
        assert!((overall_bound(1) - 0.5).abs() < 1e-12);
        assert!((overall_bound(4) - 0.3125).abs() < 1e-12);
        // Monotone decreasing towards ½ and ¼.
        assert!(modified_bound(100) > 0.5 && modified_bound(100) < modified_bound(2));
    }

    #[test]
    #[should_panic(expected = "b_max ≥ 1")]
    fn bound_rejects_zero() {
        modified_bound(0);
    }

    #[test]
    fn tight_instance_centre_gets_bottom_neighbours() {
        for (b, l) in [(2u32, 5u32), (3, 7), (1, 4)] {
            let p = lemma1_tight_instance(b, l);
            let m = lic(&p, SelectionPolicy::InOrder);
            // Centre is saturated with exactly the b bottom-ranked leaves.
            let centre = NodeId(0);
            assert_eq!(m.degree(centre), b as usize, "b={b} l={l}");
            for &j in m.connections(centre) {
                let r = p.prefs.rank(centre, j).unwrap();
                assert!(
                    r >= l - b,
                    "b={b} l={l}: centre matched rank {r}, expected bottom {b}"
                );
            }
            // Every stealer got its leaf.
            for k in 1..=(l - b) {
                assert_eq!(m.degree(NodeId(l + k)), 1);
            }
        }
    }

    #[test]
    fn tight_instance_realizes_lemma1_ratio() {
        // On the gadget, the centre's achieved static share of its own
        // satisfaction is exactly ½(1 + 1/b) when c = b bottom slots.
        let (b, l) = (3u32, 9u32);
        let p = lemma1_tight_instance(b, l);
        let m = lic(&p, SelectionPolicy::InOrder);
        let centre = NodeId(0);
        let (s, d) =
            crate::satisfaction::static_dynamic_split(&p.prefs, &p.quotas, centre, m.connections(centre));
        let ratio = s / (s + d);
        assert!(
            (ratio - modified_bound(b)).abs() < 1e-12,
            "ratio {ratio} vs bound {}",
            modified_bound(b)
        );
        // And the centre's true satisfaction is the worst-case value.
        let sat = node_satisfaction(&p.prefs, &p.quotas, centre, m.connections(centre));
        assert!(sat < 1.0);
    }
}
