//! The result type of every matching algorithm: a b-matching.

use crate::problem::Problem;
use crate::satisfaction::{total_satisfaction, total_satisfaction_modified};
use owp_graph::{EdgeId, Graph, NodeId};

/// A many-to-many matching: a subset of edges such that every node `i` is
/// covered at most `b_i` times. Construction validates the quota invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BMatching {
    selected: Vec<bool>,
    connections: Vec<Vec<NodeId>>,
    size: usize,
}

impl BMatching {
    /// The empty matching over `g`.
    pub fn empty(g: &Graph) -> Self {
        BMatching {
            selected: vec![false; g.edge_count()],
            connections: vec![Vec::new(); g.node_count()],
            size: 0,
        }
    }

    /// Builds a matching from selected edge ids, checking quota feasibility
    /// against `problem`.
    ///
    /// # Panics
    /// Panics if an edge is duplicated or some quota is exceeded.
    pub fn from_edges<I: IntoIterator<Item = EdgeId>>(problem: &Problem, edges: I) -> Self {
        let mut m = BMatching::empty(&problem.graph);
        for e in edges {
            m.insert(problem, e);
        }
        m
    }

    /// Adds edge `e`, enforcing quotas.
    pub fn insert(&mut self, problem: &Problem, e: EdgeId) {
        assert!(!self.selected[e.index()], "edge {e:?} selected twice");
        let (u, v) = problem.graph.endpoints(e);
        for x in [u, v] {
            assert!(
                self.connections[x.index()].len() < problem.quotas.get(x) as usize,
                "quota of {x:?} exceeded"
            );
        }
        self.selected[e.index()] = true;
        self.connections[u.index()].push(v);
        self.connections[v.index()].push(u);
        self.size += 1;
    }

    /// Adds edge `e` **without** a quota check — for the dynamic engine's
    /// incremental repair, where selections are revised in global rank order
    /// and a node may transiently hold more connections than its (just
    /// lowered) quota until the repair frontier reaches its lighter edges.
    /// The engine re-establishes the quota invariant before a batch returns;
    /// duplicate insertion still panics.
    pub fn insert_unchecked(&mut self, g: &Graph, e: EdgeId) {
        assert!(!self.selected[e.index()], "edge {e:?} selected twice");
        let (u, v) = g.endpoints(e);
        self.selected[e.index()] = true;
        self.connections[u.index()].push(v);
        self.connections[v.index()].push(u);
        self.size += 1;
    }

    /// Removes edge `e` (used by the churn / dynamics code).
    pub fn remove(&mut self, g: &Graph, e: EdgeId) {
        assert!(self.selected[e.index()], "edge {e:?} not selected");
        let (u, v) = g.endpoints(e);
        self.selected[e.index()] = false;
        self.connections[u.index()].retain(|&x| x != v);
        self.connections[v.index()].retain(|&x| x != u);
        self.size -= 1;
    }

    /// `true` iff edge `e` is in the matching.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        self.selected[e.index()]
    }

    /// Matched neighbours of node `i` (the connection list `C_i`, unordered).
    #[inline]
    pub fn connections(&self, i: NodeId) -> &[NodeId] {
        &self.connections[i.index()]
    }

    /// All per-node connection lists, indexed by node id.
    pub fn connection_lists(&self) -> &[Vec<NodeId>] {
        &self.connections
    }

    /// Number of matched connections of node `i` (`c_i`).
    #[inline]
    pub fn degree(&self, i: NodeId) -> usize {
        self.connections[i.index()].len()
    }

    /// Number of selected edges.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The selected edge ids, ascending.
    pub fn edge_ids(&self) -> Vec<EdgeId> {
        self.selected
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| EdgeId(i as u32))
            .collect()
    }

    /// Total weight under the problem's eq. 9 weights, as `f64`.
    pub fn total_weight(&self, problem: &Problem) -> f64 {
        self.edge_ids()
            .into_iter()
            .map(|e| problem.weights.get_f64(e))
            .sum()
    }

    /// Total *true* satisfaction (eq. 1) this matching yields.
    pub fn total_satisfaction(&self, problem: &Problem) -> f64 {
        total_satisfaction(&problem.prefs, &problem.quotas, &self.connections)
    }

    /// Total *modified* satisfaction (eq. 6).
    pub fn total_satisfaction_modified(&self, problem: &Problem) -> f64 {
        total_satisfaction_modified(&problem.prefs, &problem.quotas, &self.connections)
    }

    /// `true` iff the two matchings select exactly the same edge set.
    pub fn same_edges(&self, other: &BMatching) -> bool {
        self.selected == other.selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::complete;

    fn problem() -> Problem {
        Problem::random_over(complete(6), 2, 3)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let p = problem();
        let e = EdgeId(0);
        let mut m = BMatching::empty(&p.graph);
        m.insert(&p, e);
        assert!(m.contains(e));
        assert_eq!(m.size(), 1);
        let (u, v) = p.graph.endpoints(e);
        assert_eq!(m.connections(u), &[v]);
        assert_eq!(m.degree(v), 1);
        m.remove(&p.graph, e);
        assert!(!m.contains(e));
        assert_eq!(m.size(), 0);
        assert!(m.connections(u).is_empty());
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn rejects_duplicate_edge() {
        let p = problem();
        BMatching::from_edges(&p, [EdgeId(0), EdgeId(0)]);
    }

    #[test]
    #[should_panic(expected = "quota")]
    fn rejects_quota_violation() {
        let g = complete(4);
        let p = Problem::random_over(g, 1, 1);
        // Node 0 is an endpoint of edges (0,1), (0,2): with b=1 the second
        // insert must panic.
        let e01 = p.graph.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e02 = p.graph.edge_between(NodeId(0), NodeId(2)).unwrap();
        BMatching::from_edges(&p, [e01, e02]);
    }

    #[test]
    fn insert_unchecked_bypasses_quotas_but_not_duplicates() {
        let g = complete(4);
        let p = Problem::random_over(g, 1, 1);
        let e01 = p.graph.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e02 = p.graph.edge_between(NodeId(0), NodeId(2)).unwrap();
        let mut m = BMatching::empty(&p.graph);
        m.insert_unchecked(&p.graph, e01);
        // Second incident edge would violate node 0's quota of 1; the
        // unchecked path admits it (the engine's transient state).
        m.insert_unchecked(&p.graph, e02);
        assert_eq!(m.degree(NodeId(0)), 2);
        assert_eq!(m.size(), 2);
        m.remove(&p.graph, e02);
        assert_eq!(m.degree(NodeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn insert_unchecked_rejects_duplicates() {
        let p = problem();
        let mut m = BMatching::empty(&p.graph);
        m.insert_unchecked(&p.graph, EdgeId(0));
        m.insert_unchecked(&p.graph, EdgeId(0));
    }

    #[test]
    fn weight_and_satisfaction_accumulate() {
        let p = problem();
        let mut m = BMatching::empty(&p.graph);
        assert_eq!(m.total_weight(&p), 0.0);
        assert_eq!(m.total_satisfaction(&p), 0.0);
        m.insert(&p, EdgeId(0));
        assert!(m.total_weight(&p) > 0.0);
        assert!(m.total_satisfaction(&p) > 0.0);
        assert!(m.total_satisfaction_modified(&p) > 0.0);
    }

    #[test]
    fn same_edges_compares_sets() {
        let p = problem();
        let m1 = BMatching::from_edges(&p, [EdgeId(0)]);
        let m2 = BMatching::from_edges(&p, [EdgeId(0)]);
        let m3 = BMatching::empty(&p.graph);
        assert!(m1.same_edges(&m2));
        assert!(!m1.same_edges(&m3));
    }
}
