//! [`EdgeOrder`] — the integer edge-rank kernel.
//!
//! Every algorithm in this crate only ever needs the *relative order* of
//! edges under the strict [`EdgeKey`] total order (exact rational weight,
//! identity tie-break), never the weights themselves. This module pays the
//! exact arithmetic exactly once: all edges are sorted by `EdgeKey`
//! (decorate–sort–undecorate, so each key is materialized once) and the
//! result is flattened into a dense `u32` rank per [`EdgeId`] with
//!
//! ```text
//! rank(a) < rank(b)  ⇔  key(a) > key(b)
//! ```
//!
//! i.e. rank 0 is the globally heaviest edge. After this single setup pass,
//! LIC's worklist, LID's per-node candidate lists and every "is `a` heavier
//! than `b`?" question run on plain integer compares — no `Rational`
//! arithmetic appears on any hot path (see `DESIGN.md` §3).
//!
//! With the `parallel` feature the decorate–sort step uses rayon's parallel
//! sort; ranks are a pure function of the weights either way, so the feature
//! cannot change results.

use crate::weights::{EdgeKey, EdgeWeights};
use owp_graph::{EdgeId, Graph};

/// The rank of an edge in the global heaviest-first order; `0` = heaviest.
pub type EdgeRank = u32;

/// Dense integer ranks realizing the [`EdgeKey`] total order.
///
/// Immutable once computed; cloneable (two flat `u32` arrays).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeOrder {
    /// `rank[e] = r` ⇔ edge `e` is the `r`-th heaviest.
    rank: Vec<EdgeRank>,
    /// Inverse permutation: `by_rank[r]` is the `r`-th heaviest edge.
    by_rank: Vec<EdgeId>,
}

impl EdgeOrder {
    /// Sorts all edges of `g` by [`EdgeKey`] descending and assigns dense
    /// ranks. O(m log m) exact-key comparisons — the only place outside
    /// weight construction where `Rational`s are compared.
    pub fn compute(g: &Graph, weights: &EdgeWeights) -> Self {
        let mut decorated: Vec<(EdgeKey, EdgeId)> =
            g.edges().map(|e| (weights.key(g, e), e)).collect();

        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            decorated.par_sort_unstable_by_key(|&(key, _)| std::cmp::Reverse(key));
        }
        #[cfg(not(feature = "parallel"))]
        decorated.sort_unstable_by_key(|&(key, _)| std::cmp::Reverse(key));

        let by_rank: Vec<EdgeId> = decorated.into_iter().map(|(_, e)| e).collect();
        let mut rank = vec![0 as EdgeRank; by_rank.len()];
        for (r, &e) in by_rank.iter().enumerate() {
            rank[e.index()] = r as EdgeRank;
        }
        EdgeOrder { rank, by_rank }
    }

    /// Incrementally re-ranks after the weights of `changed` edges were
    /// mutated (everything else unchanged). Produces exactly the ranks
    /// [`EdgeOrder::compute`] would from scratch, but pays exact-key work
    /// proportional to the *change*, not the instance:
    ///
    /// * `O(|changed| log |changed|)` key comparisons to sort the moved
    ///   edges by their new keys;
    /// * `O(|changed| log m)` key comparisons to binary-search each moved
    ///   edge's insertion point among the unmoved (still-sorted) edges;
    /// * one `O(m)` **integer** pass to splice the two sorted sequences and
    ///   rebuild the dense rank array.
    ///
    /// No `Rational` comparison touches the `m − |changed|` unmoved edges
    /// beyond the binary-search probes. This is what keeps the dynamic
    /// engine's `PreferenceUpdate`/`QuotaChange` path off the full
    /// `O(m log m)` exact re-sort.
    pub fn update_keys(&mut self, g: &Graph, weights: &EdgeWeights, changed: &[EdgeId]) {
        if changed.is_empty() {
            return;
        }
        let mut is_changed = vec![false; self.rank.len()];
        let mut moved: Vec<(EdgeKey, EdgeId)> = Vec::with_capacity(changed.len());
        for &e in changed {
            if !is_changed[e.index()] {
                is_changed[e.index()] = true;
                moved.push((weights.key(g, e), e));
            }
        }
        // Heaviest first, like `by_rank`.
        moved.sort_unstable_by_key(|&(key, _)| std::cmp::Reverse(key));

        // The unmoved edges keep their relative order.
        let rest: Vec<EdgeId> = self
            .by_rank
            .iter()
            .copied()
            .filter(|e| !is_changed[e.index()])
            .collect();

        // Insertion index of each moved edge among `rest` (first position
        // whose key is lighter). Distinct edges never compare equal
        // (EdgeKey is a strict total order), so `partition_point` is exact.
        let targets: Vec<usize> = moved
            .iter()
            .map(|&(key, _)| rest.partition_point(|&r| weights.key(g, r) > key))
            .collect();

        // Splice: `moved` is sorted by key, so its target indices are
        // non-decreasing and equal targets are already in key order.
        let mut by_rank = Vec::with_capacity(self.by_rank.len());
        let mut mi = 0;
        for (ri, &r) in rest.iter().enumerate() {
            while mi < moved.len() && targets[mi] == ri {
                by_rank.push(moved[mi].1);
                mi += 1;
            }
            by_rank.push(r);
        }
        while mi < moved.len() {
            by_rank.push(moved[mi].1);
            mi += 1;
        }
        for (r, &e) in by_rank.iter().enumerate() {
            self.rank[e.index()] = r as EdgeRank;
        }
        self.by_rank = by_rank;
    }

    /// The rank of edge `e`; `0` is the globally heaviest edge.
    #[inline]
    pub fn rank(&self, e: EdgeId) -> EdgeRank {
        self.rank[e.index()]
    }

    /// The edge holding rank `r`.
    #[inline]
    pub fn edge_at(&self, r: EdgeRank) -> EdgeId {
        self.by_rank[r as usize]
    }

    /// All edges, heaviest first — the rank-order permutation.
    #[inline]
    pub fn heaviest_first(&self) -> &[EdgeId] {
        &self.by_rank
    }

    /// `true` iff `a` beats `b` in the strict total order — a single integer
    /// compare, equivalent to `key(a) > key(b)`.
    #[inline]
    pub fn heavier(&self, a: EdgeId, b: EdgeId) -> bool {
        self.rank[a.index()] < self.rank[b.index()]
    }

    /// Number of ranked edges.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// `true` iff the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::weights::heavier;
    use crate::Problem;

    #[test]
    fn ranks_are_a_permutation() {
        let p = Problem::random_gnp(40, 0.3, 3, 5);
        let o = &p.order;
        assert_eq!(o.len(), p.edge_count());
        let mut seen = vec![false; o.len()];
        for e in p.graph.edges() {
            let r = o.rank(e);
            assert!(!seen[r as usize], "duplicate rank {r}");
            seen[r as usize] = true;
            assert_eq!(o.edge_at(r), e, "by_rank is the inverse of rank");
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn rank_order_matches_key_order() {
        let p = Problem::random_gnp(30, 0.4, 2, 9);
        let g = &p.graph;
        for a in g.edges() {
            for b in g.edges() {
                if a != b {
                    assert_eq!(
                        p.order.heavier(a, b),
                        heavier(&p.weights, g, a, b),
                        "rank and key orders disagree on ({a:?}, {b:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn heaviest_first_is_descending_under_keys() {
        let p = Problem::random_gnp(25, 0.5, 2, 11);
        let g = &p.graph;
        for w in p.order.heaviest_first().windows(2) {
            assert!(heavier(&p.weights, g, w[0], w[1]));
        }
    }

    #[test]
    fn update_keys_matches_recompute_from_scratch() {
        use owp_graph::NodeId;
        // Perturb one node's quota (which shifts the eq. 9 weights of all
        // its incident edges), patch the weights incrementally, and check
        // the spliced order is bit-identical to a fresh compute.
        for seed in 0..20u64 {
            let mut p = Problem::random_gnp(30, 0.3, 3, seed);
            let mut order = p.order.clone();
            let node = NodeId((seed % 30) as u32);
            let new_b = (seed % 4) as u32; // includes b = 0
            p.quotas.set(&p.graph, node, new_b);
            let changed =
                p.weights.recompute_incident(&p.graph, &p.prefs, &p.quotas, node);
            order.update_keys(&p.graph, &p.weights, &changed);
            let fresh = crate::EdgeOrder::compute(&p.graph, &p.weights);
            assert_eq!(order, fresh, "seed {seed}: incremental rank drifted");
        }
    }

    #[test]
    fn update_keys_with_duplicates_and_noops() {
        let p = Problem::random_gnp(20, 0.4, 2, 7);
        let mut order = p.order.clone();
        // Weights untouched: re-ranking any (duplicated) subset is a no-op.
        let some: Vec<_> = p.graph.edges().take(5).chain(p.graph.edges().take(5)).collect();
        order.update_keys(&p.graph, &p.weights, &some);
        assert_eq!(order, p.order);
        order.update_keys(&p.graph, &p.weights, &[]);
        assert_eq!(order, p.order);
    }

    #[test]
    fn empty_graph() {
        let p = Problem::random_gnp(0, 0.0, 1, 1);
        assert!(p.order.is_empty());
        assert_eq!(p.order.len(), 0);
        assert!(p.order.heaviest_first().is_empty());
    }
}
