//! Verification of matchings and of the paper's structural invariants.
//!
//! These checks are used three ways: as test oracles, as debug assertions in
//! the experiment harness, and as the E10 experiment itself (certifying on
//! random instances that LIC/LID outputs satisfy Lemmas 3, 4 and 6).

use crate::bmatching::BMatching;
use crate::problem::Problem;
use crate::weights::weight_matches_eq9;
use owp_graph::{EdgeId, NodeId};

/// Checks basic validity: internal consistency and quota feasibility.
pub fn check_valid(problem: &Problem, m: &BMatching) -> Result<(), String> {
    let g = &problem.graph;
    for i in g.nodes() {
        let c = m.degree(i);
        let b = problem.quotas.get(i) as usize;
        if c > b {
            return Err(format!("{i:?} has {c} connections, quota {b}"));
        }
        for &j in m.connections(i) {
            let Some(e) = g.edge_between(i, j) else {
                return Err(format!("connection ({i:?},{j:?}) is not a graph edge"));
            };
            if !m.contains(e) {
                return Err(format!(
                    "connection list of {i:?} mentions {j:?} but edge {e:?} is unselected"
                ));
            }
        }
    }
    // Edge set and connection lists agree in both directions.
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        let in_lists =
            m.connections(u).contains(&v) && m.connections(v).contains(&u);
        if m.contains(e) != in_lists {
            return Err(format!("edge {e:?} selection disagrees with connection lists"));
        }
    }
    Ok(())
}

/// Checks maximality: no unselected edge has free quota at *both* endpoints.
/// Every greedy/locally-heaviest matching must be maximal; maximality is also
/// the cheap half of the ½-approximation certificate.
pub fn check_maximal(problem: &Problem, m: &BMatching) -> Result<(), String> {
    let g = &problem.graph;
    for e in g.edges() {
        if m.contains(e) {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let u_free = m.degree(u) < problem.quotas.get(u) as usize;
        let v_free = m.degree(v) < problem.quotas.get(v) as usize;
        if u_free && v_free {
            return Err(format!(
                "matching not maximal: edge {e:?} = ({u:?},{v:?}) has free quota at both ends"
            ));
        }
    }
    Ok(())
}

/// Checks the Lemma 4 certificate: for every unselected edge `e`, some
/// endpoint is saturated and *all* of its matched edges are heavier than `e`
/// (under the strict [`crate::weights::EdgeKey`] order).
///
/// This is the structural property from which the ½-approximation (Theorem 2)
/// follows, so certifying it on an output certifies the guarantee.
pub fn check_greedy_certificate(problem: &Problem, m: &BMatching) -> Result<(), String> {
    let g = &problem.graph;
    let w = &problem.weights;

    // Matched edge ids per node.
    let mut matched_at: Vec<Vec<EdgeId>> = vec![Vec::new(); g.node_count()];
    for e in m.edge_ids() {
        let (u, v) = g.endpoints(e);
        matched_at[u.index()].push(e);
        matched_at[v.index()].push(e);
    }

    for e in g.edges() {
        if m.contains(e) {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let key_e = w.key(g, e);
        let witness = [u, v].into_iter().any(|x| {
            m.degree(x) == problem.quotas.get(x) as usize
                && problem.quotas.get(x) > 0
                && matched_at[x.index()]
                    .iter()
                    .all(|&f| w.key(g, f) > key_e)
        });
        if !witness {
            // A quota-0 endpoint also explains an unselected edge.
            if problem.quotas.get(u) == 0 || problem.quotas.get(v) == 0 {
                continue;
            }
            return Err(format!(
                "no Lemma-4 witness for unselected edge {e:?} = ({u:?},{v:?})"
            ));
        }
    }
    Ok(())
}

/// [`check_greedy_certificate`] restricted to an *alive sub-instance* of a
/// universe problem, without materializing the sub-problem: only edges with
/// `alive[e] == true` exist, and `quota[i]` is the caller's effective quota
/// (the universe quota clamped to the alive degree — exactly what
/// projecting the sub-instance and re-clamping would produce).
///
/// Verdicts match running [`check_greedy_certificate`] on the projected
/// sub-problem with inherited universe weights; violation messages carry
/// universe edge ids.
///
/// # Panics
/// Panics if `alive`/`quota` do not cover the universe graph.
pub fn check_greedy_certificate_masked(
    problem: &Problem,
    alive: &[bool],
    quota: &[u32],
    m: &BMatching,
) -> Result<(), String> {
    let g = &problem.graph;
    let w = &problem.weights;
    assert_eq!(alive.len(), g.edge_count(), "alive mask/graph mismatch");
    assert_eq!(quota.len(), g.node_count(), "quota vector/graph mismatch");

    let mut matched_at: Vec<Vec<EdgeId>> = vec![Vec::new(); g.node_count()];
    for e in m.edge_ids() {
        let (u, v) = g.endpoints(e);
        matched_at[u.index()].push(e);
        matched_at[v.index()].push(e);
    }

    for e in g.edges() {
        if !alive[e.index()] || m.contains(e) {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let key_e = w.key(g, e);
        let witness = [u, v].into_iter().any(|x| {
            m.degree(x) == quota[x.index()] as usize
                && quota[x.index()] > 0
                && matched_at[x.index()]
                    .iter()
                    .all(|&f| w.key(g, f) > key_e)
        });
        if !witness {
            // A quota-0 endpoint also explains an unselected edge.
            if quota[u.index()] == 0 || quota[v.index()] == 0 {
                continue;
            }
            return Err(format!(
                "no Lemma-4 witness for unselected alive edge {e:?} = ({u:?},{v:?})"
            ));
        }
    }
    Ok(())
}

/// Replays a claimed LIC selection order and checks that each edge was
/// *locally heaviest* (eq. 3 over the eq. 13 pool) at its selection point —
/// the Lemma 3 property.
pub fn check_selection_order(problem: &Problem, order: &[EdgeId]) -> Result<(), String> {
    let g = &problem.graph;
    let w = &problem.weights;
    let mut removed = vec![false; g.edge_count()];
    let mut counter: Vec<u32> = g.nodes().map(|i| problem.quotas.get(i)).collect();

    // Zero-quota nodes discard their edges before anything happens.
    let saturate = |x: NodeId, removed: &mut Vec<bool>| {
        for &(_, e) in g.neighbors(x) {
            removed[e.index()] = true;
        }
    };
    for i in g.nodes() {
        if counter[i.index()] == 0 {
            saturate(i, &mut removed);
        }
    }

    for (step, &e) in order.iter().enumerate() {
        if removed[e.index()] {
            return Err(format!("step {step}: edge {e:?} was already out of the pool"));
        }
        let (a, b) = g.endpoints(e);
        for x in [a, b] {
            if counter[x.index()] == 0 {
                return Err(format!("step {step}: endpoint {x:?} has no quota left"));
            }
        }
        // Locally heaviest: heavier than every pool edge sharing an endpoint.
        let key_e = w.key(g, e);
        for x in [a, b] {
            for &(_, f) in g.neighbors(x) {
                if f != e && !removed[f.index()] && w.key(g, f) > key_e {
                    return Err(format!(
                        "step {step}: pool edge {f:?} at {x:?} is heavier than selected {e:?}"
                    ));
                }
            }
        }
        // Apply the selection.
        removed[e.index()] = true;
        for x in [a, b] {
            counter[x.index()] -= 1;
            if counter[x.index()] == 0 {
                saturate(x, &mut removed);
            }
        }
    }
    Ok(())
}

/// Checks that the stored weights match eq. 9 for every edge.
pub fn check_weights(problem: &Problem) -> Result<(), String> {
    for e in problem.graph.edges() {
        if !weight_matches_eq9(
            &problem.graph,
            &problem.prefs,
            &problem.quotas,
            &problem.weights,
            e,
        ) {
            return Err(format!("weight of {e:?} does not match eq. 9"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::complete;
    use owp_graph::{PreferenceTable, Quotas};

    fn tiny() -> Problem {
        let g = complete(4);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        Problem::new(g, prefs, quotas)
    }

    #[test]
    fn empty_matching_is_valid_but_not_maximal() {
        let p = tiny();
        let m = BMatching::empty(&p.graph);
        assert!(check_valid(&p, &m).is_ok());
        assert!(check_maximal(&p, &m).is_err());
    }

    #[test]
    fn certificate_fails_for_bad_greedy() {
        // K4, b=1: match the two *lightest* disjoint edges; the heaviest edge
        // is unmatched and neither endpoint's matched edge outweighs it.
        let p = tiny();
        let order = crate::weights::edges_by_weight_desc(&p.graph, &p.weights);
        let heaviest = order[0];
        let (u, v) = p.graph.endpoints(heaviest);
        // The complementary perfect matching pairs u,v with the other two
        // nodes — find the two edges not touching `heaviest` jointly.
        let others: Vec<NodeId> = p.graph.nodes().filter(|&x| x != u && x != v).collect();
        let e1 = p.graph.edge_between(u, others[0]).unwrap();
        let e2 = p.graph.edge_between(v, others[1]).unwrap();
        let m = BMatching::from_edges(&p, [e1, e2]);
        assert!(check_valid(&p, &m).is_ok());
        assert!(check_maximal(&p, &m).is_ok());
        let r = check_greedy_certificate(&p, &m);
        assert!(r.is_err(), "heaviest edge unmatched must break the certificate");
    }

    #[test]
    fn selection_order_rejects_wrong_history() {
        let p = tiny();
        let order = crate::weights::edges_by_weight_desc(&p.graph, &p.weights);
        // Selecting the lightest edge first is never locally heaviest in K4.
        let bad = vec![*order.last().unwrap()];
        assert!(check_selection_order(&p, &bad).is_err());
        // Selecting the globally heaviest first is always fine.
        let good = vec![order[0]];
        assert!(check_selection_order(&p, &good).is_ok());
    }

    #[test]
    fn weights_check_passes() {
        assert!(check_weights(&tiny()).is_ok());
    }
}
