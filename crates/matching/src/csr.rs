//! [`FixedCsr`] — a reusable fixed-capacity CSR arena.
//!
//! The dynamic engine's repair loop keeps, per node, the list of currently
//! selected incident edges (the mirror `heavier_selected` scans). A
//! `Vec<Vec<EdgeId>>` works but costs one heap allocation per node and
//! scatters rows across the allocator; at n=10⁶⁺ the pointer chasing and
//! allocator traffic dominate the repair hot path. `FixedCsr` is the
//! structure-of-arrays replacement: one flat `u32` item array laid out in
//! CSR form, with a *fixed capacity per row* chosen at construction (for a
//! selected-edge mirror, the node's degree — a node can never have more
//! selected incident edges than incident edges).
//!
//! Rows support O(1) push, O(row) unordered remove, and O(1) truncation;
//! no operation allocates after construction, which is what makes the
//! engine's steady-state zero-allocation batch path possible (DESIGN.md
//! §11). Rows are addressed by a dense `usize` index so shard-local node
//! numbering works as well as global numbering.

/// A flat CSR arena: `rows` rows, row `r` holding up to `cap(r)` `u32`
/// items in insertion order. See the module docs for the design intent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedCsr {
    /// `offsets[r]..offsets[r] + lens[r]` indexes `items` for row `r`;
    /// `offsets[r + 1] - offsets[r]` is the row's fixed capacity.
    offsets: Vec<u32>,
    lens: Vec<u32>,
    items: Vec<u32>,
}

impl FixedCsr {
    /// Builds an empty arena with the given per-row capacities.
    ///
    /// # Panics
    /// Panics if the total capacity exceeds `u32::MAX` items.
    pub fn with_capacities<I: IntoIterator<Item = u32>>(caps: I) -> Self {
        let mut offsets = vec![0u32];
        let mut total = 0u64;
        for c in caps {
            total += c as u64;
            offsets.push(u32::try_from(total).expect("FixedCsr capacity exceeds u32"));
        }
        let lens = vec![0u32; offsets.len() - 1];
        let items = vec![0u32; total as usize];
        FixedCsr { offsets, lens, items }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.lens.len()
    }

    /// The fixed capacity of row `r`.
    #[inline]
    pub fn capacity(&self, r: usize) -> usize {
        (self.offsets[r + 1] - self.offsets[r]) as usize
    }

    /// Number of items currently in row `r`.
    #[inline]
    pub fn len(&self, r: usize) -> usize {
        self.lens[r] as usize
    }

    /// `true` iff row `r` is empty.
    #[inline]
    pub fn is_empty(&self, r: usize) -> bool {
        self.lens[r] == 0
    }

    /// The items of row `r`, in insertion order (unordered after removes).
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        let lo = self.offsets[r] as usize;
        &self.items[lo..lo + self.lens[r] as usize]
    }

    /// Appends `v` to row `r`.
    ///
    /// # Panics
    /// Panics if the row is at capacity — for a selected-edge mirror that
    /// means a node holds more selected edges than incident edges, i.e.
    /// corruption, so failing loudly beats silent truncation.
    #[inline]
    pub fn push(&mut self, r: usize, v: u32) {
        let len = self.lens[r];
        let pos = self.offsets[r] + len;
        assert!(pos < self.offsets[r + 1], "FixedCsr row {r} over capacity");
        self.items[pos as usize] = v;
        self.lens[r] = len + 1;
    }

    /// `true` iff row `r` contains `v` (linear scan — rows are at most a
    /// node's degree, and the mirror rows the engine keeps are at most a
    /// quota deep).
    #[inline]
    pub fn contains(&self, r: usize, v: u32) -> bool {
        self.row(r).contains(&v)
    }

    /// Appends `v` to row `r` unless the row already contains it.
    /// Returns `true` iff the item was inserted. Same capacity panic as
    /// [`FixedCsr::push`]; not used on the repair hot path (which relies
    /// on flip discipline, not dedup) — this is for cold-path callers
    /// that aggregate unordered edge sets.
    #[inline]
    pub fn push_unique(&mut self, r: usize, v: u32) -> bool {
        if self.contains(r, v) {
            return false;
        }
        self.push(r, v);
        true
    }

    /// Removes the first occurrence of `v` from row `r` by swapping the
    /// last item into its slot (order not preserved). Returns `true` iff
    /// `v` was present.
    #[inline]
    pub fn remove(&mut self, r: usize, v: u32) -> bool {
        let lo = self.offsets[r] as usize;
        let len = self.lens[r] as usize;
        let row = &mut self.items[lo..lo + len];
        if let Some(pos) = row.iter().position(|&x| x == v) {
            row.swap(pos, len - 1);
            self.lens[r] -= 1;
            true
        } else {
            false
        }
    }

    /// Empties every row (capacities unchanged, no deallocation).
    pub fn clear(&mut self) {
        self.lens.fill(0);
    }

    /// Empties row `r`.
    #[inline]
    pub fn clear_row(&mut self, r: usize) {
        self.lens[r] = 0;
    }

    /// Total items across all rows.
    pub fn total_len(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_remove_roundtrip() {
        let mut c = FixedCsr::with_capacities([2, 0, 3]);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.capacity(0), 2);
        assert_eq!(c.capacity(1), 0);
        c.push(0, 7);
        c.push(0, 9);
        c.push(2, 1);
        assert_eq!(c.row(0), &[7, 9]);
        assert_eq!(c.len(2), 1);
        assert!(c.remove(0, 7));
        assert_eq!(c.row(0), &[9]);
        assert!(!c.remove(0, 7), "second remove finds nothing");
        assert!(c.is_empty(1));
        assert_eq!(c.total_len(), 2);
    }

    #[test]
    fn remove_swaps_last_into_place() {
        let mut c = FixedCsr::with_capacities([4]);
        for v in [1, 2, 3, 4] {
            c.push(0, v);
        }
        assert!(c.remove(0, 2));
        assert_eq!(c.row(0), &[1, 4, 3]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut c = FixedCsr::with_capacities([1, 2]);
        c.push(0, 5);
        c.push(1, 6);
        c.clear();
        assert_eq!(c.total_len(), 0);
        assert_eq!(c.capacity(1), 2);
        c.push(0, 8);
        assert_eq!(c.row(0), &[8]);
        c.clear_row(0);
        assert!(c.is_empty(0));
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn overfull_row_panics() {
        let mut c = FixedCsr::with_capacities([1]);
        c.push(0, 1);
        c.push(0, 2);
    }

    #[test]
    fn empty_arena() {
        let c = FixedCsr::with_capacities(std::iter::empty());
        assert_eq!(c.rows(), 0);
        assert_eq!(c.total_len(), 0);
    }

    #[test]
    fn at_capacity_insert_fills_exactly() {
        let mut c = FixedCsr::with_capacities([3]);
        for v in [10, 20, 30] {
            c.push(0, v);
        }
        assert_eq!(c.len(0), c.capacity(0), "row filled to the brim");
        assert_eq!(c.row(0), &[10, 20, 30]);
        // A full row still supports remove + re-push at capacity.
        assert!(c.remove(0, 20));
        c.push(0, 40);
        assert_eq!(c.len(0), 3);
        assert!(c.contains(0, 40));
    }

    #[test]
    fn duplicate_edges_are_rejected_by_push_unique() {
        let mut c = FixedCsr::with_capacities([2, 2]);
        assert!(c.push_unique(0, 7));
        assert!(!c.push_unique(0, 7), "duplicate rejected");
        assert_eq!(c.len(0), 1, "rejection leaves the row unchanged");
        assert!(c.push_unique(1, 7), "rows are independent");
        assert!(c.push_unique(0, 8));
        assert!(!c.push_unique(0, 8));
        assert_eq!(c.row(0), &[7, 8]);
        // Rejection must not consume capacity: the row is now full, and
        // a duplicate still answers false instead of panicking.
        assert!(!c.push_unique(0, 7));
    }

    #[test]
    fn clear_then_reuse_preserves_layout() {
        let mut c = FixedCsr::with_capacities([2, 1, 3]);
        c.push(0, 1);
        c.push(1, 2);
        c.push(2, 3);
        c.push(2, 4);
        let (rows, caps): (usize, Vec<usize>) =
            (c.rows(), (0..c.rows()).map(|r| c.capacity(r)).collect());
        c.clear();
        assert_eq!(c.rows(), rows);
        assert_eq!((0..c.rows()).map(|r| c.capacity(r)).collect::<Vec<_>>(), caps);
        assert!((0..c.rows()).all(|r| c.is_empty(r)));
        // Full reuse after clear: every row refills to capacity.
        for r in 0..c.rows() {
            for v in 0..c.capacity(r) as u32 {
                c.push(r, 100 + v);
            }
            assert_eq!(c.len(r), c.capacity(r));
        }
        assert_eq!(c.total_len(), 6);
    }
}
