//! Edge weights for the many-to-many weighted-matching reduction (eq. 9).
//!
//! For an edge `e = (i, j)`, `w(i,j) = ΔS̄_i^j + ΔS̄_j^i` — the *static*
//! satisfaction both endpoints would glean from the connection. Weights are
//! symmetric by construction (the property Lemma 5's termination proof
//! needs) and made *unique* by tie-breaking on the canonical endpoint pair
//! (the paper: "ties can be broken using node identities"); [`EdgeKey`]
//! realizes that total order.

use crate::numeric::Rational;
use crate::satisfaction::delta_static;
use owp_graph::{EdgeId, Graph, PreferenceTable, Quotas};

/// Exact per-edge weights, indexed by [`EdgeId`].
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EdgeWeights {
    w: Vec<Rational>,
}

impl EdgeWeights {
    /// Computes eq. 9 for every edge of `g`.
    ///
    /// Edges incident to a node with `b_i = 0` receive that endpoint's
    /// contribution as 0 (such nodes cannot participate in any matching; the
    /// algorithms saturate them away immediately).
    pub fn compute(g: &Graph, prefs: &PreferenceTable, quotas: &Quotas) -> Self {
        let per_edge = |e: EdgeId| {
            let (i, j) = g.endpoints(e);
            delta_static(prefs, quotas, i, j) + delta_static(prefs, quotas, j, i)
        };
        // Pure per-edge map: with the `parallel` feature the edges are
        // computed on a thread pool; the result is identical either way.
        #[cfg(feature = "parallel")]
        let w = {
            use rayon::prelude::*;
            (0..g.edge_count()).into_par_iter().map(|k| per_edge(EdgeId(k as u32))).collect()
        };
        #[cfg(not(feature = "parallel"))]
        let w = g.edges().map(per_edge).collect();
        EdgeWeights { w }
    }

    /// Ablation variant of eq. 9 **without** the quota normalization:
    /// `w'(i,j) = (1 − R_i(j)/L_i) + (1 − R_j(i)/L_j)`.
    ///
    /// With uniform quotas this induces the same edge order as eq. 9 (the
    /// `1/b` factor is a global scale), but with *heterogeneous* quotas it
    /// over-weights high-quota nodes' preferences — experiment E13
    /// quantifies the satisfaction this costs. Zero-quota endpoints still
    /// contribute 0 so the algorithms can exclude them.
    pub fn compute_unnormalized(g: &Graph, prefs: &PreferenceTable, quotas: &Quotas) -> Self {
        let side = |i: owp_graph::NodeId, j: owp_graph::NodeId| -> Rational {
            let l = prefs.list_len(i) as i128;
            if l == 0 || quotas.get(i) == 0 {
                return Rational::ZERO;
            }
            let r = prefs.rank(i, j).expect("neighbour") as i128;
            Rational::new(l - r, l)
        };
        let w = g
            .edges()
            .map(|e| {
                let (i, j) = g.endpoints(e);
                side(i, j) + side(j, i)
            })
            .collect();
        EdgeWeights { w }
    }

    /// Wraps explicit per-edge values (indexed by [`EdgeId`]). Used by the
    /// dynamic engine's snapshot, which *inherits* the maintained universe
    /// weights for the alive sub-instance instead of re-deriving eq. 9 —
    /// certification must compare against exactly the weights the engine
    /// ranks by.
    pub fn from_raw(w: Vec<Rational>) -> Self {
        EdgeWeights { w }
    }

    /// Recomputes eq. 9 for every edge incident to `i` (after `i`'s
    /// preference list or quota changed) and returns the edges touched.
    ///
    /// Both endpoint contributions are re-derived, so the call is also
    /// correct when several incident nodes changed in sequence. The
    /// returned list is exactly `i`'s incident edges — feed it to
    /// [`crate::EdgeOrder::update_keys`] to restore the rank kernel.
    pub fn recompute_incident(
        &mut self,
        g: &Graph,
        prefs: &PreferenceTable,
        quotas: &Quotas,
        i: owp_graph::NodeId,
    ) -> Vec<EdgeId> {
        let mut touched = Vec::with_capacity(g.degree(i));
        for &(j, e) in g.neighbors(i) {
            self.w[e.index()] = delta_static(prefs, quotas, i, j) + delta_static(prefs, quotas, j, i);
            touched.push(e);
        }
        touched
    }

    /// Exact weight of edge `e`.
    #[inline]
    pub fn get(&self, e: EdgeId) -> Rational {
        self.w[e.index()]
    }

    /// Weight of `e` as `f64` (for reporting and the float ablation).
    #[inline]
    pub fn get_f64(&self, e: EdgeId) -> f64 {
        self.w[e.index()].to_f64()
    }

    /// The unique total-order key of edge `e` (weight, then identity
    /// tie-break).
    #[inline]
    pub fn key(&self, g: &Graph, e: EdgeId) -> EdgeKey {
        let (u, v) = g.endpoints(e);
        EdgeKey {
            weight: self.w[e.index()],
            tie: (u.0, v.0),
        }
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` iff there are no edges.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Sum of all weights as `f64`.
    pub fn total_f64(&self) -> f64 {
        self.w.iter().map(|r| r.to_f64()).sum()
    }
}

/// The strict total order on edges: weight first, canonical endpoint pair as
/// the tie-break. Two *distinct* edges never compare equal, which is the
/// uniqueness assumption every lemma in the paper leans on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Exact symmetric weight.
    pub weight: Rational,
    /// Canonical `(min id, max id)` endpoint pair.
    pub tie: (u32, u32),
}

/// Convenience: `true` iff edge `a` beats edge `b` in the strict total order.
pub fn heavier(weights: &EdgeWeights, g: &Graph, a: EdgeId, b: EdgeId) -> bool {
    weights.key(g, a) > weights.key(g, b)
}

/// Returns the edges of `g` sorted heaviest-first under [`EdgeKey`].
pub fn edges_by_weight_desc(g: &Graph, weights: &EdgeWeights) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = g.edges().collect();
    edges.sort_by_key(|&e| std::cmp::Reverse(weights.key(g, e)));
    edges
}

/// Check that for each endpoint the weight is what eq. 9 says; used by
/// property tests and by `verify::check_weights`.
pub fn weight_matches_eq9(
    g: &Graph,
    prefs: &PreferenceTable,
    quotas: &Quotas,
    weights: &EdgeWeights,
    e: EdgeId,
) -> bool {
    let (i, j) = g.endpoints(e);
    let expect = delta_static(prefs, quotas, i, j) + delta_static(prefs, quotas, j, i);
    weights.get(e) == expect
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::{complete, star};
    use owp_graph::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, b: u32, seed: u64) -> (Graph, PreferenceTable, Quotas, EdgeWeights) {
        let g = complete(n);
        let prefs = PreferenceTable::random(&g, &mut StdRng::seed_from_u64(seed));
        let quotas = Quotas::uniform(&g, b);
        let w = EdgeWeights::compute(&g, &prefs, &quotas);
        (g, prefs, quotas, w)
    }

    #[test]
    fn weights_match_eq9_and_are_positive() {
        let (g, prefs, quotas, w) = setup(8, 3, 1);
        for e in g.edges() {
            assert!(weight_matches_eq9(&g, &prefs, &quotas, &w, e));
            assert!(w.get(e).is_positive(), "eq. 9 weights are strictly positive");
            // Each endpoint contributes at most 1/b, so w ≤ 2/b... with b=3:
            assert!(w.get(e) <= Rational::new(2, 3));
        }
    }

    #[test]
    fn keys_are_all_distinct() {
        let (g, _prefs, _quotas, w) = setup(10, 2, 2);
        let mut keys: Vec<EdgeKey> = g.edges().map(|e| w.key(&g, e)).collect();
        keys.sort();
        assert!(keys.windows(2).all(|p| p[0] < p[1]), "strict total order");
    }

    #[test]
    fn symmetric_by_construction() {
        // w(i,j) computed from either side is the same value — trivially true
        // here because the structure stores one value per undirected edge;
        // the meaningful check is that eq. 9's two terms are each positive
        // and the total matches the per-endpoint recomputation.
        let (g, prefs, quotas, w) = setup(6, 2, 3);
        for e in g.edges() {
            let (i, j) = g.endpoints(e);
            let wij = delta_static(&prefs, &quotas, i, j) + delta_static(&prefs, &quotas, j, i);
            let wji = delta_static(&prefs, &quotas, j, i) + delta_static(&prefs, &quotas, i, j);
            assert_eq!(wij, wji);
            assert_eq!(w.get(e), wij);
        }
    }

    #[test]
    fn zero_quota_contributes_zero() {
        let g = star(4);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![0, 1, 1, 1]);
        let w = EdgeWeights::compute(&g, &prefs, &quotas);
        for e in g.edges() {
            // Hub has b=0 → only the leaf side contributes; leaf: L=1, R=0,
            // b=1 → ΔS̄ = 1.
            assert_eq!(w.get(e), Rational::ONE);
        }
    }

    #[test]
    fn desc_sort_and_heavier_agree() {
        let (g, _p, _q, w) = setup(9, 3, 4);
        let sorted = edges_by_weight_desc(&g, &w);
        assert_eq!(sorted.len(), g.edge_count());
        for pair in sorted.windows(2) {
            assert!(heavier(&w, &g, pair[0], pair[1]));
        }
    }

    #[test]
    fn recompute_incident_matches_full_recompute() {
        let (g, prefs, mut quotas, mut w) = setup(9, 3, 5);
        let i = NodeId(4);
        quotas.set(&g, i, 1);
        let touched = w.recompute_incident(&g, &prefs, &quotas, i);
        assert_eq!(touched.len(), g.degree(i));
        let fresh = EdgeWeights::compute(&g, &prefs, &quotas);
        for e in g.edges() {
            assert_eq!(w.get(e), fresh.get(e), "edge {e:?} stale after patch");
        }
    }

    #[test]
    fn rank_zero_neighbour_gives_max_contribution() {
        // A node's top choice contributes exactly 1/b from that side.
        let g = star(5);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 2);
        let w = EdgeWeights::compute(&g, &prefs, &quotas);
        // Edge (0,1): hub rank of 1 is 0 → hub side = (4−0)/(2·4) = 1/2;
        // leaf side: L=1, R=0, b=1 → 1. Total 3/2.
        let e = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(w.get(e), Rational::new(3, 2));
    }
}
