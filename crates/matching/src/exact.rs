//! Exact optimal solvers (branch & bound) — the "OPT" the approximation
//! ratios are measured against.
//!
//! The paper uses OPT only analytically; to *measure* how far LIC/LID
//! actually sit from optimal (experiments E2, E3, E7) we need the true
//! optimum on small instances. Two objectives are supported:
//!
//! * [`optimal_weight`] — maximum-weight many-to-many matching (Theorem 2's
//!   reference point);
//! * [`optimal_satisfaction`] — maximum *true* total satisfaction (eq. 1,
//!   Theorem 3's reference point). Satisfaction is not edge-separable (the
//!   dynamic term depends on connection counts), but the total per node
//!   depends only on the rank *set*, so an order-independent incremental
//!   gain exists: adding a connection to a node holding `c` of them gains
//!   `1/b + (c − R)/(bL)`.
//!
//! Both searches branch on edges in descending weight order, seed the
//! incumbent with the greedy solution, and prune with a per-node capacity
//! bound. The search is exact for the `f64` objective; weights differing by
//! less than ~1e-12 are beyond its resolution (see `DESIGN.md`).

use crate::baselines::global_greedy;
use crate::bmatching::BMatching;
use crate::problem::Problem;
use crate::weights::edges_by_weight_desc;
use owp_graph::{EdgeId, NodeId};

/// Result of an exact search.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// The best matching found.
    pub matching: BMatching,
    /// Objective value of `matching`.
    pub value: f64,
    /// Search nodes expanded.
    pub nodes_expanded: u64,
    /// `true` iff the search completed within budget (result proven optimal).
    pub proven_optimal: bool,
}

/// Default expansion budget (search nodes) before giving up on optimality.
pub const DEFAULT_BUDGET: u64 = 50_000_000;

struct Search<'p> {
    problem: &'p Problem,
    /// Edges in descending weight order.
    order: Vec<EdgeId>,
    /// `true` = maximize eq. 1 satisfaction, `false` = maximize eq. 9 weight.
    satisfaction_mode: bool,
    /// Per node: positions `k` into `order` of its incident edges, ascending.
    node_positions: Vec<Vec<u32>>,
    budget: u64,
    nodes_expanded: u64,
    best_value: f64,
    best_edges: Vec<EdgeId>,
    cur_edges: Vec<EdgeId>,
}

impl<'p> Search<'p> {
    fn new(problem: &'p Problem, satisfaction_mode: bool) -> Self {
        let g = &problem.graph;
        let order = edges_by_weight_desc(g, &problem.weights);
        let mut node_positions: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
        for (k, &e) in order.iter().enumerate() {
            let (u, v) = g.endpoints(e);
            node_positions[u.index()].push(k as u32);
            node_positions[v.index()].push(k as u32);
        }
        Search {
            problem,
            order,
            satisfaction_mode,
            node_positions,
            budget: DEFAULT_BUDGET,
            nodes_expanded: 0,
            best_value: f64::NEG_INFINITY,
            best_edges: Vec::new(),
            cur_edges: Vec::new(),
        }
    }

    /// Per-endpoint gain of matching edge `e` at node `x` currently holding
    /// `c` connections.
    fn endpoint_gain(&self, e: EdgeId, x: NodeId, c: u32) -> f64 {
        let b = self.problem.quotas.get(x) as f64;
        if b == 0.0 {
            return 0.0;
        }
        let l = self.problem.prefs.list_len(x) as f64;
        let y = self.problem.graph.other_endpoint(e, x);
        let r = self.problem.prefs.rank(x, y).expect("neighbour") as f64;
        if self.satisfaction_mode {
            1.0 / b + (c as f64 - r) / (b * l)
        } else {
            // Static part = eq. 5 (the weight objective splits per endpoint).
            (1.0 - r / l) / b
        }
    }

    /// Admissible upper bound on the objective gain obtainable from edges at
    /// positions ≥ `k` given remaining quotas. Per-node relaxation: each
    /// node `i` can still collect at most `q_i` connections; its best case is
    ///
    /// * weight mode — the `q_i` largest remaining static gains;
    /// * satisfaction mode — the `q_i` *smallest remaining ranks* placed at
    ///   the highest possible positions `c_i, c_i+1, …` (the per-connection
    ///   gain is `1/b + (pos − R)/(bL)`, so positions are maximized and
    ///   ranks minimized independently — a valid over-count).
    ///
    /// Summing the per-node caps over-counts any feasible completion because
    /// every edge needs both endpoints simultaneously.
    fn bound_from(&self, k: usize, quota: &[u32], conn: &[u32]) -> f64 {
        let g = &self.problem.graph;
        let mut total = 0.0;
        let mut scratch: Vec<f64> = Vec::new();
        for i in g.nodes() {
            let q = quota[i.index()] as usize;
            if q == 0 {
                continue;
            }
            let b = self.problem.quotas.get(i) as f64;
            let l = self.problem.prefs.list_len(i) as f64;
            scratch.clear();
            for &pos in &self.node_positions[i.index()] {
                if (pos as usize) < k {
                    continue;
                }
                let e = self.order[pos as usize];
                let other = g.other_endpoint(e, i);
                if quota[other.index()] == 0 {
                    continue; // edge can never be taken
                }
                if self.satisfaction_mode {
                    // Collect candidate ranks (to be minimized).
                    scratch.push(self.problem.prefs.rank(i, other).expect("neighbour") as f64);
                } else {
                    scratch.push(self.endpoint_gain(e, i, 0));
                }
            }
            if scratch.is_empty() {
                continue;
            }
            let t = q.min(scratch.len());
            if self.satisfaction_mode {
                // t smallest ranks, positions c, c+1, …, c+t−1.
                scratch.sort_by(|a, b| a.partial_cmp(b).expect("no NaN ranks"));
                let rank_sum: f64 = scratch[..t].iter().sum();
                let c = conn[i.index()] as f64;
                let pos_sum = t as f64 * c + (t * (t - 1)) as f64 / 2.0;
                total += t as f64 / b + (pos_sum - rank_sum) / (b * l);
            } else {
                // t largest static gains.
                scratch.sort_by(|a, b| b.partial_cmp(a).expect("no NaN gains"));
                total += scratch[..t].iter().sum::<f64>();
            }
        }
        total
    }

    fn dfs(&mut self, k: usize, quota: &mut Vec<u32>, acc: f64, conn: &mut Vec<u32>) {
        self.nodes_expanded += 1;
        if self.nodes_expanded > self.budget {
            return;
        }
        if acc > self.best_value {
            self.best_value = acc;
            self.best_edges = self.cur_edges.clone();
        }
        if k == self.order.len() {
            return;
        }
        // Prune: even the optimistic completion cannot beat the incumbent.
        if acc + self.bound_from(k, quota, conn) <= self.best_value + 1e-12 {
            return;
        }

        let e = self.order[k];
        let (u, v) = self.problem.graph.endpoints(e);

        // Branch 1: include e (if feasible) — explored first so good
        // incumbents appear early.
        if quota[u.index()] > 0 && quota[v.index()] > 0 {
            let gain = self.endpoint_gain(e, u, conn[u.index()])
                + self.endpoint_gain(e, v, conn[v.index()]);
            quota[u.index()] -= 1;
            quota[v.index()] -= 1;
            conn[u.index()] += 1;
            conn[v.index()] += 1;
            self.cur_edges.push(e);
            self.dfs(k + 1, quota, acc + gain, conn);
            self.cur_edges.pop();
            conn[u.index()] -= 1;
            conn[v.index()] -= 1;
            quota[u.index()] += 1;
            quota[v.index()] += 1;
        }

        // Branch 2: exclude e.
        self.dfs(k + 1, quota, acc, conn);
    }

    fn run(mut self, budget: u64) -> ExactResult {
        self.budget = budget;
        // Seed incumbent with greedy (always feasible, usually very good).
        let greedy = global_greedy(self.problem);
        let greedy_value = if self.satisfaction_mode {
            greedy.total_satisfaction_adjusted(self.problem)
        } else {
            greedy.total_weight(self.problem)
        };
        self.best_value = greedy_value;
        self.best_edges = greedy.edge_ids();

        let n = self.problem.graph.node_count();
        let mut quota: Vec<u32> = (0..n)
            .map(|i| self.problem.quotas.get(NodeId(i as u32)))
            .collect();
        let mut conn = vec![0u32; n];
        self.dfs(0, &mut quota, 0.0, &mut conn);

        let matching = BMatching::from_edges(self.problem, self.best_edges.iter().copied());
        ExactResult {
            value: self.best_value,
            proven_optimal: self.nodes_expanded <= self.budget,
            nodes_expanded: self.nodes_expanded,
            matching,
        }
    }
}

impl BMatching {
    /// Total true satisfaction minus the constant contribution of quota-0
    /// nodes (which [`crate::satisfaction::node_satisfaction`] defines as 1).
    /// The B&B objective accumulates only *gains*, so the constant must be
    /// excluded when comparing incumbent values.
    fn total_satisfaction_adjusted(&self, problem: &Problem) -> f64 {
        let zero_quota = problem
            .nodes()
            .filter(|&i| problem.quotas.get(i) == 0)
            .count() as f64;
        self.total_satisfaction(problem) - zero_quota
    }
}

/// Exact maximum-weight many-to-many matching within the given budget.
pub fn optimal_weight(problem: &Problem, budget: u64) -> ExactResult {
    Search::new(problem, false).run(budget)
}

/// Exact maximum-weight **one-to-one** matching by bitmask dynamic
/// programming — an algorithmically independent oracle for `b ≡ 1`
/// instances with at most 24 nodes (O(n·2ⁿ) time, O(2ⁿ) space).
///
/// `dp[mask]` = best total weight using only the vertices in `mask`; the
/// lowest set vertex is either left unmatched or paired with a neighbour in
/// the mask. Used by the test suite to cross-check [`optimal_weight`] and
/// the bipartite flow solver with a third method.
///
/// # Panics
/// Panics if `n > 24` or any quota exceeds 1.
pub fn optimal_weight_b1_dp(problem: &Problem) -> f64 {
    let g = &problem.graph;
    let n = g.node_count();
    assert!(n <= 24, "bitmask DP limited to n ≤ 24 (got {n})");
    assert!(problem.quotas.bmax() <= 1, "DP oracle is one-to-one only");

    // Adjacency with weights, excluding quota-0 endpoints.
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if problem.quotas.get(u) == 1 && problem.quotas.get(v) == 1 {
            let w = problem.weights.get_f64(e);
            adj[u.index()].push((v.index(), w));
            adj[v.index()].push((u.index(), w));
        }
    }

    let full = 1usize << n;
    let mut dp = vec![0.0f64; full];
    for mask in 1..full {
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        // Leave i unmatched.
        let mut best = dp[rest];
        // Pair i with some neighbour in the mask.
        for &(j, w) in &adj[i] {
            if rest & (1 << j) != 0 {
                let cand = w + dp[rest & !(1 << j)];
                if cand > best {
                    best = cand;
                }
            }
        }
        dp[mask] = best;
    }
    dp[full - 1]
}

/// Exact maximum total-satisfaction b-matching within the given budget.
///
/// Note: `ExactResult::value` excludes the constant `+1` contribution of
/// quota-0 nodes; use `matching.total_satisfaction(problem)` for the
/// eq. 1 total including them.
pub fn optimal_satisfaction(problem: &Problem, budget: u64) -> ExactResult {
    Search::new(problem, true).run(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lic::{lic, SelectionPolicy};
    use owp_graph::generators::{complete, path};
    use owp_graph::{PreferenceTable, Quotas};

    #[test]
    fn opt_weight_at_least_greedy() {
        for seed in 0..10 {
            let p = Problem::random_gnp(12, 0.4, 2, seed);
            let greedy = global_greedy(&p).total_weight(&p);
            let opt = optimal_weight(&p, DEFAULT_BUDGET);
            assert!(opt.proven_optimal);
            assert!(opt.value >= greedy - 1e-9, "seed {seed}");
            assert!((opt.matching.total_weight(&p) - opt.value).abs() < 1e-9);
            crate::verify::check_valid(&p, &opt.matching).expect("valid");
        }
    }

    #[test]
    fn half_approximation_holds_empirically() {
        // Theorem 2: LIC ≥ ½ OPT — must hold on every instance.
        for seed in 0..15 {
            let p = Problem::random_gnp(12, 0.45, 2, 50 + seed);
            let m = lic(&p, SelectionPolicy::InOrder).total_weight(&p);
            let opt = optimal_weight(&p, DEFAULT_BUDGET).value;
            assert!(
                m >= 0.5 * opt - 1e-9,
                "seed {seed}: LIC {m} < ½·OPT {opt}"
            );
        }
    }

    #[test]
    fn path_b1_opt_is_max_weight_matching() {
        // Path 0—1—2: OPT with b=1 takes the single heavier edge.
        let g = path(3);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let opt = optimal_weight(&p, DEFAULT_BUDGET);
        assert_eq!(opt.matching.size(), 1);
        let best = edges_by_weight_desc(&p.graph, &p.weights)[0];
        assert!(opt.matching.contains(best));
    }

    #[test]
    fn satisfaction_opt_at_least_weight_opt_matching() {
        // The satisfaction-optimal matching scores ≥ the weight-optimal
        // matching under the satisfaction objective, by definition.
        for seed in 0..8 {
            let p = Problem::random_gnp(10, 0.5, 2, 200 + seed);
            let w_opt = optimal_weight(&p, DEFAULT_BUDGET);
            let s_opt = optimal_satisfaction(&p, DEFAULT_BUDGET);
            assert!(s_opt.proven_optimal);
            assert!(
                s_opt.matching.total_satisfaction(&p)
                    >= w_opt.matching.total_satisfaction(&p) - 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn satisfaction_incremental_gain_consistent() {
        // The B&B's accumulated objective equals eq. 1 recomputed from
        // scratch on the final matching.
        for seed in 0..8 {
            let p = Problem::random_gnp(9, 0.5, 3, 300 + seed);
            let s_opt = optimal_satisfaction(&p, DEFAULT_BUDGET);
            let recomputed = s_opt.matching.total_satisfaction_adjusted(&p);
            assert!(
                (s_opt.value - recomputed).abs() < 1e-9,
                "seed {seed}: {} vs {recomputed}",
                s_opt.value
            );
        }
    }

    #[test]
    fn three_exact_methods_agree_on_b1() {
        // B&B vs bitmask DP on general graphs; plus the flow solver on
        // bipartite ones — three independent algorithms, one optimum.
        use crate::flow::optimal_weight_bipartite;
        use owp_graph::generators::random_bipartite;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        for seed in 0..12 {
            let p = Problem::random_gnp(14, 0.4, 1, 900 + seed);
            let bnb = optimal_weight(&p, DEFAULT_BUDGET);
            assert!(bnb.proven_optimal);
            let dp = optimal_weight_b1_dp(&p);
            assert!(
                (bnb.value - dp).abs() < 1e-9,
                "seed {seed}: B&B {} vs DP {dp}",
                bnb.value
            );
        }
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_bipartite(7, 7, 0.5, &mut rng);
            let p = Problem::random_over(g, 1, seed);
            let dp = optimal_weight_b1_dp(&p);
            let flow = optimal_weight_bipartite(&p).expect("bipartite");
            assert!(
                (flow.total_weight(&p) - dp).abs() < 1e-9,
                "seed {seed}: flow vs DP"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one-to-one")]
    fn dp_rejects_b2() {
        let p = Problem::random_over(complete(5), 2, 1);
        optimal_weight_b1_dp(&p);
    }

    #[test]
    fn complete_graph_full_quota_takes_everything() {
        let p = Problem::random_over(complete(5), 4, 1);
        let opt = optimal_weight(&p, DEFAULT_BUDGET);
        assert_eq!(opt.matching.size(), 10);
    }

    #[test]
    fn tiny_budget_reports_not_proven() {
        let p = Problem::random_gnp(14, 0.5, 2, 1);
        let r = optimal_weight(&p, 3);
        assert!(!r.proven_optimal);
        // Still returns a feasible (greedy-seeded) matching.
        crate::verify::check_valid(&p, &r.matching).expect("valid");
    }
}
