//! # owp-matching — matching algorithms & the satisfaction metric
//!
//! The centralized half of the reproduction of Georgiadis &
//! Papatriantafilou, *Overlays with preferences* (IPDPS 2010):
//!
//! * [`satisfaction`] — the satisfaction metric `S_i` (eq. 1) with its
//!   static/dynamic decomposition (eqs. 4–7); reproduces the paper's
//!   Figure 1 example exactly;
//! * [`numeric`] / [`weights`] — exact rational eq. 9 edge weights with the
//!   identity tie-break giving the strict total order every lemma assumes;
//! * [`order`] — the dense integer edge-rank kernel: the exact order is paid
//!   for once, every hot path thereafter compares `u32` ranks;
//! * [`problem`] / [`bmatching`] — instance bundle and matching result types;
//! * [`lic`](mod@lic) — Algorithm 2 (LIC), the locally-heaviest-edge greedy, with
//!   pluggable selection policies (confluence property-tested);
//! * [`baselines`] — global greedy, random maximal, rank greedy, and
//!   Drake–Hougardy path growing;
//! * [`exact`] — branch & bound optimal solvers for both objectives (the
//!   measured "OPT" of the approximation-ratio experiments), plus a bitmask
//!   DP oracle for one-to-one instances;
//! * [`blossom`] — Edmonds' blossom algorithm (paper reference [2]) for
//!   exact maximum-weight one-to-one matching on general graphs in O(n³);
//! * [`flow`] — min-cost-flow exact solver for bipartite instances (an
//!   independent cross-check);
//! * [`stable`] — blocking pairs, better-response dynamics, the acyclicity
//!   test of Gai et al., Gale–Shapley deferred acceptance (reference [4])
//!   and phase 1 of Irving–Scott stable fixtures (reference [7]) — the
//!   stability-centric alternatives the paper argues against;
//! * [`verify`] — machine-checkable certificates of Lemmas 3 & 4 and of the
//!   ½-approximation structure;
//! * [`bounds`] — the `½(1+1/b)` / `¼(1+1/b)` bound calculators and the
//!   gadget instances that make them tight;
//! * [`metrics`] — the aggregate report rows the experiment tables print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bmatching;
pub mod blossom;
pub mod bounds;
pub mod csr;
pub mod exact;
pub mod flow;
pub mod lic;
pub mod metrics;
pub mod numeric;
pub mod order;
pub mod problem;
pub mod satisfaction;
pub mod stable;
pub mod verify;
pub mod weights;

pub use bmatching::BMatching;
pub use csr::FixedCsr;
pub use lic::{lic, lic_profiled, lic_traced, SelectionPolicy};
pub use metrics::{matching_totals, MatchingReport};
pub use numeric::Rational;
pub use order::{EdgeOrder, EdgeRank};
pub use problem::Problem;
pub use weights::{EdgeKey, EdgeWeights};
