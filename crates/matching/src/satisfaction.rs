//! The satisfaction metric (paper §3, eqs. 1, 4, 5, 6, 7).
//!
//! Satisfaction `S_i ∈ [0, 1]` measures how happy node `i` is with its
//! connection list `C_i` relative to the best it could have done: `c_i/b_i`
//! minus a penalty for every connection that sits lower in the preference
//! list than it would in the optimal case. The increment `ΔS_i^j` of adding
//! `j` as the `(c_i+1)`-th connection splits into a *static* part (knowable
//! upfront, eq. 5) and a *dynamic* part (execution-dependent); the whole
//! approximation story of the paper rests on that split.

use crate::numeric::Rational;
use owp_graph::{NodeId, PreferenceTable, Quotas};

/// Rank of `j` in `i`'s list, panicking with context if `j ∉ Γ_i`.
fn rank(prefs: &PreferenceTable, i: NodeId, j: NodeId) -> u64 {
    prefs
        .rank(i, j)
        .unwrap_or_else(|| panic!("{j:?} is not in the preference list of {i:?}")) as u64
}

/// True satisfaction increment `ΔS_i^j` (eq. 4) of node `i` adopting `j` as
/// its connection at 0-based preference position `position` (`Q_i(j)`).
///
/// `ΔS_i^j = 1/b_i − (R_i(j) − Q_i(j)) / (b_i · L_i)`.
pub fn delta_true(
    prefs: &PreferenceTable,
    quotas: &Quotas,
    i: NodeId,
    j: NodeId,
    position: u32,
) -> f64 {
    let b = quotas.get(i) as f64;
    let l = prefs.list_len(i) as f64;
    assert!(b > 0.0, "ΔS undefined for b_i = 0");
    let r = rank(prefs, i, j) as f64;
    1.0 / b - (r - position as f64) / (b * l)
}

/// Static (execution-independent) satisfaction increment `ΔS̄_i^j` (eq. 5),
/// exact: `(1 − R_i(j)/L_i) / b_i = (L_i − R_i(j)) / (b_i · L_i)`.
///
/// Returns [`Rational::ZERO`] when `b_i = 0` or `L_i = 0` — such a node can
/// never gain satisfaction from a connection (and the matching algorithms
/// exclude its edges anyway).
pub fn delta_static(prefs: &PreferenceTable, quotas: &Quotas, i: NodeId, j: NodeId) -> Rational {
    let b = quotas.get(i) as i128;
    let l = prefs.list_len(i) as i128;
    if b == 0 || l == 0 {
        return Rational::ZERO;
    }
    let r = rank(prefs, i, j) as i128;
    Rational::new(l - r, b * l)
}

/// Sorts a connection set into the ordered list `C_i` (decreasing preference,
/// i.e. increasing rank). Panics if some connection is not a neighbour.
pub fn ordered_connections(
    prefs: &PreferenceTable,
    i: NodeId,
    connections: &[NodeId],
) -> Vec<NodeId> {
    let mut c: Vec<NodeId> = connections.to_vec();
    c.sort_by_key(|&j| rank(prefs, i, j));
    c
}

/// True satisfaction `S_i` of node `i` with the given (unordered) connection
/// set (eq. 1):
///
/// `S_i = c_i/b_i + c_i(c_i−1)/(2 b_i L_i) − Σ_{j∈C_i} R_i(j)/(b_i L_i)`.
///
/// Conventions (documented in `DESIGN.md`): a node with `b_i = 0` wants
/// nothing and is defined fully satisfied (`S_i = 1`).
pub fn node_satisfaction(
    prefs: &PreferenceTable,
    quotas: &Quotas,
    i: NodeId,
    connections: &[NodeId],
) -> f64 {
    let b = quotas.get(i) as f64;
    if b == 0.0 {
        return 1.0;
    }
    let l = prefs.list_len(i) as f64;
    let c = connections.len() as f64;
    assert!(
        connections.len() <= quotas.get(i) as usize,
        "{i:?} has {} connections but quota {}",
        connections.len(),
        quotas.get(i)
    );
    let rank_sum: f64 = connections.iter().map(|&j| rank(prefs, i, j) as f64).sum();
    c / b + c * (c - 1.0) / (2.0 * b * l) - rank_sum / (b * l)
}

/// Modified satisfaction `S̄_i` (eq. 6): `c_i/b_i − Σ R_i(j)/(b_i L_i)` —
/// the objective the weighted-matching reduction actually optimizes.
pub fn node_satisfaction_modified(
    prefs: &PreferenceTable,
    quotas: &Quotas,
    i: NodeId,
    connections: &[NodeId],
) -> f64 {
    let b = quotas.get(i) as f64;
    if b == 0.0 {
        return 1.0;
    }
    let l = prefs.list_len(i) as f64;
    let c = connections.len() as f64;
    let rank_sum: f64 = connections.iter().map(|&j| rank(prefs, i, j) as f64).sum();
    c / b - rank_sum / (b * l)
}

/// The static/dynamic split of eq. 7: returns `(S_i^s, S_i^d)` with
/// `S_i = S_i^s + S_i^d`.
///
/// `S_i^s = Σ (1 − R_i(j)/L_i)/b_i` and `S_i^d = Σ_{q=0}^{c−1} q/(b_i L_i)
/// = c(c−1)/(2 b_i L_i)`.
pub fn static_dynamic_split(
    prefs: &PreferenceTable,
    quotas: &Quotas,
    i: NodeId,
    connections: &[NodeId],
) -> (f64, f64) {
    let b = quotas.get(i) as f64;
    if b == 0.0 {
        return (1.0, 0.0);
    }
    let l = prefs.list_len(i) as f64;
    let c = connections.len() as f64;
    let static_part: f64 = connections
        .iter()
        .map(|&j| (1.0 - rank(prefs, i, j) as f64 / l) / b)
        .sum();
    let dynamic_part = c * (c - 1.0) / (2.0 * b * l);
    (static_part, dynamic_part)
}

/// Sum of [`node_satisfaction`] over all nodes given per-node connection
/// lists (`connections[i]` = connections of node `i`).
pub fn total_satisfaction(
    prefs: &PreferenceTable,
    quotas: &Quotas,
    connections: &[Vec<NodeId>],
) -> f64 {
    connections
        .iter()
        .enumerate()
        .map(|(i, c)| node_satisfaction(prefs, quotas, NodeId(i as u32), c))
        .sum()
}

/// Sum of [`node_satisfaction_modified`] over all nodes.
pub fn total_satisfaction_modified(
    prefs: &PreferenceTable,
    quotas: &Quotas,
    connections: &[Vec<NodeId>],
) -> f64 {
    connections
        .iter()
        .enumerate()
        .map(|(i, c)| node_satisfaction_modified(prefs, quotas, NodeId(i as u32), c))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::star;
    use owp_graph::PreferenceTable;

    /// The exact setting of the paper's Figure 1: `b_i = 4`, `|L_i| = 7`,
    /// connections occupying preference ranks {0, 1, 3, 5}, giving
    /// `S_i = 1 − 3/28 = 0.893` (3 d.p.).
    fn figure1() -> (owp_graph::Graph, PreferenceTable, Quotas, Vec<NodeId>) {
        let g = star(8); // hub 0 with leaves 1..=7, so |L_0| = 7
        let prefs = PreferenceTable::by_node_id(&g); // leaf k has rank k−1
        let quotas = Quotas::uniform(&g, 4);
        // Ranks 0, 1, 3, 5 → leaves 1, 2, 4, 6.
        let connections = vec![NodeId(1), NodeId(2), NodeId(4), NodeId(6)];
        (g, prefs, quotas, connections)
    }

    #[test]
    fn figure1_satisfaction_is_0_893() {
        let (_g, prefs, quotas, conns) = figure1();
        let s = node_satisfaction(&prefs, &quotas, NodeId(0), &conns);
        assert!((s - (1.0 - 3.0 / 28.0)).abs() < 1e-12, "S = {s}");
        assert_eq!(format!("{s:.3}"), "0.893");
    }

    #[test]
    fn top_choices_give_satisfaction_one() {
        let g = star(8);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 4);
        let top: Vec<NodeId> = prefs.list(NodeId(0))[..4].to_vec();
        let s = node_satisfaction(&prefs, &quotas, NodeId(0), &top);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_connections_give_zero() {
        let g = star(8);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 4);
        assert_eq!(node_satisfaction(&prefs, &quotas, NodeId(0), &[]), 0.0);
        assert_eq!(
            node_satisfaction_modified(&prefs, &quotas, NodeId(0), &[]),
            0.0
        );
    }

    #[test]
    fn quota_zero_is_fully_satisfied() {
        let g = star(3);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![0, 1, 1]);
        assert_eq!(node_satisfaction(&prefs, &quotas, NodeId(0), &[]), 1.0);
        assert_eq!(static_dynamic_split(&prefs, &quotas, NodeId(0), &[]), (1.0, 0.0));
    }

    #[test]
    fn satisfaction_in_unit_interval() {
        // Worst case: bottom-of-list connections.
        let g = star(8);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 4);
        let bottom: Vec<NodeId> = prefs.list(NodeId(0))[3..].to_vec();
        let s = node_satisfaction(&prefs, &quotas, NodeId(0), &bottom);
        assert!((0.0..=1.0).contains(&s), "S = {s}");
    }

    #[test]
    fn delta_true_sums_to_satisfaction() {
        let (_g, prefs, quotas, conns) = figure1();
        let ordered = ordered_connections(&prefs, NodeId(0), &conns);
        let sum: f64 = ordered
            .iter()
            .enumerate()
            .map(|(q, &j)| delta_true(&prefs, &quotas, NodeId(0), j, q as u32))
            .sum();
        let s = node_satisfaction(&prefs, &quotas, NodeId(0), &conns);
        assert!((sum - s).abs() < 1e-12, "Σ ΔS = {sum}, S = {s}");
    }

    #[test]
    fn split_recombines_to_satisfaction() {
        let (_g, prefs, quotas, conns) = figure1();
        let (s_static, s_dynamic) = static_dynamic_split(&prefs, &quotas, NodeId(0), &conns);
        let s = node_satisfaction(&prefs, &quotas, NodeId(0), &conns);
        assert!((s_static + s_dynamic - s).abs() < 1e-12);
        // And the static part is exactly the modified satisfaction (eq. 6).
        let s_mod = node_satisfaction_modified(&prefs, &quotas, NodeId(0), &conns);
        assert!((s_static - s_mod).abs() < 1e-12);
    }

    #[test]
    fn delta_static_exact_matches_f64() {
        let (_g, prefs, quotas, conns) = figure1();
        for &j in &conns {
            let exact = delta_static(&prefs, &quotas, NodeId(0), j).to_f64();
            let r = prefs.rank(NodeId(0), j).unwrap() as f64;
            let expect = (1.0 - r / 7.0) / 4.0;
            assert!((exact - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma1_worst_case_ratio() {
        // Lemma 1's tight case: connections drawn from the *bottom* of the
        // list with c_i = b_i. Then S^s/(S^s+S^d) = ½(1 + 1/b).
        let g = star(8);
        let prefs = PreferenceTable::by_node_id(&g);
        for b in 1..=7u32 {
            let quotas = Quotas::uniform(&g, b);
            let list = prefs.list(NodeId(0));
            let bottom: Vec<NodeId> = list[list.len() - b as usize..].to_vec();
            let (s, d) = static_dynamic_split(&prefs, &quotas, NodeId(0), &bottom);
            let ratio = s / (s + d);
            let bound = 0.5 * (1.0 + 1.0 / b as f64);
            assert!(
                (ratio - bound).abs() < 1e-12,
                "b={b}: ratio {ratio} vs bound {bound}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "not in the preference list")]
    fn non_neighbour_connection_panics() {
        let g = star(4);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 2);
        // Leaves are not adjacent to each other.
        node_satisfaction(&prefs, &quotas, NodeId(1), &[NodeId(2)]);
    }
}
