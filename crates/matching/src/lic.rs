//! LIC — Local Information-based Centralized algorithm (paper Algorithm 2).
//!
//! LIC repeatedly selects a *locally heaviest* edge `(a, b)`: one heavier
//! than every other pool edge incident to `a` or `b` (eq. 3 over the dynamic
//! pool of eq. 13). Selecting it decrements both endpoint counters; a node
//! whose counter hits zero has all its remaining pool edges discarded
//! (Algorithm 2 lines 8–9).
//!
//! With unique weights ([`crate::weights::EdgeKey`]) the *set* of selected
//! edges is independent of which locally heaviest edge is picked first —
//! that confluence is what makes LIC a faithful stand-in for the distributed
//! LID (Lemmas 4 & 6) and it is property-tested here across selection
//! policies.
//!
//! Implementation: the classic dominant-edge worklist. Each node keeps its
//! incident edges sorted heaviest-first with a cursor; an edge is locally
//! heaviest exactly when it is the current top edge of *both* endpoints.
//! Every pool change re-queues the affected nodes, so the scan is
//! O(m log m) overall.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use owp_graph::{EdgeId, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which node the worklist examines next. All policies provably produce the
/// same matching (tested); they differ only in traversal order and cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Process nodes in ascending id order (deterministic, cache-friendly).
    InOrder,
    /// Process nodes in descending id order.
    Reverse,
    /// Shuffle the initial worklist with the given seed — used by the
    /// confluence property tests to simulate arbitrary distributed timing.
    Random(u64),
}

struct State<'p> {
    problem: &'p Problem,
    /// Per node: incident edges, heaviest first.
    incident: Vec<Vec<EdgeId>>,
    /// Per node: cursor into `incident` (everything before it is removed).
    cursor: Vec<usize>,
    /// Per edge: removed from the pool (selected or discarded).
    removed: Vec<bool>,
    /// Per node: remaining quota (Algorithm 2's `counter`).
    counter: Vec<u32>,
    matching: BMatching,
    /// Selection order, for tests and traces.
    order: Vec<EdgeId>,
}

impl<'p> State<'p> {
    fn new(problem: &'p Problem) -> Self {
        let g = &problem.graph;
        let w = &problem.weights;
        let incident: Vec<Vec<EdgeId>> = g
            .nodes()
            .map(|i| {
                let mut edges: Vec<EdgeId> = g.neighbors(i).iter().map(|&(_, e)| e).collect();
                edges.sort_by_key(|&e| std::cmp::Reverse(w.key(g, e)));
                edges
            })
            .collect();
        let counter: Vec<u32> = g.nodes().map(|i| problem.quotas.get(i)).collect();
        State {
            problem,
            incident,
            cursor: vec![0; g.node_count()],
            removed: vec![false; g.edge_count()],
            counter,
            matching: BMatching::empty(g),
            order: Vec::new(),
        }
    }

    /// Current heaviest pool edge of `i`, advancing the cursor lazily.
    fn top(&mut self, i: NodeId) -> Option<EdgeId> {
        let idx = i.index();
        while self.cursor[idx] < self.incident[idx].len() {
            let e = self.incident[idx][self.cursor[idx]];
            if self.removed[e.index()] {
                self.cursor[idx] += 1;
            } else {
                return Some(e);
            }
        }
        None
    }

    /// Discards all pool edges of a saturated node, re-queueing the nodes
    /// whose pool shrank (their top edge may have become locally heaviest).
    fn saturate(&mut self, i: NodeId, queue: &mut Vec<NodeId>) {
        for k in 0..self.incident[i.index()].len() {
            let e = self.incident[i.index()][k];
            if !self.removed[e.index()] {
                self.removed[e.index()] = true;
                queue.push(self.problem.graph.other_endpoint(e, i));
            }
        }
    }

    /// Selects a locally heaviest edge (Algorithm 2 lines 5–9).
    fn select(&mut self, e: EdgeId, queue: &mut Vec<NodeId>) {
        debug_assert!(!self.removed[e.index()]);
        let (a, b) = self.problem.graph.endpoints(e);
        debug_assert!(self.counter[a.index()] > 0 && self.counter[b.index()] > 0);
        self.matching.insert(self.problem, e);
        self.order.push(e);
        self.removed[e.index()] = true;
        for x in [a, b] {
            self.counter[x.index()] -= 1;
            if self.counter[x.index()] == 0 {
                self.saturate(x, queue);
            }
        }
        queue.push(a);
        queue.push(b);
    }

    fn run(mut self, policy: SelectionPolicy) -> (BMatching, Vec<EdgeId>) {
        let n = self.problem.graph.node_count();
        let mut queue: Vec<NodeId> = match policy {
            SelectionPolicy::InOrder => (0..n as u32).map(NodeId).collect(),
            SelectionPolicy::Reverse => (0..n as u32).rev().map(NodeId).collect(),
            SelectionPolicy::Random(seed) => {
                let mut q: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
                q.shuffle(&mut StdRng::seed_from_u64(seed));
                q
            }
        };

        // Nodes that can never participate discard their edges upfront
        // (counter = 0 from a zero quota).
        let mut extra = Vec::new();
        for i in 0..n {
            if self.counter[i] == 0 {
                self.saturate(NodeId(i as u32), &mut extra);
            }
        }
        queue.extend(extra);

        while let Some(i) = queue.pop() {
            // If i's current top edge is also its other endpoint's top edge,
            // it is heavier than every other pool edge touching either — a
            // locally heaviest edge (eq. 13). select() re-queues i, so any
            // further selections at i happen on later worklist visits,
            // keeping the traversal policy-driven.
            if let Some(e) = self.top(i) {
                let j = self.problem.graph.other_endpoint(e, i);
                if self.top(j) == Some(e) {
                    self.select(e, &mut queue);
                }
            }
        }

        debug_assert!(
            self.removed.iter().all(|&r| r),
            "pool must be empty at termination"
        );
        (self.matching, self.order)
    }
}

/// Runs LIC and returns the matching.
pub fn lic(problem: &Problem, policy: SelectionPolicy) -> BMatching {
    State::new(problem).run(policy).0
}

/// Runs LIC and also returns the order in which edges were selected — each
/// prefix of this order is a valid "locally heaviest so far" history, used
/// by the Lemma 3/4 verification tests.
pub fn lic_with_order(problem: &Problem, policy: SelectionPolicy) -> (BMatching, Vec<EdgeId>) {
    State::new(problem).run(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use owp_graph::generators::{complete, erdos_renyi, path, star};
    use owp_graph::{PreferenceTable, Quotas};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_quotas_and_validity() {
        for seed in 0..20 {
            let p = Problem::random_gnp(30, 0.3, 2, seed);
            let m = lic(&p, SelectionPolicy::InOrder);
            verify::check_valid(&p, &m).expect("valid matching");
        }
    }

    #[test]
    fn confluence_across_policies() {
        for seed in 0..15 {
            let p = Problem::random_gnp(25, 0.4, 3, seed);
            let a = lic(&p, SelectionPolicy::InOrder);
            let b = lic(&p, SelectionPolicy::Reverse);
            assert!(a.same_edges(&b), "InOrder vs Reverse differ at seed {seed}");
            for shuffle_seed in 0..5 {
                let c = lic(&p, SelectionPolicy::Random(shuffle_seed));
                assert!(a.same_edges(&c), "random policy differs at seed {seed}");
            }
        }
    }

    #[test]
    fn b1_path_picks_heaviest_nonadjacent() {
        // Path 0—1—2 with b=1: LIC must take exactly the heavier edge.
        let g = path(3);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.size(), 1);
        // Verify it took the heavier of the two edges.
        let e01 = p.graph.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = p.graph.edge_between(NodeId(1), NodeId(2)).unwrap();
        let heavier = if p.weights.key(&p.graph, e01) > p.weights.key(&p.graph, e12) {
            e01
        } else {
            e12
        };
        assert!(m.contains(heavier));
    }

    #[test]
    fn saturates_star_hub() {
        // Star hub with quota 2 keeps exactly its 2 heaviest edges.
        let g = star(6);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![2, 1, 1, 1, 1, 1]);
        let p = Problem::new(g, prefs, quotas);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.size(), 2);
        assert_eq!(m.degree(NodeId(0)), 2);
        // The hub's two kept edges are heavier than all dropped ones.
        verify::check_greedy_certificate(&p, &m).expect("certificate");
    }

    #[test]
    fn zero_quota_node_gets_nothing() {
        let g = complete(5);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![0, 2, 2, 2, 2]);
        let p = Problem::new(g, prefs, quotas);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.degree(NodeId(0)), 0);
        verify::check_valid(&p, &m).expect("valid");
    }

    #[test]
    fn selection_order_is_locally_heaviest_history() {
        for seed in 0..10 {
            let p = Problem::random_gnp(20, 0.35, 2, 100 + seed);
            let (m, order) = lic_with_order(&p, SelectionPolicy::Random(seed));
            assert_eq!(m.size(), order.len());
            verify::check_selection_order(&p, &order).expect("each selected edge was locally heaviest at its selection point");
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let p = Problem::random_over(erdos_renyi(0, 0.5, &mut StdRng::seed_from_u64(1)), 2, 1);
        assert_eq!(lic(&p, SelectionPolicy::InOrder).size(), 0);

        let p = Problem::random_over(erdos_renyi(5, 0.0, &mut StdRng::seed_from_u64(1)), 2, 1);
        assert_eq!(lic(&p, SelectionPolicy::InOrder).size(), 0);
    }

    #[test]
    fn full_quota_complete_graph_saturates_everyone() {
        // K6 with b=5: every edge can be taken.
        let p = Problem::random_over(complete(6), 5, 9);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.size(), 15);
    }
}
