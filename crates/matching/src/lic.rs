//! LIC — Local Information-based Centralized algorithm (paper Algorithm 2).
//!
//! LIC repeatedly selects a *locally heaviest* edge `(a, b)`: one heavier
//! than every other pool edge incident to `a` or `b` (eq. 3 over the dynamic
//! pool of eq. 13). Selecting it decrements both endpoint counters; a node
//! whose counter hits zero has all its remaining pool edges discarded
//! (Algorithm 2 lines 8–9).
//!
//! With unique weights ([`crate::weights::EdgeKey`]) the *set* of selected
//! edges is independent of which locally heaviest edge is picked first —
//! that confluence is what makes LIC a faithful stand-in for the distributed
//! LID (Lemmas 4 & 6) and it is property-tested here across selection
//! policies.
//!
//! Implementation: the classic dominant-edge worklist on the integer rank
//! kernel. The per-node incident lists live in one flat CSR array
//! (`offsets` + a contiguous `incident` buffer), each node's slice sorted by
//! global [`crate::EdgeOrder`] rank — built in O(n + m) by scattering the
//! edges in global rank order, with **zero** weight comparisons. An edge is
//! locally heaviest exactly when it is the current top edge of *both*
//! endpoints; cursor advancement and top-edge checks are integer compares,
//! so no `Rational` is touched after `Problem` construction.
//!
//! [`lic_reference`] keeps the original per-node key-sorted formulation
//! (exact `EdgeKey` comparisons throughout). It exists to cross-check the
//! rank kernel — the equivalence test in `tests/` asserts bit-identical
//! matchings — and as the before/after baseline for `bench_lic`.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use owp_graph::{EdgeId, NodeId};
use owp_telemetry::{NullRecorder, PhaseProfile, Recorder, TelemetryEvent};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which node the worklist examines next. All policies provably produce the
/// same matching (tested); they differ only in traversal order and cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Process nodes in ascending id order (deterministic, cache-friendly).
    InOrder,
    /// Process nodes in descending id order.
    Reverse,
    /// Shuffle the initial worklist with the given seed — used by the
    /// confluence property tests to simulate arbitrary distributed timing.
    Random(u64),
}

struct State<'p> {
    problem: &'p Problem,
    /// CSR offsets: node `i`'s incident slice is `incident[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Flat incident-edge buffer; each node's slice sorted by global rank
    /// ascending (heaviest first).
    incident: Vec<EdgeId>,
    /// Per node: absolute cursor into `incident` (everything in the node's
    /// slice before it is removed).
    cursor: Vec<u32>,
    /// Per edge: removed from the pool (selected or discarded).
    removed: Vec<bool>,
    /// Per node: remaining quota (Algorithm 2's `counter`).
    counter: Vec<u32>,
    matching: BMatching,
    /// Selection order, for tests and traces.
    order: Vec<EdgeId>,
}

impl<'p> State<'p> {
    fn new(problem: &'p Problem) -> Self {
        let g = &problem.graph;
        let n = g.node_count();

        // CSR offsets are exactly the graph's degree prefix sums.
        let mut offsets = vec![0u32; n + 1];
        for i in g.nodes() {
            offsets[i.index() + 1] = offsets[i.index()] + g.degree(i) as u32;
        }
        // Scatter edges in global rank order: each node's slice comes out
        // sorted heaviest-first without a single weight comparison.
        let mut incident = vec![EdgeId(0); 2 * g.edge_count()];
        let mut fill: Vec<u32> = offsets[..n].to_vec();
        for &e in problem.order.heaviest_first() {
            let (u, v) = g.endpoints(e);
            incident[fill[u.index()] as usize] = e;
            fill[u.index()] += 1;
            incident[fill[v.index()] as usize] = e;
            fill[v.index()] += 1;
        }

        let cursor = offsets[..n].to_vec();
        let counter: Vec<u32> = g.nodes().map(|i| problem.quotas.get(i)).collect();
        State {
            problem,
            offsets,
            incident,
            cursor,
            removed: vec![false; g.edge_count()],
            counter,
            matching: BMatching::empty(g),
            order: Vec::new(),
        }
    }

    /// Current heaviest pool edge of `i`, advancing the cursor lazily.
    fn top<R: Recorder>(&mut self, i: NodeId, rec: &mut R) -> Option<EdgeId> {
        let idx = i.index();
        let end = self.offsets[idx + 1];
        let start = self.cursor[idx];
        let mut c = start;
        let mut found = None;
        while c < end {
            let e = self.incident[c as usize];
            if !self.removed[e.index()] {
                found = Some(e);
                break;
            }
            c += 1;
        }
        self.cursor[idx] = c;
        // With `NullRecorder` this whole block constant-folds away, leaving
        // the uninstrumented cursor walk.
        if rec.is_enabled() && c > start {
            rec.record(TelemetryEvent::LicCursorAdvanced {
                node: i,
                skipped: c - start,
            });
        }
        found
    }

    /// Discards all pool edges of a saturated node, re-queueing the nodes
    /// whose pool shrank (their top edge may have become locally heaviest).
    /// Scans from the cursor: everything before it is already removed.
    fn saturate<R: Recorder>(&mut self, i: NodeId, queue: &mut Vec<NodeId>, rec: &mut R) {
        let idx = i.index();
        let mut discarded = 0u32;
        for k in self.cursor[idx]..self.offsets[idx + 1] {
            let e = self.incident[k as usize];
            if !self.removed[e.index()] {
                self.removed[e.index()] = true;
                discarded += 1;
                queue.push(self.problem.graph.other_endpoint(e, i));
            }
        }
        self.cursor[idx] = self.offsets[idx + 1];
        if rec.is_enabled() {
            rec.record(TelemetryEvent::LicNodeSaturated {
                step: self.order.len() as u32,
                node: i,
                discarded,
            });
        }
    }

    /// Selects a locally heaviest edge (Algorithm 2 lines 5–9).
    fn select<R: Recorder>(&mut self, e: EdgeId, queue: &mut Vec<NodeId>, rec: &mut R) {
        debug_assert!(!self.removed[e.index()]);
        let (a, b) = self.problem.graph.endpoints(e);
        debug_assert!(self.counter[a.index()] > 0 && self.counter[b.index()] > 0);
        if rec.is_enabled() {
            rec.record(TelemetryEvent::LicEdgeSelected {
                step: self.order.len() as u32,
                edge: e,
                a,
                b,
            });
        }
        self.matching.insert(self.problem, e);
        self.order.push(e);
        self.removed[e.index()] = true;
        for x in [a, b] {
            self.counter[x.index()] -= 1;
            if self.counter[x.index()] == 0 {
                self.saturate(x, queue, rec);
            }
        }
        queue.push(a);
        queue.push(b);
    }

    fn run<R: Recorder>(mut self, policy: SelectionPolicy, rec: &mut R) -> (BMatching, Vec<EdgeId>) {
        let n = self.problem.graph.node_count();
        let mut queue: Vec<NodeId> = match policy {
            SelectionPolicy::InOrder => (0..n as u32).map(NodeId).collect(),
            SelectionPolicy::Reverse => (0..n as u32).rev().map(NodeId).collect(),
            SelectionPolicy::Random(seed) => {
                let mut q: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
                q.shuffle(&mut StdRng::seed_from_u64(seed));
                q
            }
        };

        // Nodes that can never participate discard their edges upfront
        // (counter = 0 from a zero quota).
        let mut extra = Vec::new();
        for i in 0..n {
            if self.counter[i] == 0 {
                self.saturate(NodeId(i as u32), &mut extra, rec);
            }
        }
        queue.extend(extra);

        while let Some(i) = queue.pop() {
            // If i's current top edge is also its other endpoint's top edge,
            // it is heavier than every other pool edge touching either — a
            // locally heaviest edge (eq. 13). select() re-queues i, so any
            // further selections at i happen on later worklist visits,
            // keeping the traversal policy-driven.
            if let Some(e) = self.top(i, rec) {
                let j = self.problem.graph.other_endpoint(e, i);
                if self.top(j, rec) == Some(e) {
                    self.select(e, &mut queue, rec);
                }
            }
        }

        debug_assert!(
            self.removed.iter().all(|&r| r),
            "pool must be empty at termination"
        );
        (self.matching, self.order)
    }
}

/// Runs LIC and returns the matching.
pub fn lic(problem: &Problem, policy: SelectionPolicy) -> BMatching {
    State::new(problem).run(policy, &mut NullRecorder).0
}

/// Runs LIC and also returns the order in which edges were selected — each
/// prefix of this order is a valid "locally heaviest so far" history, used
/// by the Lemma 3/4 verification tests.
pub fn lic_with_order(problem: &Problem, policy: SelectionPolicy) -> (BMatching, Vec<EdgeId>) {
    State::new(problem).run(policy, &mut NullRecorder)
}

/// Runs LIC recording its decision trace into `rec`: one
/// [`TelemetryEvent::LicEdgeSelected`] per selection (in selection order),
/// [`TelemetryEvent::LicNodeSaturated`] for every counter-exhaustion sweep
/// and [`TelemetryEvent::LicCursorAdvanced`] for every lazy cursor skip.
///
/// Generic over the [`Recorder`], so `lic_traced(p, policy, &mut
/// NullRecorder)` monomorphizes to exactly [`lic_with_order`] — the
/// instrumentation is free when unused (no `dyn`, no allocation).
pub fn lic_traced<R: Recorder>(
    problem: &Problem,
    policy: SelectionPolicy,
    rec: &mut R,
) -> (BMatching, Vec<EdgeId>) {
    State::new(problem).run(policy, rec)
}

/// Runs LIC under a [`PhaseProfile`], splitting wall time into the CSR
/// incident-array build and the selection loop.
pub fn lic_profiled(
    problem: &Problem,
    policy: SelectionPolicy,
    prof: &mut PhaseProfile,
) -> BMatching {
    prof.time("lic", |prof| {
        let state = prof.time("csr_build", |_| State::new(problem));
        prof.time("selection", |_| state.run(policy, &mut NullRecorder).0)
    })
}

/// The original key-comparing LIC: per-node `Vec<Vec<EdgeId>>` incident
/// lists, each sorted by exact [`crate::EdgeKey`] at setup. Kept as the
/// independent cross-check of the rank kernel ([`lic`] must produce an
/// identical matching — asserted by the committed equivalence test) and as
/// the baseline side of the `bench_lic` before/after comparison.
pub fn lic_reference(problem: &Problem, policy: SelectionPolicy) -> BMatching {
    let g = &problem.graph;
    let w = &problem.weights;
    let n = g.node_count();

    let incident: Vec<Vec<EdgeId>> = g
        .nodes()
        .map(|i| {
            let mut edges: Vec<EdgeId> = g.neighbors(i).iter().map(|&(_, e)| e).collect();
            edges.sort_by_key(|&e| std::cmp::Reverse(w.key(g, e)));
            edges
        })
        .collect();
    let mut cursor = vec![0usize; n];
    let mut removed = vec![false; g.edge_count()];
    let mut counter: Vec<u32> = g.nodes().map(|i| problem.quotas.get(i)).collect();
    let mut matching = BMatching::empty(g);

    let top = |i: NodeId, cursor: &mut [usize], removed: &[bool]| -> Option<EdgeId> {
        let idx = i.index();
        while cursor[idx] < incident[idx].len() {
            let e = incident[idx][cursor[idx]];
            if removed[e.index()] {
                cursor[idx] += 1;
            } else {
                return Some(e);
            }
        }
        None
    };
    let saturate = |i: NodeId, removed: &mut [bool], queue: &mut Vec<NodeId>| {
        for &e in &incident[i.index()] {
            if !removed[e.index()] {
                removed[e.index()] = true;
                queue.push(g.other_endpoint(e, i));
            }
        }
    };

    let mut queue: Vec<NodeId> = match policy {
        SelectionPolicy::InOrder => (0..n as u32).map(NodeId).collect(),
        SelectionPolicy::Reverse => (0..n as u32).rev().map(NodeId).collect(),
        SelectionPolicy::Random(seed) => {
            let mut q: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            q.shuffle(&mut StdRng::seed_from_u64(seed));
            q
        }
    };
    for i in 0..n {
        if counter[i] == 0 {
            saturate(NodeId(i as u32), &mut removed, &mut queue);
        }
    }

    while let Some(i) = queue.pop() {
        if let Some(e) = top(i, &mut cursor, &removed) {
            let j = g.other_endpoint(e, i);
            if top(j, &mut cursor, &removed) == Some(e) {
                let (a, b) = g.endpoints(e);
                matching.insert(problem, e);
                removed[e.index()] = true;
                for x in [a, b] {
                    counter[x.index()] -= 1;
                    if counter[x.index()] == 0 {
                        saturate(x, &mut removed, &mut queue);
                    }
                }
                queue.push(a);
                queue.push(b);
            }
        }
    }
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use owp_graph::generators::{complete, erdos_renyi, path, star};
    use owp_graph::{PreferenceTable, Quotas};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_quotas_and_validity() {
        for seed in 0..20 {
            let p = Problem::random_gnp(30, 0.3, 2, seed);
            let m = lic(&p, SelectionPolicy::InOrder);
            verify::check_valid(&p, &m).expect("valid matching");
        }
    }

    #[test]
    fn confluence_across_policies() {
        for seed in 0..15 {
            let p = Problem::random_gnp(25, 0.4, 3, seed);
            let a = lic(&p, SelectionPolicy::InOrder);
            let b = lic(&p, SelectionPolicy::Reverse);
            assert!(a.same_edges(&b), "InOrder vs Reverse differ at seed {seed}");
            for shuffle_seed in 0..5 {
                let c = lic(&p, SelectionPolicy::Random(shuffle_seed));
                assert!(a.same_edges(&c), "random policy differs at seed {seed}");
            }
        }
    }

    #[test]
    fn b1_path_picks_heaviest_nonadjacent() {
        // Path 0—1—2 with b=1: LIC must take exactly the heavier edge.
        let g = path(3);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.size(), 1);
        // Verify it took the heavier of the two edges.
        let e01 = p.graph.edge_between(NodeId(0), NodeId(1)).unwrap();
        let e12 = p.graph.edge_between(NodeId(1), NodeId(2)).unwrap();
        let heavier = if p.weights.key(&p.graph, e01) > p.weights.key(&p.graph, e12) {
            e01
        } else {
            e12
        };
        assert!(m.contains(heavier));
    }

    #[test]
    fn saturates_star_hub() {
        // Star hub with quota 2 keeps exactly its 2 heaviest edges.
        let g = star(6);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![2, 1, 1, 1, 1, 1]);
        let p = Problem::new(g, prefs, quotas);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.size(), 2);
        assert_eq!(m.degree(NodeId(0)), 2);
        // The hub's two kept edges are heavier than all dropped ones.
        verify::check_greedy_certificate(&p, &m).expect("certificate");
    }

    #[test]
    fn zero_quota_node_gets_nothing() {
        let g = complete(5);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::from_vec(&g, vec![0, 2, 2, 2, 2]);
        let p = Problem::new(g, prefs, quotas);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.degree(NodeId(0)), 0);
        verify::check_valid(&p, &m).expect("valid");
    }

    #[test]
    fn selection_order_is_locally_heaviest_history() {
        for seed in 0..10 {
            let p = Problem::random_gnp(20, 0.35, 2, 100 + seed);
            let (m, order) = lic_with_order(&p, SelectionPolicy::Random(seed));
            assert_eq!(m.size(), order.len());
            verify::check_selection_order(&p, &order).expect("each selected edge was locally heaviest at its selection point");
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let p = Problem::random_over(erdos_renyi(0, 0.5, &mut StdRng::seed_from_u64(1)), 2, 1);
        assert_eq!(lic(&p, SelectionPolicy::InOrder).size(), 0);

        let p = Problem::random_over(erdos_renyi(5, 0.0, &mut StdRng::seed_from_u64(1)), 2, 1);
        assert_eq!(lic(&p, SelectionPolicy::InOrder).size(), 0);
    }

    #[test]
    fn full_quota_complete_graph_saturates_everyone() {
        // K6 with b=5: every edge can be taken.
        let p = Problem::random_over(complete(6), 5, 9);
        let m = lic(&p, SelectionPolicy::InOrder);
        assert_eq!(m.size(), 15);
    }

    #[test]
    fn traced_run_matches_untraced_and_replays_the_selection_order() {
        use owp_telemetry::{EventLog, TelemetryEvent};
        for seed in 0..5 {
            let p = Problem::random_gnp(25, 0.35, 2, 300 + seed);
            let mut log = EventLog::enabled();
            let (m, order) = lic_traced(&p, SelectionPolicy::InOrder, &mut log);
            assert!(m.same_edges(&lic(&p, SelectionPolicy::InOrder)));

            // The LicEdgeSelected events ARE the selection order.
            let selected: Vec<_> = log
                .events()
                .iter()
                .filter_map(|e| match *e {
                    TelemetryEvent::LicEdgeSelected { step, edge, .. } => Some((step, edge)),
                    _ => None,
                })
                .collect();
            assert_eq!(selected.len(), order.len());
            for (k, (&(step, edge), &expect)) in selected.iter().zip(order.iter()).enumerate() {
                assert_eq!(step as usize, k);
                assert_eq!(edge, expect);
            }
        }
    }

    #[test]
    fn null_recorder_trace_is_free_and_identical() {
        let p = Problem::random_gnp(30, 0.3, 3, 77);
        let mut null = owp_telemetry::NullRecorder;
        let (m, order) = lic_traced(&p, SelectionPolicy::Reverse, &mut null);
        let (m2, order2) = lic_with_order(&p, SelectionPolicy::Reverse);
        assert!(m.same_edges(&m2));
        assert_eq!(order, order2);
    }

    #[test]
    fn profiled_run_reports_both_phases() {
        let p = Problem::random_gnp(40, 0.3, 2, 5);
        let mut prof = owp_telemetry::PhaseProfile::new();
        let m = lic_profiled(&p, SelectionPolicy::InOrder, &mut prof);
        assert!(m.same_edges(&lic(&p, SelectionPolicy::InOrder)));
        assert!(prof.total_of("lic/csr_build").is_some());
        assert!(prof.total_of("lic/selection").is_some());
    }
}
