//! Baseline matching algorithms the experiments compare LIC/LID against.
//!
//! * [`global_greedy`] — the textbook greedy over the *global* weight order
//!   (what a centralized coordinator with full knowledge would run);
//! * [`random_maximal`] — maximal b-matching in a random edge order (the
//!   "no coordination at all" floor);
//! * [`rank_greedy`] — a preference-only heuristic (greedy on mutual rank
//!   sum, blind to quotas' weight normalization) representing naive
//!   preference-based pairing;
//! * [`path_growing`] — Drake & Hougardy's ½-approximation path-growing
//!   algorithm for the classic one-to-one case (`b ≡ 1`), the standard
//!   comparison point in the distributed-matching literature the paper cites.

use crate::bmatching::BMatching;
use crate::problem::Problem;
use crate::weights::edges_by_weight_desc;
use owp_graph::EdgeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Takes edges heaviest-first whenever both endpoints still have quota.
/// With unique weights this is one particular locally-heaviest selection
/// order, so it must coincide with LIC (tested in `lic.rs`' cross-checks).
pub fn global_greedy(problem: &Problem) -> BMatching {
    greedy_in_order(problem, edges_by_weight_desc(&problem.graph, &problem.weights))
}

/// Takes edges in a seeded random order whenever feasible. Maximal, but with
/// no weight guarantee — the coordination-free floor.
pub fn random_maximal(problem: &Problem, seed: u64) -> BMatching {
    let mut order: Vec<EdgeId> = problem.graph.edges().collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    greedy_in_order(problem, order)
}

/// Greedy on ascending mutual rank sum `R_i(j) + R_j(i)` (ties by edge id):
/// pairs that rank each other highly are taken first, ignoring the
/// quota-normalized weights of eq. 9.
pub fn rank_greedy(problem: &Problem) -> BMatching {
    let g = &problem.graph;
    let mut order: Vec<EdgeId> = g.edges().collect();
    order.sort_by_key(|&e| {
        let (u, v) = g.endpoints(e);
        let ru = problem.prefs.rank(u, v).expect("neighbour") as u64;
        let rv = problem.prefs.rank(v, u).expect("neighbour") as u64;
        (ru + rv, e.0)
    });
    greedy_in_order(problem, order)
}

fn greedy_in_order<I: IntoIterator<Item = EdgeId>>(problem: &Problem, order: I) -> BMatching {
    let g = &problem.graph;
    let mut m = BMatching::empty(g);
    let mut quota: Vec<u32> = g.nodes().map(|i| problem.quotas.get(i)).collect();
    for e in order {
        let (u, v) = g.endpoints(e);
        if quota[u.index()] > 0 && quota[v.index()] > 0 {
            quota[u.index()] -= 1;
            quota[v.index()] -= 1;
            m.insert(problem, e);
        }
    }
    m
}

/// Drake–Hougardy path growing for the one-to-one case.
///
/// Grows paths by repeatedly following the heaviest remaining edge, placing
/// edges alternately into two candidate matchings, and returns the heavier
/// one — a ½-approximation of the maximum weight matching.
///
/// # Panics
/// Panics if any quota exceeds 1 (the algorithm is defined for `b ≡ 1`).
pub fn path_growing(problem: &Problem) -> BMatching {
    assert!(
        problem.quotas.bmax() <= 1,
        "path growing is a one-to-one (b = 1) algorithm"
    );
    let g = &problem.graph;
    let w = &problem.weights;
    let mut used_node = vec![false; g.node_count()];
    let mut used_edge = vec![false; g.edge_count()];
    let mut m1: Vec<EdgeId> = Vec::new();
    let mut m2: Vec<EdgeId> = Vec::new();

    for start in g.nodes() {
        if used_node[start.index()] || problem.quotas.get(start) == 0 {
            continue;
        }
        let mut x = start;
        let mut side = 0;
        loop {
            used_node[x.index()] = true;
            // Heaviest unused edge to an unused, quota-positive neighbour.
            let next = g
                .neighbors(x)
                .iter()
                .filter(|&&(y, e)| {
                    !used_edge[e.index()]
                        && !used_node[y.index()]
                        && problem.quotas.get(y) > 0
                })
                .max_by(|&&(_, a), &&(_, b)| w.key(g, a).cmp(&w.key(g, b)))
                .copied();
            let Some((y, e)) = next else { break };
            used_edge[e.index()] = true;
            if side == 0 {
                m1.push(e);
            } else {
                m2.push(e);
            }
            side ^= 1;
            x = y;
        }
    }

    let weight = |edges: &[EdgeId]| -> f64 { edges.iter().map(|&e| w.get_f64(e)).sum() };
    let chosen = if weight(&m1) >= weight(&m2) { m1 } else { m2 };
    // Paths alternate, so each candidate is a valid 1-matching.
    BMatching::from_edges(problem, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lic::{lic, SelectionPolicy};
    use crate::verify;
    use owp_graph::generators::complete;
    use owp_graph::{NodeId, PreferenceTable, Quotas};

    #[test]
    fn global_greedy_equals_lic() {
        for seed in 0..20 {
            let p = Problem::random_gnp(24, 0.35, 2, seed);
            let a = global_greedy(&p);
            let b = lic(&p, SelectionPolicy::InOrder);
            assert!(a.same_edges(&b), "seed {seed}");
        }
    }

    #[test]
    fn all_baselines_valid_and_maximal() {
        for seed in 0..10 {
            let p = Problem::random_gnp(20, 0.4, 3, seed);
            for m in [
                global_greedy(&p),
                random_maximal(&p, seed),
                rank_greedy(&p),
            ] {
                verify::check_valid(&p, &m).expect("valid");
                verify::check_maximal(&p, &m).expect("maximal");
            }
        }
    }

    #[test]
    fn random_maximal_is_seed_deterministic() {
        let p = Problem::random_gnp(20, 0.4, 2, 5);
        assert!(random_maximal(&p, 9).same_edges(&random_maximal(&p, 9)));
    }

    #[test]
    fn greedy_beats_or_ties_random() {
        let mut greedy_wins = 0;
        for seed in 0..20 {
            let p = Problem::random_gnp(30, 0.3, 2, seed);
            let gw = global_greedy(&p).total_weight(&p);
            let rw = random_maximal(&p, seed).total_weight(&p);
            assert!(gw >= rw - 1e-9, "greedy below random at seed {seed}");
            if gw > rw + 1e-9 {
                greedy_wins += 1;
            }
        }
        assert!(greedy_wins > 10, "greedy should usually strictly win");
    }

    #[test]
    fn path_growing_valid_one_to_one() {
        for seed in 0..10 {
            let p = Problem::random_gnp(30, 0.25, 1, seed);
            let m = path_growing(&p);
            verify::check_valid(&p, &m).expect("valid");
            assert!(p.nodes().all(|i| m.degree(i) <= 1));
        }
    }

    #[test]
    #[should_panic(expected = "one-to-one")]
    fn path_growing_rejects_b2() {
        let p = Problem::random_over(complete(6), 2, 1);
        path_growing(&p);
    }

    #[test]
    fn rank_greedy_prefers_mutual_top_choices() {
        // Two nodes ranking each other first must be matched by rank_greedy
        // if both have quota (their edge has rank sum 0 — processed first).
        let g = complete(4);
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        let p = Problem::new(g, prefs, quotas);
        // With id-ordered prefs, 0 and 1 rank each other ~top.
        let m = rank_greedy(&p);
        let e01 = p.graph.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert!(m.contains(e01));
    }
}
