//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no route to a crates
//! registry, so the exact slice of `rand` the workspace consumes is
//! implemented locally: [`RngCore`] / [`Rng`] / [`SeedableRng`], the
//! [`rngs::StdRng`] generator, `gen_range` over half-open and inclusive
//! integer/float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! Two deliberate deviations from the real crate, both irrelevant to this
//! workspace (every consumer seeds explicitly and asserts *properties*, not
//! stream values):
//!
//! * `StdRng` is xoshiro256++ seeded via SplitMix64 rather than ChaCha12 —
//!   deterministic per seed, but a different stream than upstream `rand`;
//! * integer range sampling uses widening multiply rejection-free mapping
//!   (Lemire) without the rejection loop, so the bias is ≤ span/2⁶⁴.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`; integer or `f64`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce one uniform sample. Implemented for the integer
/// and `f64` range types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `0..span` by widening multiply (Lemire).
#[inline]
pub(crate) fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                if span > u64::MAX as u128 {
                    // i128/u128 spans wider than 2^64: two draws.
                    let hi = bounded(rng, (span >> 64) as u64 + 1) as u128;
                    let lo = rng.next_u64() as u128;
                    let v = ((hi << 64) | lo) % span;
                    return (self.start as i128).wrapping_add(v as i128) as $t;
                }
                let v = bounded(rng, span as u64) as i128;
                (self.start as i128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    return (lo as i128).wrapping_add(v as i128) as $t;
                }
                let v = bounded(rng, span as u64) as i128;
                (lo as i128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of upstream `rand` (see crate docs); every use in
    /// this repository seeds explicitly and depends only on determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::Rng;

    /// Slice extension trait: in-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from 10k");
        }
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn takes_dyn(rng: &mut (impl Rng + ?Sized)) -> u32 {
            rng.gen_range(0..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_dyn(&mut rng);
        assert!(v < 100);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.gen_range(5..5);
    }
}
