//! Dead-letter and drop accounting under fault injection.
//!
//! `NetStats` keeps three loss-related counters — `dropped` (random loss
//! from `FaultPlan::drop_probability`), `dead_lettered` (destination had
//! crashed) and `delivered` — and the telemetry stream carries one typed
//! event per outcome. These tests pin the two views to each other and to
//! the conservation law `sent = delivered + dropped + dead_lettered` once
//! the network has drained.

use owp_graph::NodeId;
use owp_simnet::{
    Context, FaultPlan, MessageKind, Payload, Protocol, SimConfig, Simulator, TelemetryEvent,
};

/// A ping every node fires at every other node, several times.
#[derive(Clone, Debug)]
struct Ping;

impl Payload for Ping {
    fn kind(&self) -> MessageKind {
        MessageKind::Other("PING")
    }
}

/// Chatter node: on start, sends `volleys` pings to every other node; echoes
/// nothing back, so total traffic is exactly `n · (n − 1) · volleys`.
struct Chatter {
    id: NodeId,
    n: u32,
    volleys: u32,
    received: u32,
}

impl Protocol for Chatter {
    type Message = Ping;

    fn on_start(&mut self, ctx: &mut Context<Ping>) {
        for _ in 0..self.volleys {
            for peer in 0..self.n {
                if peer != self.id.0 {
                    ctx.send(NodeId(peer), Ping);
                }
            }
        }
    }

    fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<Ping>) {
        self.received += 1;
    }

    fn is_terminated(&self) -> bool {
        true
    }
}

fn run(n: u32, volleys: u32, faults: FaultPlan, seed: u64) -> Simulator<Chatter> {
    let nodes = (0..n)
        .map(|i| Chatter { id: NodeId(i), n, volleys, received: 0 })
        .collect();
    let mut sim = Simulator::new(nodes, SimConfig::with_seed(seed).faults(faults).telemetry());
    sim.start();
    sim.run();
    sim
}

fn count(sim: &Simulator<Chatter>, tag: &str) -> u64 {
    sim.telemetry().with_tag(tag).count() as u64
}

#[test]
fn dead_letters_match_crashed_destinations() {
    // Nodes 1 and 3 are dead from t=0: every ping aimed at them must be
    // dead-lettered, everything else must be delivered.
    let n = 6u64;
    let volleys = 4u64;
    let faults = FaultPlan::none().crash(NodeId(1), 0).crash(NodeId(3), 0);
    let sim = run(n as u32, volleys as u32, faults, 7);
    let stats = sim.stats();

    let senders = n - 2; // crashed nodes crash before on_start fires
    assert_eq!(stats.sent, senders * (n - 1) * volleys);
    // Each live sender aims `volleys` pings at each of the 2 dead nodes.
    assert_eq!(stats.dead_lettered, senders * 2 * volleys);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.delivered, stats.sent - stats.dead_lettered);

    // The telemetry stream tells the same story, event for event…
    assert_eq!(count(&sim, "sent"), stats.sent);
    assert_eq!(count(&sim, "delivered"), stats.delivered);
    assert_eq!(count(&sim, "dead_lettered"), stats.dead_lettered);
    // …and every dead letter names a crashed destination.
    for ev in sim.telemetry().with_tag("dead_lettered") {
        let TelemetryEvent::DeadLettered { to, kind, .. } = ev else {
            panic!("tag filter returned a non-dead-letter event");
        };
        assert!(matches!(to, NodeId(1) | NodeId(3)), "dead letter to live node {to:?}");
        assert_eq!(*kind, MessageKind::Other("PING"));
    }
}

#[test]
fn random_drops_and_dead_letters_conserve_messages() {
    // Both fault classes at once: lossy links plus one crashed node. The
    // partition into delivered/dropped/dead-lettered must be exact, and the
    // per-class counters must equal their telemetry event counts.
    let faults = FaultPlan::with_drop_probability(0.35).crash(NodeId(2), 0);
    let sim = run(8, 3, faults, 42);
    let stats = sim.stats();

    assert_eq!(sim.in_flight(), 0, "network must drain");
    assert_eq!(stats.sent, stats.delivered + stats.dropped + stats.dead_lettered);
    assert!(stats.dropped > 0, "p=0.35 over {} sends must drop something", stats.sent);
    assert!(stats.dead_lettered > 0);

    assert_eq!(count(&sim, "sent"), stats.sent);
    assert_eq!(count(&sim, "delivered"), stats.delivered);
    assert_eq!(count(&sim, "dropped"), stats.dropped);
    assert_eq!(count(&sim, "dead_lettered"), stats.dead_lettered);

    // A message to the crashed node either drops in transit or dead-letters
    // on arrival — it is never delivered.
    for ev in sim.telemetry().deliveries() {
        let TelemetryEvent::Delivered { to, .. } = ev else { unreachable!() };
        assert_ne!(*to, NodeId(2), "delivery to a node that crashed at t=0");
    }
}

#[test]
fn late_crash_splits_the_timeline() {
    // One sender, one receiver that crashes mid-run: deliveries before the
    // crash time, dead letters from then on.
    let crash_at = 3;
    let faults = FaultPlan::none().crash(NodeId(1), crash_at);
    let nodes = vec![
        Chatter { id: NodeId(0), n: 2, volleys: 12, received: 0 },
        Chatter { id: NodeId(1), n: 2, volleys: 0, received: 0 },
    ];
    let mut sim =
        Simulator::new(nodes, SimConfig::with_seed(9).faults(faults).telemetry());
    sim.start();
    sim.run();
    let stats = sim.stats();

    assert_eq!(stats.sent, 12);
    assert_eq!(stats.delivered + stats.dead_lettered, 12);
    for ev in sim.telemetry().events() {
        match *ev {
            TelemetryEvent::Delivered { time, .. } => assert!(time < crash_at),
            TelemetryEvent::DeadLettered { time, .. } => assert!(time >= crash_at),
            _ => {}
        }
    }
}

#[test]
fn no_faults_means_no_losses() {
    let sim = run(5, 2, FaultPlan::none(), 3);
    let stats = sim.stats();
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.dead_lettered, 0);
    assert_eq!(stats.delivered, stats.sent);
    assert_eq!(stats.sent_of(MessageKind::Other("PING")), stats.sent);
    assert_eq!(count(&sim, "dead_lettered"), 0);
}
