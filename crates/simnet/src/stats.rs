//! Network-level statistics collected by the engines.

use std::collections::BTreeMap;

/// Message and event counters for one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetStats {
    /// Messages handed to the network (before loss).
    pub sent: u64,
    /// Messages actually delivered to a handler.
    pub delivered: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Messages discarded because the destination had crashed.
    pub dead_lettered: u64,
    /// Local timer firings (see [`crate::Context::set_timer`]).
    pub timers_fired: u64,
    /// Per-kind sent counts, keyed by [`crate::Payload::kind`].
    pub sent_by_kind: BTreeMap<&'static str, u64>,
    /// Peak size of the in-flight event queue.
    pub peak_in_flight: usize,
}

impl NetStats {
    /// Records a send of a message with the given kind label.
    pub(crate) fn record_send(&mut self, kind: &'static str) {
        self.sent += 1;
        *self.sent_by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Sent count for one kind (0 if never sent).
    pub fn sent_of(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Average messages sent per node.
    pub fn sent_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.sent as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record_send("PROP");
        s.record_send("PROP");
        s.record_send("REJ");
        assert_eq!(s.sent, 3);
        assert_eq!(s.sent_of("PROP"), 2);
        assert_eq!(s.sent_of("REJ"), 1);
        assert_eq!(s.sent_of("NOPE"), 0);
        assert!((s.sent_per_node(3) - 1.0).abs() < 1e-12);
        assert_eq!(s.sent_per_node(0), 0.0);
    }
}
