//! Network-level statistics collected by the engines.

use owp_telemetry::MessageKind;
use std::collections::BTreeMap;

/// Message and event counters for one simulation run.
///
/// Per-kind counters are keyed by the typed [`MessageKind`]: the protocol
/// kinds (PROP/REJ/ACK) live in a flat array indexed by
/// [`MessageKind::fixed_slot`], so the simulator's send path does a single
/// array increment — no string hashing or tree walk per message. Kinds
/// outside the protocol vocabulary ([`MessageKind::Other`]) fall back to a
/// map keyed by their label (cold path; only exercised by non-LID
/// protocols).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetStats {
    /// Messages handed to the network (before loss).
    pub sent: u64,
    /// Messages actually delivered to a handler.
    pub delivered: u64,
    /// Messages dropped by fault injection.
    pub dropped: u64,
    /// Messages discarded because the destination had crashed.
    pub dead_lettered: u64,
    /// Messages cut by an active network partition (counted separately from
    /// random loss so chaos reports can attribute them).
    pub partition_dropped: u64,
    /// Extra copies injected by message duplication.
    pub duplicated: u64,
    /// Messages that skipped the FIFO clamp (reordering fault).
    pub reordered: u64,
    /// Node restarts performed (crash-restart fault plans).
    pub restarts: u64,
    /// Local timer firings (see [`crate::Context::set_timer`]).
    pub timers_fired: u64,
    /// Sent counts of the dedicated protocol kinds, indexed by
    /// [`MessageKind::fixed_slot`].
    sent_fixed: [u64; MessageKind::FIXED],
    /// Sent counts of [`MessageKind::Other`] kinds, keyed by label.
    sent_other: BTreeMap<&'static str, u64>,
    /// Peak size of the in-flight event queue.
    pub peak_in_flight: usize,
}

impl NetStats {
    /// Records a send of a message of the given kind.
    #[inline]
    pub(crate) fn record_send(&mut self, kind: MessageKind) {
        self.sent += 1;
        match kind.fixed_slot() {
            Some(slot) => self.sent_fixed[slot] += 1,
            None => *self.sent_other.entry(kind.label()).or_insert(0) += 1,
        }
    }

    /// Sent count for one kind (0 if never sent).
    #[inline]
    pub fn sent_of(&self, kind: MessageKind) -> u64 {
        match kind.fixed_slot() {
            Some(slot) => self.sent_fixed[slot],
            None => self.sent_other.get(kind.label()).copied().unwrap_or(0),
        }
    }

    /// All per-kind sent counts with non-zero totals, protocol kinds first.
    pub fn sent_by_kind(&self) -> impl Iterator<Item = (MessageKind, u64)> + '_ {
        let fixed = self
            .sent_fixed
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(slot, &c)| {
                (
                    MessageKind::from_fixed_slot(slot).expect("slot within FIXED"),
                    c,
                )
            });
        let other = self
            .sent_other
            .iter()
            .map(|(&label, &c)| (MessageKind::Other(label), c));
        fixed.chain(other)
    }

    /// Average messages sent per node.
    pub fn sent_per_node(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.sent as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record_send(MessageKind::Prop);
        s.record_send(MessageKind::Prop);
        s.record_send(MessageKind::Rej);
        assert_eq!(s.sent, 3);
        assert_eq!(s.sent_of(MessageKind::Prop), 2);
        assert_eq!(s.sent_of(MessageKind::Rej), 1);
        assert_eq!(s.sent_of(MessageKind::Ack), 0);
        assert_eq!(s.sent_of(MessageKind::Other("NOPE")), 0);
        assert!((s.sent_per_node(3) - 1.0).abs() < 1e-12);
        assert_eq!(s.sent_per_node(0), 0.0);
    }

    #[test]
    fn other_kinds_fall_back_to_the_label_map() {
        let mut s = NetStats::default();
        s.record_send(MessageKind::Other("TOKEN"));
        s.record_send(MessageKind::Other("TOKEN"));
        s.record_send(MessageKind::Ack);
        assert_eq!(s.sent_of(MessageKind::Other("TOKEN")), 2);
        assert_eq!(s.sent_of(MessageKind::Ack), 1);
        let by_kind: Vec<(MessageKind, u64)> = s.sent_by_kind().collect();
        assert_eq!(
            by_kind,
            vec![(MessageKind::Ack, 1), (MessageKind::Other("TOKEN"), 2)]
        );
    }
}
