//! The distributed-protocol abstraction.
//!
//! A protocol instance is one state machine per node. The engine (async
//! [`crate::Simulator`] or synchronous [`crate::SyncRunner`]) drives every
//! node through [`Protocol::on_start`] once and [`Protocol::on_message`] for
//! each delivered message; nodes communicate *only* by sending messages
//! through the supplied [`Context`] — exactly the model of the paper's
//! Algorithm 1.

use crate::{NodeId, SimTime};
use owp_telemetry::{MessageKind, NodeEvent};

/// Buffered output of one callback: `(messages, armed timers, emitted
/// protocol events)`.
pub(crate) type CtxParts<M> = (Vec<(NodeId, M)>, Vec<(SimTime, u64)>, Vec<NodeEvent>);

/// A message payload exchanged between protocol nodes.
///
/// `kind` classifies the message (e.g. [`MessageKind::Prop`]) so the
/// engines can aggregate per-kind statistics without knowing protocol
/// internals — a typed enum, so the statistics path never hashes strings.
pub trait Payload: Clone + std::fmt::Debug {
    /// The message class (default: the unlabelled [`MessageKind::Other`]).
    fn kind(&self) -> MessageKind {
        MessageKind::Other("msg")
    }
}

/// A per-node distributed state machine.
pub trait Protocol {
    /// The message type the protocol exchanges.
    type Message: Payload;

    /// Called exactly once at time 0, before any delivery.
    fn on_start(&mut self, ctx: &mut Context<Self::Message>);

    /// Called for every message delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Context<Self::Message>);

    /// Called when a timer set via [`Context::set_timer`] fires. Default:
    /// ignore (protocols without timers never see this).
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<Self::Message>) {
        let _ = (tag, ctx);
    }

    /// Called when the simulator restarts this node after a crash (see
    /// [`crate::faults::FaultPlan::restart`]). The implementation must treat
    /// this as a cold boot: all volatile protocol state is stale, timers
    /// armed before the crash are dead, and any recovery traffic must be
    /// (re-)initiated from here. Default: behave like `on_start`.
    fn on_restart(&mut self, ctx: &mut Context<Self::Message>) {
        self.on_start(ctx);
    }

    /// `true` once this node has locally terminated. Purely observational —
    /// the engines use it for statistics and invariant checks, never for
    /// control flow (a real distributed node cannot be peeked at either).
    fn is_terminated(&self) -> bool {
        false
    }
}

/// Handle through which a node interacts with the network during a callback.
///
/// Sends are buffered and scheduled by the engine after the callback returns;
/// a node can therefore not observe any effect of its own sends within the
/// same callback, mirroring a real asynchronous network interface.
#[derive(Debug)]
pub struct Context<M> {
    node: NodeId,
    now: SimTime,
    outbox: Vec<(NodeId, M)>,
    timers: Vec<(SimTime, u64)>,
    /// Protocol state transitions emitted this callback (drained by the
    /// engine, which stamps node and time). Never allocated unless the
    /// engine enabled telemetry *and* the `telemetry` feature is on.
    events: Vec<NodeEvent>,
    telemetry: bool,
}

impl<M> Context<M> {
    pub(crate) fn new(node: NodeId, now: SimTime) -> Self {
        Self::with_telemetry(node, now, false)
    }

    pub(crate) fn with_telemetry(node: NodeId, now: SimTime, telemetry: bool) -> Self {
        Context {
            node,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            events: Vec::new(),
            telemetry,
        }
    }

    /// A context detached from any engine, for replaying recorded traces
    /// through protocol state machines (and for tests). Everything sent or
    /// emitted through it is the caller's to inspect or discard.
    pub fn detached(node: NodeId, now: SimTime) -> Self {
        Context::new(node, now)
    }

    /// The id of the node this callback runs on.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues `msg` for delivery to `to`. Delivery latency is decided by the
    /// engine's latency model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Number of messages queued so far in this callback.
    pub fn pending(&self) -> usize {
        self.outbox.len()
    }

    /// Arms a local timer: [`Protocol::on_timer`] fires with `tag` after
    /// `delay` ticks (at least 1). Timers are local — they never traverse
    /// the network and are immune to loss. In the synchronous engine a delay
    /// of `d` ticks fires `d` rounds later.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.timers.push((delay.max(1), tag));
    }

    /// Whether the engine is recording protocol events this run. Guard
    /// event *construction* with this when building one is not free.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        cfg!(feature = "telemetry") && self.telemetry
    }

    /// Emits a protocol state transition into the run's event log. The
    /// engine stamps it with this node's id and the current time.
    ///
    /// Without the `telemetry` feature this compiles to nothing; with it
    /// but recording disabled it is one predictable branch.
    #[cfg(feature = "telemetry")]
    #[inline]
    pub fn emit(&mut self, ev: NodeEvent) {
        if self.telemetry {
            self.events.push(ev);
        }
    }

    /// Emits a protocol state transition (no-op: the `telemetry` feature
    /// is disabled, so the emission path is not compiled).
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    pub fn emit(&mut self, _ev: NodeEvent) {}

    pub(crate) fn into_parts(self) -> CtxParts<M> {
        (self.outbox, self.timers, self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Ping;
    impl Payload for Ping {
        fn kind(&self) -> MessageKind {
            MessageKind::Other("PING")
        }
    }

    #[test]
    fn context_buffers_sends() {
        let mut ctx: Context<Ping> = Context::new(NodeId(3), 17);
        assert_eq!(ctx.self_id(), NodeId(3));
        assert_eq!(ctx.now(), 17);
        assert_eq!(ctx.pending(), 0);
        ctx.send(NodeId(1), Ping);
        ctx.send(NodeId(2), Ping);
        assert_eq!(ctx.pending(), 2);
        let (out, timers, events) = ctx.into_parts();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, NodeId(1));
        assert!(timers.is_empty());
        assert!(events.is_empty());
    }

    #[test]
    fn payload_default_kind() {
        #[derive(Clone, Debug)]
        struct Plain;
        impl Payload for Plain {}
        assert_eq!(Plain.kind(), MessageKind::Other("msg"));
        assert_eq!(Ping.kind(), MessageKind::Other("PING"));
    }

    #[test]
    fn emit_respects_the_telemetry_switch() {
        // Telemetry off (default construction): events are discarded and
        // the buffer never allocates, regardless of the feature flag.
        let mut off: Context<Ping> = Context::new(NodeId(0), 0);
        off.emit(NodeEvent::NodeTerminated);
        assert!(!off.telemetry_enabled() || cfg!(feature = "telemetry"));
        let (_, _, events) = off.into_parts();
        assert!(events.is_empty());
        assert_eq!(events.capacity(), 0);

        // Telemetry on: events are captured iff the feature is compiled.
        let mut on: Context<Ping> = Context::with_telemetry(NodeId(0), 0, true);
        on.emit(NodeEvent::EdgeLocked { peer: NodeId(1) });
        let (_, _, events) = on.into_parts();
        assert_eq!(events.len(), usize::from(cfg!(feature = "telemetry")));
    }
}
