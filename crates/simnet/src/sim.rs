//! The asynchronous event-driven simulator.

use crate::faults::{CompiledFaults, FaultPlan};
use crate::latency::LatencyModel;
use crate::link::LinkIndex;
use crate::protocol::{Context, Payload, Protocol};
use crate::stats::NetStats;
use crate::{NodeId, SimTime};
use owp_telemetry::{EventLog, Recorder as _, SpanId, TelemetryEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of one asynchronous run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Link-delay distribution.
    pub latency: LatencyModel,
    /// Enforce per-directed-link FIFO delivery (clamp delivery times so a
    /// later send on the same link never overtakes an earlier one).
    pub fifo: bool,
    /// RNG seed for latency sampling and loss decisions.
    pub seed: u64,
    /// Fault injection plan.
    pub faults: FaultPlan,
    /// Hard stop: abort after this many deliveries (guards against protocol
    /// bugs that never quiesce). `u64::MAX` by default.
    pub max_deliveries: u64,
    /// Record the structured telemetry event log (transport events always;
    /// per-node protocol events too when the `telemetry` feature is
    /// compiled). Off by default: a disabled log costs one branch per
    /// event and performs no allocation.
    pub telemetry: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::unit(),
            fifo: true,
            seed: 0,
            faults: FaultPlan::none(),
            max_deliveries: u64::MAX,
            telemetry: false,
        }
    }
}

impl SimConfig {
    /// Unit-latency config with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Replaces the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables telemetry event recording.
    pub fn telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }
}

/// Why and how a run ended.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunOutcome {
    /// Simulated time of the last delivery.
    pub end_time: SimTime,
    /// Total deliveries performed.
    pub deliveries: u64,
    /// `true` iff the network quiesced (no in-flight messages remain);
    /// `false` iff the `max_deliveries` guard tripped first.
    pub quiescent: bool,
}

struct InFlight<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
    /// Causal span of this message (assigned at send, see `next_span`).
    span: SpanId,
}

enum Pending<M> {
    Msg(InFlight<M>),
    Timer {
        node: NodeId,
        tag: u64,
        /// Span of the delivery whose handler armed the timer; sends from
        /// the timer callback inherit it as their causal parent, so
        /// retransmission chains stay connected in the happens-before DAG.
        parent: Option<SpanId>,
        /// Incarnation of the node when the timer was armed. A timer whose
        /// incarnation no longer matches was armed before a crash-restart
        /// and stays dead (restart wipes volatile state, timers included).
        incarnation: u32,
    },
    /// A crashed node comes back up (crash-restart fault plans).
    Restart { node: NodeId },
}

/// Per-directed-link "last scheduled delivery" store for the FIFO clamp.
///
/// With a known topology ([`Simulator::with_topology`]) the timestamps live
/// in a flat array indexed by dense [`LinkIndex`] slots; without one they
/// fall back to a hash map keyed by `(from, to)` — functionally identical,
/// but one hash per send instead of an array write.
enum LinkClock {
    Dense {
        index: LinkIndex,
        last: Vec<SimTime>,
    },
    Sparse(HashMap<(u32, u32), SimTime>),
}

impl LinkClock {
    /// Clamps `at` so this send does not overtake the previous send on the
    /// same directed link, and records the result as the link's new last
    /// delivery time.
    fn clamp(&mut self, from: NodeId, to: NodeId, mut at: SimTime) -> SimTime {
        let last: &mut SimTime = match self {
            LinkClock::Dense { index, last } => {
                let slot = index.slot(from, to).unwrap_or_else(|| {
                    panic!("with_topology: {from:?} sent to non-neighbour {to:?}")
                });
                &mut last[slot]
            }
            LinkClock::Sparse(map) => map.entry((from.0, to.0)).or_insert(0),
        };
        if at <= *last {
            at = *last + 1;
        }
        *last = at;
        at
    }
}

/// Deterministic discrete-event simulator over a set of [`Protocol`] nodes.
///
/// Events are ordered by `(delivery time, sequence number)`; the sequence
/// number makes simultaneous deliveries resolve in send order, so a run is a
/// pure function of `(nodes, config)`.
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    /// The fault plan compiled against the node count: O(1) crash/restart/
    /// partition/link-loss queries on the delivery path.
    faults: CompiledFaults,
    /// Per-node restart count; timers carry the incarnation they were armed
    /// in and fire only if it still matches.
    incarnation: Vec<u32>,
    config: SimConfig,
    rng: StdRng,
    now: SimTime,
    seq: u64,
    /// Monotone span-id source: every send gets the next id, *including*
    /// dropped sends, and independently of the heap's `seq` (dropped
    /// messages never enter the queue, so reusing `seq` would perturb the
    /// `(time, seq)` tie-breaks of existing seeded runs).
    next_span: u64,
    /// Events ordered by `(delivery time, sequence number)`; the payload
    /// lives in the `payloads` slab at the carried slot.
    queue: BinaryHeap<(Reverse<(SimTime, u64)>, usize)>,
    /// Slab of in-flight payloads: slots are recycled through `free_slots`,
    /// so capacity tracks *peak* in-flight, not total messages sent.
    payloads: Vec<Option<Pending<P::Message>>>,
    free_slots: Vec<usize>,
    /// Last scheduled delivery time per directed link, for FIFO clamping.
    link_clock: LinkClock,
    stats: NetStats,
    log: EventLog,
    started: bool,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over `nodes` (node `i` gets id `i`), with no
    /// topology information (FIFO timestamps in a hash map).
    pub fn new(nodes: Vec<P>, config: SimConfig) -> Self {
        Self::with_clock(nodes, config, LinkClock::Sparse(HashMap::new()))
    }

    /// Creates a simulator whose nodes communicate only along the edges of
    /// `topology` (node `i` of the graph runs `nodes[i]`). The FIFO clamp
    /// then uses a dense per-directed-link array instead of a hash map.
    ///
    /// # Panics
    /// A send to a non-neighbour panics at dispatch time.
    pub fn with_topology(nodes: Vec<P>, config: SimConfig, topology: &owp_graph::Graph) -> Self {
        assert_eq!(
            nodes.len(),
            topology.node_count(),
            "one protocol node per topology node"
        );
        let index = LinkIndex::from_graph(topology);
        let last = vec![0; index.directed_link_count()];
        Self::with_clock(nodes, config, LinkClock::Dense { index, last })
    }

    fn with_clock(nodes: Vec<P>, config: SimConfig, link_clock: LinkClock) -> Self {
        let n = nodes.len();
        let rng = StdRng::seed_from_u64(config.seed);
        let faults = CompiledFaults::compile(&config.faults, n)
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        let log = if config.telemetry {
            EventLog::enabled()
        } else {
            EventLog::disabled()
        };
        Simulator {
            nodes,
            faults,
            incarnation: vec![0; n],
            config,
            rng,
            now: 0,
            seq: 0,
            next_span: 0,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            free_slots: Vec::new(),
            link_clock,
            stats: NetStats::default(),
            log,
            started: false,
        }
    }

    fn make_ctx(&self, node: NodeId, now: SimTime) -> Context<P::Message> {
        Context::with_telemetry(node, now, self.config.telemetry)
    }

    fn schedule(&mut self, at: SimTime, pending: Pending<P::Message>) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.payloads[slot] = Some(pending);
                slot
            }
            None => {
                self.payloads.push(Some(pending));
                self.payloads.len() - 1
            }
        };
        self.queue.push((Reverse((at, seq)), slot));
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.queue.len());
    }

    /// Drains a callback's context. `parent` is the span whose delivery ran
    /// the callback (`None` for `on_start`); every send and armed timer
    /// inherits it as causal parent.
    fn dispatch_ctx(&mut self, from: NodeId, ctx: Context<P::Message>, parent: Option<SpanId>) {
        let (outbox, timers, events) = ctx.into_parts();
        // Protocol state transitions emitted during the callback, stamped
        // with the emitting node and its callback time. `events` is always
        // empty unless the `telemetry` feature compiled `Context::emit`.
        for event in events {
            self.log.record(TelemetryEvent::Node {
                time: self.now,
                node: from,
                event,
            });
        }
        for (delay, tag) in timers {
            let incarnation = self.incarnation[from.index()];
            self.schedule(
                self.now + delay,
                Pending::Timer { node: from, tag, parent, incarnation },
            );
        }
        for (to, msg) in outbox {
            assert!(
                to.index() < self.nodes.len(),
                "send to unknown node {to:?}"
            );
            assert!(to != from, "node {from:?} sent a message to itself");
            let kind = msg.kind();
            let span = SpanId(self.next_span);
            self.next_span += 1;
            self.stats.record_send(kind);
            self.log.record(TelemetryEvent::Sent {
                time: self.now,
                from,
                to,
                kind,
            });
            self.log.record(TelemetryEvent::SpanSent {
                time: self.now,
                span,
                parent,
                from,
                to,
                kind,
            });

            // Partition cut: deterministic (no RNG draw), decided at send
            // time so plans without partitions keep the exact RNG stream of
            // pre-partition seeded runs.
            if self.faults.cut_at(from, to, self.now) {
                self.stats.partition_dropped += 1;
                self.log.record(TelemetryEvent::Dropped {
                    time: self.now,
                    from,
                    to,
                    kind,
                });
                self.log.record(TelemetryEvent::SpanDropped { time: self.now, span });
                continue;
            }

            // Loss: the per-link override if one exists, else the global
            // drop probability. The draw only happens when the effective
            // probability is non-zero, exactly as before.
            let loss = self.faults.loss(from, to);
            if loss > 0.0 && self.rng.gen_range(0.0..1.0) < loss {
                self.stats.dropped += 1;
                self.log.record(TelemetryEvent::Dropped {
                    time: self.now,
                    from,
                    to,
                    kind,
                });
                self.log.record(TelemetryEvent::SpanDropped { time: self.now, span });
                continue;
            }

            let mut at = self.now + self.config.latency.sample(&mut self.rng);
            // Reordering fault: the message skips the per-link FIFO clamp
            // and may overtake earlier traffic (explicitly violating the
            // paper's channel assumption). Draws happen only when the fault
            // is configured, preserving existing seeded RNG streams.
            let reorder = self.faults.reorder_probability > 0.0
                && self.rng.gen_range(0.0..1.0) < self.faults.reorder_probability;
            if reorder {
                self.stats.reordered += 1;
            } else if self.config.fifo {
                at = self.link_clock.clamp(from, to, at);
            }
            // Duplication fault: an extra copy with its own span and an
            // independent latency draw (so the copy can arrive long after —
            // or, on a reordered link, before — the original).
            let duplicate = self.faults.duplicate_probability > 0.0
                && self.rng.gen_range(0.0..1.0) < self.faults.duplicate_probability;
            let copy = if duplicate { Some(msg.clone()) } else { None };
            self.schedule(at, Pending::Msg(InFlight { from, to, msg, span }));
            if let Some(copy) = copy {
                let dspan = SpanId(self.next_span);
                self.next_span += 1;
                self.stats.duplicated += 1;
                self.log.record(TelemetryEvent::Sent {
                    time: self.now,
                    from,
                    to,
                    kind,
                });
                self.log.record(TelemetryEvent::SpanSent {
                    time: self.now,
                    span: dspan,
                    parent,
                    from,
                    to,
                    kind,
                });
                let mut dat = self.now + self.config.latency.sample(&mut self.rng);
                if self.config.fifo {
                    dat = self.link_clock.clamp(from, to, dat);
                }
                self.schedule(dat, Pending::Msg(InFlight { from, to, msg: copy, span: dspan }));
            }
        }
    }

    /// Runs every node's `on_start` (at time 0) if not already done.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            if self.faults.down_at(id, 0) {
                continue;
            }
            let mut ctx = self.make_ctx(id, 0);
            self.nodes[i].on_start(&mut ctx);
            self.dispatch_ctx(id, ctx, None);
        }
        // Restart events enter the queue only when the plan schedules them,
        // so plans without restarts keep their exact `(time, seq)` order.
        let restarts: Vec<(NodeId, SimTime)> = self.faults.restarts().collect();
        for (node, at) in restarts {
            self.schedule(at, Pending::Restart { node });
        }
    }

    /// Delivers a single event (message or timer). Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some((Reverse((at, _)), slot)) = self.queue.pop() else {
            return false;
        };
        let pending = self.payloads[slot]
            .take()
            .expect("queued event has a payload");
        self.free_slots.push(slot);
        self.now = at;

        match pending {
            Pending::Timer { node, tag, parent, incarnation } => {
                // A timer is dead if its node is down, or if it was armed in
                // a previous incarnation (armed before a crash-restart).
                if self.faults.down_at(node, at) || incarnation != self.incarnation[node.index()]
                {
                    return true;
                }
                self.stats.timers_fired += 1;
                self.log.record(TelemetryEvent::TimerFired {
                    time: at,
                    node,
                    tag,
                });
                let mut ctx = self.make_ctx(node, at);
                self.nodes[node.index()].on_timer(tag, &mut ctx);
                self.dispatch_ctx(node, ctx, parent);
            }
            Pending::Restart { node } => {
                // The node comes back with no volatile state: bump the
                // incarnation (killing pre-crash timers) and let the
                // protocol re-enter via its recovery hook. Sends from the
                // recovery callback are new causal roots.
                self.incarnation[node.index()] += 1;
                self.stats.restarts += 1;
                self.log.record(TelemetryEvent::Restarted { time: at, node });
                let mut ctx = self.make_ctx(node, at);
                self.nodes[node.index()].on_restart(&mut ctx);
                self.dispatch_ctx(node, ctx, None);
            }
            Pending::Msg(InFlight { from, to, msg, span }) => {
                // Crash handling: a node is dead from its crash time until
                // its restart (if any).
                if self.faults.down_at(to, at) {
                    self.stats.dead_lettered += 1;
                    self.log.record(TelemetryEvent::DeadLettered {
                        time: at,
                        from,
                        to,
                        kind: msg.kind(),
                    });
                    self.log.record(TelemetryEvent::SpanDeadLettered { time: at, span });
                    return true;
                }

                self.stats.delivered += 1;
                self.log.record(TelemetryEvent::Delivered {
                    time: at,
                    from,
                    to,
                    kind: msg.kind(),
                });
                self.log.record(TelemetryEvent::SpanDelivered { time: at, span });
                let mut ctx = self.make_ctx(to, at);
                self.nodes[to.index()].on_message(from, msg, &mut ctx);
                self.dispatch_ctx(to, ctx, Some(span));
            }
        }
        true
    }

    /// Runs to quiescence (or until the delivery guard trips).
    ///
    /// `RunOutcome::deliveries` counts messages actually handed to handlers;
    /// dead-lettered messages advance time but are not deliveries.
    pub fn run(&mut self) -> RunOutcome {
        self.start();
        while self.stats.delivered + self.stats.timers_fired < self.config.max_deliveries {
            if !self.step() {
                return RunOutcome {
                    end_time: self.now,
                    deliveries: self.stats.delivered,
                    quiescent: true,
                };
            }
        }
        RunOutcome {
            end_time: self.now,
            deliveries: self.stats.delivered,
            quiescent: self.queue.is_empty(),
        }
    }

    /// Immutable access to node `i`'s protocol state (post-run inspection).
    pub fn node(&self, i: NodeId) -> &P {
        &self.nodes[i.index()]
    }

    /// Iterator over all node states.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The recorded telemetry log (empty unless `config.telemetry`).
    pub fn telemetry(&self) -> &EventLog {
        &self.log
    }

    /// Takes ownership of the telemetry log (leaves an empty disabled one).
    pub fn take_telemetry(&mut self) -> EventLog {
        std::mem::take(&mut self.log)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of in-flight events (undelivered messages plus armed timers).
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Fraction of nodes whose `is_terminated` is `true`.
    pub fn terminated_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        self.nodes.iter().filter(|n| n.is_terminated()).count() as f64 / self.nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Payload;
    use owp_telemetry::MessageKind;

    /// Token-ring protocol: node 0 starts a token that makes `hops` hops.
    #[derive(Clone, Debug)]
    struct Token {
        remaining: u32,
    }
    impl Payload for Token {
        fn kind(&self) -> MessageKind {
            MessageKind::Other("TOKEN")
        }
    }

    struct RingNode {
        id: NodeId,
        n: usize,
        seen: u32,
        hops: u32,
        done: bool,
    }

    impl Protocol for RingNode {
        type Message = Token;

        fn on_start(&mut self, ctx: &mut Context<Token>) {
            if self.id == NodeId(0) && self.hops > 0 {
                let next = NodeId(((self.id.0 as usize + 1) % self.n) as u32);
                ctx.send(
                    next,
                    Token {
                        remaining: self.hops - 1,
                    },
                );
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
            self.seen += 1;
            if msg.remaining > 0 {
                let next = NodeId(((self.id.0 as usize + 1) % self.n) as u32);
                ctx.send(
                    next,
                    Token {
                        remaining: msg.remaining - 1,
                    },
                );
            } else {
                self.done = true;
            }
        }

        fn is_terminated(&self) -> bool {
            self.done
        }
    }

    fn ring(n: usize, hops: u32) -> Vec<RingNode> {
        (0..n)
            .map(|i| RingNode {
                id: NodeId(i as u32),
                n,
                seen: 0,
                hops,
                done: false,
            })
            .collect()
    }

    #[test]
    fn token_ring_quiesces_with_exact_counts() {
        let mut sim = Simulator::new(ring(5, 12), SimConfig::with_seed(1));
        let out = sim.run();
        assert!(out.quiescent);
        assert_eq!(out.deliveries, 12);
        assert_eq!(sim.stats().sent, 12);
        assert_eq!(sim.stats().sent_of(MessageKind::Other("TOKEN")), 12);
        let total_seen: u32 = sim.nodes().map(|n| n.seen).sum();
        assert_eq!(total_seen, 12);
    }

    #[test]
    fn constant_latency_time_is_hops() {
        let cfg = SimConfig::with_seed(2).latency(LatencyModel::Constant { ticks: 3 });
        let mut sim = Simulator::new(ring(4, 8), cfg);
        let out = sim.run();
        assert_eq!(out.end_time, 8 * 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| {
            let cfg = SimConfig::with_seed(seed)
                .latency(LatencyModel::Exponential { mean: 7.0 })
                .telemetry();
            let mut sim = Simulator::new(ring(6, 30), cfg);
            let out = sim.run();
            (out, sim.telemetry().events().to_vec())
        };
        let (o1, t1) = run(42);
        let (o2, t2) = run(42);
        assert_eq!(o1, o2);
        assert_eq!(t1, t2);
        let (o3, _) = run(43);
        // Different seed almost surely gives a different end time.
        assert!(o1.end_time != o3.end_time || o1.deliveries == o3.deliveries);
    }

    #[test]
    fn max_deliveries_guard() {
        let cfg = SimConfig {
            max_deliveries: 5,
            ..SimConfig::with_seed(3)
        };
        let mut sim = Simulator::new(ring(4, 100), cfg);
        let out = sim.run();
        assert!(!out.quiescent);
        assert_eq!(out.deliveries, 5);
    }

    #[test]
    fn message_loss_kills_the_token() {
        let cfg = SimConfig::with_seed(4).faults(FaultPlan::with_drop_probability(1.0));
        let mut sim = Simulator::new(ring(4, 10), cfg);
        let out = sim.run();
        assert!(out.quiescent);
        assert_eq!(out.deliveries, 0);
        assert_eq!(sim.stats().dropped, 1); // the initial send was dropped
    }

    #[test]
    fn crashed_node_dead_letters() {
        // Node 1 crashes at t=0; the token dies there.
        let cfg = SimConfig::with_seed(5)
            .faults(FaultPlan::none().crash(NodeId(1), 0))
            .telemetry();
        let mut sim = Simulator::new(ring(4, 10), cfg);
        let out = sim.run();
        assert!(out.quiescent);
        assert_eq!(sim.stats().dead_lettered, 1);
        assert_eq!(out.deliveries, 0);
        // Dead letters are recorded as their own event class, not drops.
        assert_eq!(sim.telemetry().with_tag("dead_lettered").count(), 1);
        assert_eq!(sim.telemetry().with_tag("dropped").count(), 0);
    }

    #[test]
    fn fifo_preserves_link_order() {
        // A node that sends 20 messages to one peer in a single callback;
        // with FIFO they must arrive in send order even under random latency.
        struct Burst {
            id: NodeId,
            received: Vec<u32>,
        }
        #[derive(Clone, Debug)]
        struct Seq(u32);
        impl Payload for Seq {}
        impl Protocol for Burst {
            type Message = Seq;
            fn on_start(&mut self, ctx: &mut Context<Seq>) {
                if self.id == NodeId(0) {
                    for k in 0..20 {
                        ctx.send(NodeId(1), Seq(k));
                    }
                }
            }
            fn on_message(&mut self, _from: NodeId, msg: Seq, _ctx: &mut Context<Seq>) {
                self.received.push(msg.0);
            }
        }
        let nodes = vec![
            Burst {
                id: NodeId(0),
                received: vec![],
            },
            Burst {
                id: NodeId(1),
                received: vec![],
            },
        ];
        let cfg = SimConfig::with_seed(6).latency(LatencyModel::Uniform { lo: 1, hi: 50 });
        let mut sim = Simulator::new(nodes, cfg);
        sim.run();
        let got = &sim.node(NodeId(1)).received;
        assert_eq!(*got, (0..20).collect::<Vec<_>>());
    }

    /// Retry protocol: node 0 keeps pinging node 1 every 10 ticks until it
    /// hears back; node 1 answers only the third ping.
    struct Retry {
        id: NodeId,
        pings_seen: u32,
        done: bool,
    }
    #[derive(Clone, Debug)]
    enum RetryMsg {
        Ping,
        Pong,
    }
    impl Payload for RetryMsg {
        fn kind(&self) -> MessageKind {
            match self {
                RetryMsg::Ping => MessageKind::Other("PING"),
                RetryMsg::Pong => MessageKind::Other("PONG"),
            }
        }
    }
    impl Protocol for Retry {
        type Message = RetryMsg;
        fn on_start(&mut self, ctx: &mut Context<RetryMsg>) {
            if self.id == NodeId(0) {
                ctx.send(NodeId(1), RetryMsg::Ping);
                ctx.set_timer(10, 0);
            }
        }
        fn on_message(&mut self, from: NodeId, msg: RetryMsg, ctx: &mut Context<RetryMsg>) {
            match msg {
                RetryMsg::Ping => {
                    self.pings_seen += 1;
                    if self.pings_seen >= 3 {
                        ctx.send(from, RetryMsg::Pong);
                    }
                }
                RetryMsg::Pong => self.done = true,
            }
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut Context<RetryMsg>) {
            if !self.done {
                ctx.send(NodeId(1), RetryMsg::Ping);
                ctx.set_timer(10, 0);
            }
        }
        fn is_terminated(&self) -> bool {
            self.id != NodeId(0) || self.done
        }
    }

    fn retry_nodes() -> Vec<Retry> {
        (0..2)
            .map(|i| Retry {
                id: NodeId(i),
                pings_seen: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn timers_drive_retransmission_to_completion() {
        let cfg = SimConfig::with_seed(1).telemetry();
        let mut sim = Simulator::new(retry_nodes(), cfg);
        let out = sim.run();
        assert!(out.quiescent);
        assert!(sim.node(NodeId(0)).done);
        assert_eq!(sim.node(NodeId(1)).pings_seen, 3);
        assert_eq!(sim.stats().sent_of(MessageKind::Other("PING")), 3);
        assert_eq!(sim.stats().sent_of(MessageKind::Other("PONG")), 1);
        // Two timers fired and re-armed; the third finds done=true and stops
        // re-arming, so exactly 3 timer firings happen before quiescence.
        assert_eq!(sim.stats().timers_fired, 3);
        assert_eq!(sim.telemetry().with_tag("timer_fired").count(), 3);
        assert_eq!(sim.telemetry().deliveries().count(), 4);
    }

    #[test]
    fn timers_survive_message_loss() {
        // Drop 100% of nothing... rather: drop first sends deterministically
        // is not expressible; use 50% loss and verify the retry loop still
        // finishes (timers are local and lossless).
        let cfg = SimConfig::with_seed(33).faults(FaultPlan::with_drop_probability(0.5));
        let mut sim = Simulator::new(retry_nodes(), cfg);
        let out = sim.run();
        assert!(out.quiescent);
        assert!(sim.node(NodeId(0)).done, "retransmission defeats loss");
    }

    #[test]
    fn crashed_node_timers_do_not_fire() {
        let cfg = SimConfig::with_seed(2).faults(FaultPlan::none().crash(NodeId(0), 5));
        let mut sim = Simulator::new(retry_nodes(), cfg);
        sim.run();
        // Node 0 crashed before its first timer (t=10): no retransmissions.
        assert_eq!(sim.stats().sent_of(MessageKind::Other("PING")), 1);
        assert_eq!(sim.stats().timers_fired, 0);
    }

    #[test]
    fn terminated_fraction_reports() {
        let mut sim = Simulator::new(ring(4, 4), SimConfig::with_seed(7));
        assert_eq!(sim.terminated_fraction(), 0.0);
        sim.run();
        assert_eq!(sim.terminated_fraction(), 0.25); // exactly one node saw remaining=0
    }

    #[test]
    fn token_ring_causal_chain_is_one_certified_path() {
        use owp_telemetry::CausalDag;
        let cfg = SimConfig::with_seed(1).telemetry();
        let mut sim = Simulator::new(ring(5, 12), cfg);
        sim.run();
        let dag = CausalDag::from_log(sim.telemetry());
        // Every hop is caused by the previous delivery: one root, one chain.
        assert_eq!(dag.len(), 12);
        assert_eq!(dag.roots(), 1);
        assert!(dag.is_certified(), "live traces always certify (Lemma 5)");
        assert_eq!(dag.critical_path_len(), 12);
        assert_eq!(dag.max_fanout(), 1);
        let path = dag.critical_path();
        assert_eq!(path.end_time, sim.now());
        assert_eq!(path.total_latency(), sim.now());
    }

    #[test]
    fn timer_sends_inherit_the_arming_parent() {
        use owp_telemetry::{CausalDag, MessageKind};
        let cfg = SimConfig::with_seed(1).telemetry();
        let mut sim = Simulator::new(retry_nodes(), cfg);
        sim.run();
        let dag = CausalDag::from_log(sim.telemetry());
        assert!(dag.is_certified());
        // The initial ping and the timer-driven retransmissions are all
        // roots (the timer chain was armed from on_start), while the PONG
        // is caused by the third delivered PING.
        let pings: Vec<_> = dag
            .spans()
            .iter()
            .filter(|s| s.kind == MessageKind::Other("PING"))
            .collect();
        assert_eq!(pings.len(), 3);
        assert!(pings.iter().all(|s| s.parent.is_none()));
        let pong = dag
            .spans()
            .iter()
            .find(|s| s.kind == MessageKind::Other("PONG"))
            .expect("pong span");
        assert_eq!(pong.parent, Some(pings[2].span));
        assert_eq!(dag.kind_fanout().get(&("PING", "PONG")), Some(&1));
    }

    #[test]
    fn dropped_and_dead_lettered_spans_are_accounted() {
        use owp_telemetry::{CausalDag, SpanOutcome};
        let cfg = SimConfig::with_seed(4)
            .faults(FaultPlan::with_drop_probability(1.0))
            .telemetry();
        let mut sim = Simulator::new(ring(4, 10), cfg);
        sim.run();
        let dag = CausalDag::from_log(sim.telemetry());
        assert_eq!(dag.len(), 1);
        assert_eq!(dag.spans()[0].outcome, SpanOutcome::Dropped);
        assert!(dag.is_certified());

        let cfg = SimConfig::with_seed(5)
            .faults(FaultPlan::none().crash(NodeId(1), 0))
            .telemetry();
        let mut sim = Simulator::new(ring(4, 10), cfg);
        sim.run();
        let dag = CausalDag::from_log(sim.telemetry());
        assert_eq!(dag.spans()[0].outcome, SpanOutcome::DeadLettered);
        assert!(dag.is_certified());
    }

    #[test]
    fn partition_cuts_then_heals() {
        // Node 0 is partitioned off for t in [0, 15): the pings at t=0 and
        // t=10 are cut, the retransmissions from t=20 get through and the
        // protocol still completes (the paper's liveness needs the heal).
        let cfg = SimConfig::with_seed(8)
            .faults(FaultPlan::none().partition(vec![NodeId(0)], 0, 15))
            .telemetry();
        let mut sim = Simulator::new(retry_nodes(), cfg);
        let out = sim.run();
        assert!(out.quiescent);
        assert!(sim.node(NodeId(0)).done, "retransmission defeats the cut");
        assert_eq!(sim.stats().partition_dropped, 2);
        assert_eq!(sim.stats().dropped, 0, "cuts are not counted as random loss");
        // Cut spans still get a terminal outcome so the causal DAG certifies.
        use owp_telemetry::CausalDag;
        assert!(CausalDag::from_log(sim.telemetry()).is_certified());
    }

    #[test]
    fn asymmetric_link_loss_is_directional() {
        // 0 -> 1 always drops; 1 -> 0 is perfect. The ping never arrives,
        // the retry loop never hears back, max_deliveries stops the run.
        let cfg = SimConfig {
            max_deliveries: 50,
            ..SimConfig::with_seed(9)
                .faults(FaultPlan::none().link_loss(NodeId(0), NodeId(1), 1.0))
        };
        let mut sim = Simulator::new(retry_nodes(), cfg);
        sim.run();
        assert!(!sim.node(NodeId(0)).done);
        assert_eq!(sim.node(NodeId(1)).pings_seen, 0);
        assert!(sim.stats().dropped > 0);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        struct Burst {
            id: NodeId,
            received: u32,
        }
        #[derive(Clone, Debug)]
        struct One;
        impl Payload for One {}
        impl Protocol for Burst {
            type Message = One;
            fn on_start(&mut self, ctx: &mut Context<One>) {
                if self.id == NodeId(0) {
                    for _ in 0..5 {
                        ctx.send(NodeId(1), One);
                    }
                }
            }
            fn on_message(&mut self, _from: NodeId, _msg: One, _ctx: &mut Context<One>) {
                self.received += 1;
            }
        }
        let nodes = vec![
            Burst { id: NodeId(0), received: 0 },
            Burst { id: NodeId(1), received: 0 },
        ];
        let cfg = SimConfig::with_seed(10)
            .faults(FaultPlan::none().duplicate(1.0))
            .telemetry();
        let mut sim = Simulator::new(nodes, cfg);
        let out = sim.run();
        assert_eq!(sim.stats().sent, 5, "protocol-level sends are unchanged");
        assert_eq!(sim.stats().duplicated, 5);
        assert_eq!(out.deliveries, 10);
        assert_eq!(sim.node(NodeId(1)).received, 10);
        // Every copy has its own span with a proper outcome.
        use owp_telemetry::CausalDag;
        let dag = CausalDag::from_log(sim.telemetry());
        assert_eq!(dag.len(), 10);
        assert!(dag.is_certified());
    }

    #[test]
    fn reordering_violates_fifo_order() {
        struct Burst {
            id: NodeId,
            received: Vec<u32>,
        }
        #[derive(Clone, Debug)]
        struct Seq(u32);
        impl Payload for Seq {}
        impl Protocol for Burst {
            type Message = Seq;
            fn on_start(&mut self, ctx: &mut Context<Seq>) {
                if self.id == NodeId(0) {
                    for k in 0..20 {
                        ctx.send(NodeId(1), Seq(k));
                    }
                }
            }
            fn on_message(&mut self, _from: NodeId, msg: Seq, _ctx: &mut Context<Seq>) {
                self.received.push(msg.0);
            }
        }
        let mk = || {
            vec![
                Burst { id: NodeId(0), received: vec![] },
                Burst { id: NodeId(1), received: vec![] },
            ]
        };
        let cfg = SimConfig::with_seed(6)
            .latency(LatencyModel::Uniform { lo: 1, hi: 50 })
            .faults(FaultPlan::none().reorder(1.0));
        let mut sim = Simulator::new(mk(), cfg);
        sim.run();
        assert_eq!(sim.stats().reordered, 20);
        let got = sim.node(NodeId(1)).received.clone();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "all messages arrive");
        assert_ne!(got, sorted, "but not in send order: FIFO was violated");
    }

    #[test]
    fn crash_restart_reenters_via_on_restart() {
        // Node 0 crashes at t=5 (after its first ping, before its first
        // timer) and restarts at t=35. The default on_restart re-runs
        // on_start: a fresh ping plus a fresh retransmission timer, so the
        // protocol still completes. Pre-crash timers must stay dead.
        let cfg = SimConfig::with_seed(11)
            .faults(FaultPlan::none().crash(NodeId(0), 5).restart(NodeId(0), 35))
            .telemetry();
        let mut sim = Simulator::new(retry_nodes(), cfg);
        let out = sim.run();
        assert!(out.quiescent);
        assert_eq!(sim.stats().restarts, 1);
        assert!(sim.node(NodeId(0)).done, "restart recovers the protocol");
        assert_eq!(sim.node(NodeId(1)).pings_seen, 3);
        assert_eq!(sim.telemetry().with_tag("restarted").count(), 1);
        // Pings: one pre-crash, one from on_restart, one from the restarted
        // incarnation's timer. The pre-crash timer chain never fires.
        assert_eq!(sim.stats().sent_of(MessageKind::Other("PING")), 3);
        assert_eq!(sim.stats().timers_fired, 2);
    }

    #[test]
    fn node_crashed_at_zero_can_restart_later() {
        // Node 0 is down from the start; it never runs on_start, but its
        // restart at t=20 boots it via on_restart and the run completes.
        let cfg = SimConfig::with_seed(12)
            .faults(FaultPlan::none().crash(NodeId(0), 0).restart(NodeId(0), 20));
        let mut sim = Simulator::new(retry_nodes(), cfg);
        let out = sim.run();
        assert!(out.quiescent);
        assert!(sim.node(NodeId(0)).done);
        assert_eq!(sim.stats().restarts, 1);
    }

    #[test]
    fn composed_faults_are_deterministic() {
        let run = |seed: u64| {
            let plan = FaultPlan::with_drop_probability(0.1)
                .duplicate(0.2)
                .reorder(0.2)
                .link_loss(NodeId(0), NodeId(1), 0.3)
                .partition(vec![NodeId(0)], 3, 9)
                .crash(NodeId(0), 12)
                .restart(NodeId(0), 30);
            let cfg = SimConfig {
                max_deliveries: 500,
                ..SimConfig::with_seed(seed)
                    .latency(LatencyModel::Uniform { lo: 1, hi: 9 })
                    .faults(plan)
                    .telemetry()
            };
            let mut sim = Simulator::new(retry_nodes(), cfg);
            let out = sim.run();
            (out, sim.stats().clone(), sim.telemetry().to_jsonl())
        };
        let a = run(77);
        let b = run(77);
        assert_eq!(a, b, "composed fault plans replay byte-identically");
    }

    #[test]
    fn disabled_telemetry_stays_unallocated() {
        let mut sim = Simulator::new(ring(5, 40), SimConfig::with_seed(9));
        sim.run();
        assert!(sim.telemetry().is_empty());
        assert_eq!(sim.telemetry().events_capacity(), 0);
    }
}
