//! Synchronous-round execution of a [`Protocol`].
//!
//! In round `r`, every message sent during round `r − 1` is delivered (in a
//! deterministic order: by sender id, then send order). This is the classic
//! LOCAL/CONGEST-style round model; the experiment suite uses it to report
//! *round complexity*, which is latency-model-free.

use crate::protocol::{Context, Payload, Protocol};
use crate::stats::NetStats;
use crate::NodeId;
use owp_telemetry::{EventLog, Recorder as _, SpanId, TelemetryEvent};

/// Outcome of a synchronous run.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SyncOutcome {
    /// Number of rounds executed (round 0 = `on_start`).
    pub rounds: u64,
    /// `true` iff no messages were pending when the run stopped.
    pub quiescent: bool,
}

/// Synchronous-round engine. Nodes are driven in lock-step rounds.
pub struct SyncRunner<P: Protocol> {
    nodes: Vec<P>,
    /// Messages to deliver next round: `(from, to, msg, span)`.
    pending: Vec<(NodeId, NodeId, P::Message, SpanId)>,
    /// Armed timers: `(fire round, node, tag, causal parent at arm time)`.
    timers: Vec<(u64, NodeId, u64, Option<SpanId>)>,
    stats: NetStats,
    log: EventLog,
    telemetry: bool,
    /// Monotone span-id source (mirrors the asynchronous engine).
    next_span: u64,
    rounds: u64,
    max_rounds: u64,
    started: bool,
}

impl<P: Protocol> SyncRunner<P> {
    /// Creates a runner over `nodes` (node `i` gets id `i`).
    pub fn new(nodes: Vec<P>) -> Self {
        SyncRunner {
            nodes,
            pending: Vec::new(),
            timers: Vec::new(),
            stats: NetStats::default(),
            log: EventLog::disabled(),
            telemetry: false,
            next_span: 0,
            rounds: 0,
            max_rounds: 1_000_000,
            started: false,
        }
    }

    /// Sets the round guard (default 1 000 000).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables telemetry event recording. Event times are round numbers.
    pub fn with_telemetry(mut self) -> Self {
        self.log = EventLog::enabled();
        self.telemetry = true;
        self
    }

    #[allow(clippy::too_many_arguments)]
    fn collect(
        stats: &mut NetStats,
        log: &mut EventLog,
        pending: &mut Vec<(NodeId, NodeId, P::Message, SpanId)>,
        timers: &mut Vec<(u64, NodeId, u64, Option<SpanId>)>,
        next_span: &mut u64,
        round: u64,
        from: NodeId,
        ctx: Context<P::Message>,
        parent: Option<SpanId>,
        n: usize,
    ) {
        let (outbox, new_timers, events) = ctx.into_parts();
        // Always empty unless the `telemetry` feature compiled `emit`.
        for event in events {
            log.record(TelemetryEvent::Node {
                time: round,
                node: from,
                event,
            });
        }
        for (delay, tag) in new_timers {
            timers.push((round + delay, from, tag, parent));
        }
        for (to, msg) in outbox {
            assert!(to.index() < n, "send to unknown node {to:?}");
            assert!(to != from, "node {from:?} sent a message to itself");
            let kind = msg.kind();
            let span = SpanId(*next_span);
            *next_span += 1;
            stats.record_send(kind);
            log.record(TelemetryEvent::Sent {
                time: round,
                from,
                to,
                kind,
            });
            log.record(TelemetryEvent::SpanSent {
                time: round,
                span,
                parent,
                from,
                to,
                kind,
            });
            pending.push((from, to, msg, span));
        }
    }

    /// Runs `on_start` on every node (round 0).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let n = self.nodes.len();
        for i in 0..n {
            let id = NodeId(i as u32);
            let mut ctx = Context::with_telemetry(id, 0, self.telemetry);
            self.nodes[i].on_start(&mut ctx);
            Self::collect(
                &mut self.stats,
                &mut self.log,
                &mut self.pending,
                &mut self.timers,
                &mut self.next_span,
                0,
                id,
                ctx,
                None,
                n,
            );
        }
    }

    /// Delivers one full round of messages (plus due timers). Returns
    /// `false` when idle. If only future timers remain, rounds skip forward
    /// to the earliest firing.
    pub fn round(&mut self) -> bool {
        self.start();
        if self.pending.is_empty() && self.timers.is_empty() {
            return false;
        }
        self.rounds += 1;
        // Fast-forward across empty rounds to the next armed timer.
        if self.pending.is_empty() {
            let earliest = self
                .timers
                .iter()
                .map(|&(r, _, _, _)| r)
                .min()
                .expect("timers non-empty");
            self.rounds = self.rounds.max(earliest);
        }
        let n = self.nodes.len();
        let round = self.rounds;

        let mut batch = std::mem::take(&mut self.pending);
        // Deterministic delivery order: sender id, then send sequence (stable
        // sort keeps per-sender order — the FIFO property).
        batch.sort_by_key(|&(from, _, _, _)| from);
        for (from, to, msg, span) in batch {
            self.stats.delivered += 1;
            self.log.record(TelemetryEvent::Delivered {
                time: round,
                from,
                to,
                kind: msg.kind(),
            });
            self.log.record(TelemetryEvent::SpanDelivered { time: round, span });
            let mut ctx = Context::with_telemetry(to, round, self.telemetry);
            self.nodes[to.index()].on_message(from, msg, &mut ctx);
            Self::collect(
                &mut self.stats,
                &mut self.log,
                &mut self.pending,
                &mut self.timers,
                &mut self.next_span,
                round,
                to,
                ctx,
                Some(span),
                n,
            );
        }

        // Fire due timers (armed before this round), in (node, tag) order.
        let mut due: Vec<(u64, NodeId, u64, Option<SpanId>)> = Vec::new();
        self.timers.retain(|&t| {
            if t.0 <= round {
                due.push(t);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(r, node, tag, _)| (r, node, tag));
        for (_, node, tag, parent) in due {
            self.stats.timers_fired += 1;
            self.log.record(TelemetryEvent::TimerFired {
                time: round,
                node,
                tag,
            });
            let mut ctx = Context::with_telemetry(node, round, self.telemetry);
            self.nodes[node.index()].on_timer(tag, &mut ctx);
            Self::collect(
                &mut self.stats,
                &mut self.log,
                &mut self.pending,
                &mut self.timers,
                &mut self.next_span,
                round,
                node,
                ctx,
                parent,
                n,
            );
        }
        true
    }

    /// Runs rounds until quiescence or the round guard trips.
    pub fn run(&mut self) -> SyncOutcome {
        self.start();
        while self.rounds < self.max_rounds {
            if !self.round() {
                return SyncOutcome {
                    rounds: self.rounds,
                    quiescent: true,
                };
            }
        }
        SyncOutcome {
            rounds: self.rounds,
            quiescent: self.pending.is_empty() && self.timers.is_empty(),
        }
    }

    /// Immutable access to node `i`'s state.
    pub fn node(&self, i: NodeId) -> &P {
        &self.nodes[i.index()]
    }

    /// Iterator over all node states.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// Network statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The recorded telemetry log (empty unless enabled).
    pub fn telemetry(&self) -> &EventLog {
        &self.log
    }

    /// Takes ownership of the telemetry log (leaves an empty disabled one).
    pub fn take_telemetry(&mut self) -> EventLog {
        std::mem::take(&mut self.log)
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Messages waiting to be delivered next round.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Fraction of nodes whose `is_terminated` is `true`.
    pub fn terminated_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        self.nodes.iter().filter(|n| n.is_terminated()).count() as f64 / self.nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_telemetry::MessageKind;

    /// Flooding protocol: node 0 floods a wave over a clique; each node
    /// forwards once.
    #[derive(Clone, Debug)]
    struct Wave;
    impl Payload for Wave {
        fn kind(&self) -> MessageKind {
            MessageKind::Other("WAVE")
        }
    }

    struct FloodNode {
        id: NodeId,
        n: usize,
        forwarded: bool,
        heard_in_round: Option<u64>,
    }

    impl FloodNode {
        fn flood(&mut self, ctx: &mut Context<Wave>) {
            for j in 0..self.n {
                let j = NodeId(j as u32);
                if j != self.id {
                    ctx.send(j, Wave);
                }
            }
        }
    }

    impl Protocol for FloodNode {
        type Message = Wave;
        fn on_start(&mut self, ctx: &mut Context<Wave>) {
            if self.id == NodeId(0) {
                self.forwarded = true;
                self.flood(ctx);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Wave, ctx: &mut Context<Wave>) {
            if !self.forwarded {
                self.forwarded = true;
                self.heard_in_round = Some(ctx.now());
                self.flood(ctx);
            }
        }
        fn is_terminated(&self) -> bool {
            self.forwarded
        }
    }

    fn flood_nodes(n: usize) -> Vec<FloodNode> {
        (0..n)
            .map(|i| FloodNode {
                id: NodeId(i as u32),
                n,
                forwarded: false,
                heard_in_round: None,
            })
            .collect()
    }

    #[test]
    fn flood_completes_in_two_rounds() {
        let mut r = SyncRunner::new(flood_nodes(6));
        let out = r.run();
        assert!(out.quiescent);
        // Round 1 delivers node 0's wave; round 2 delivers the echoes.
        assert_eq!(out.rounds, 2);
        assert!(r.nodes().all(|n| n.forwarded));
        for node in r.nodes() {
            if node.id != NodeId(0) {
                assert_eq!(node.heard_in_round, Some(1));
            }
        }
        // 5 from node 0, then each of the other 5 nodes floods to 5 peers.
        assert_eq!(r.stats().sent, 30);
        assert_eq!(r.stats().delivered, 30);
        assert_eq!(r.stats().sent_of(MessageKind::Other("WAVE")), 30);
        assert_eq!(r.pending_count(), 0);
        assert_eq!(r.terminated_fraction(), 1.0);
    }

    #[test]
    fn round_by_round_observation() {
        let mut r = SyncRunner::new(flood_nodes(6));
        r.start();
        assert_eq!(r.pending_count(), 5, "node 0's wave is in flight");
        assert!((r.terminated_fraction() - 1.0 / 6.0).abs() < 1e-12);
        assert!(r.round());
        assert_eq!(r.terminated_fraction(), 1.0);
        assert_eq!(r.pending_count(), 25, "echo wave in flight");
        assert!(r.round());
        assert!(!r.round(), "quiescent after the echoes land");
    }

    #[test]
    fn telemetry_records_round_stamped_transport_events() {
        let mut r = SyncRunner::new(flood_nodes(4)).with_telemetry();
        let out = r.run();
        assert!(out.quiescent);
        let log = r.telemetry();
        assert_eq!(log.with_tag("sent").count(), 12);
        assert_eq!(log.deliveries().count(), 12);
        // Sends from on_start carry round 0; echo sends carry round 1.
        assert!(log
            .with_tag("sent")
            .all(|e| e.time() == 0 || e.time() == 1));
    }

    #[test]
    fn flood_causal_forest_certifies() {
        use owp_telemetry::CausalDag;
        let mut r = SyncRunner::new(flood_nodes(4)).with_telemetry();
        let out = r.run();
        assert!(out.quiescent);
        let dag = CausalDag::from_log(r.telemetry());
        assert_eq!(dag.len(), 12);
        assert_eq!(dag.roots(), 3, "node 0's on_start wave");
        assert!(dag.is_certified());
        // Each delivered root wave causes a 3-way echo flood.
        assert_eq!(dag.max_fanout(), 3);
        assert_eq!(dag.max_depth(), 2);
        assert_eq!(dag.critical_path_len(), 2);
        assert_eq!(dag.kind_fanout().get(&("WAVE", "WAVE")), Some(&9));
    }

    #[test]
    fn round_guard() {
        // Ping-pong forever between two nodes.
        struct PingPong {
            id: NodeId,
        }
        #[derive(Clone, Debug)]
        struct Ball;
        impl Payload for Ball {}
        impl Protocol for PingPong {
            type Message = Ball;
            fn on_start(&mut self, ctx: &mut Context<Ball>) {
                if self.id == NodeId(0) {
                    ctx.send(NodeId(1), Ball);
                }
            }
            fn on_message(&mut self, from: NodeId, _m: Ball, ctx: &mut Context<Ball>) {
                ctx.send(from, Ball);
            }
        }
        let nodes = vec![PingPong { id: NodeId(0) }, PingPong { id: NodeId(1) }];
        let mut r = SyncRunner::new(nodes).with_max_rounds(10);
        let out = r.run();
        assert!(!out.quiescent);
        assert_eq!(out.rounds, 10);
    }

    /// Node 0 waits on a timer chain: arm t+3, fire, arm t+5, fire, done.
    struct TimerChain {
        fired_at: Vec<u64>,
    }
    #[derive(Clone, Debug)]
    struct Nothing;
    impl Payload for Nothing {}
    impl Protocol for TimerChain {
        type Message = Nothing;
        fn on_start(&mut self, ctx: &mut Context<Nothing>) {
            ctx.set_timer(3, 1);
        }
        fn on_message(&mut self, _f: NodeId, _m: Nothing, _c: &mut Context<Nothing>) {}
        fn on_timer(&mut self, tag: u64, ctx: &mut Context<Nothing>) {
            self.fired_at.push(ctx.now());
            if tag == 1 {
                ctx.set_timer(5, 2);
            }
        }
    }

    #[test]
    fn sync_timers_fire_across_empty_rounds() {
        let mut r = SyncRunner::new(vec![TimerChain { fired_at: vec![] }]);
        let out = r.run();
        assert!(out.quiescent);
        // First timer at round 3, second at round 3 + 5 = 8.
        assert_eq!(r.node(NodeId(0)).fired_at, vec![3, 8]);
        assert_eq!(r.stats().timers_fired, 2);
        assert_eq!(out.rounds, 8, "rounds fast-forward to timer firings");
    }

    #[test]
    fn idle_network_quiesces_immediately() {
        struct Quiet;
        #[derive(Clone, Debug)]
        struct Never;
        impl Payload for Never {}
        impl Protocol for Quiet {
            type Message = Never;
            fn on_start(&mut self, _ctx: &mut Context<Never>) {}
            fn on_message(&mut self, _f: NodeId, _m: Never, _c: &mut Context<Never>) {}
        }
        let mut r = SyncRunner::new(vec![Quiet, Quiet]);
        let out = r.run();
        assert!(out.quiescent);
        assert_eq!(out.rounds, 0);
    }
}
