//! Dense directed-link indexing over a known topology.
//!
//! The FIFO clamp needs one "last scheduled delivery" timestamp per directed
//! link. Without topology information the simulator keeps them in a hash map
//! keyed by `(from, to)` — one hash per message send. When the communication
//! graph is known up front (every protocol built from a [`owp_graph::Graph`]
//! only ever messages its neighbours), [`LinkIndex`] assigns each of the
//! `2m` directed links a dense slot derived from the CSR adjacency, turning
//! the per-send clamp into an array access after an O(log d) position
//! lookup — no hashing on the delivery hot path.

use crate::NodeId;

/// Dense slots for the `2m` directed links of an undirected topology.
///
/// Slot of `(from, to)` = `offsets[from] +` position of `to` in `from`'s
/// sorted neighbour list — exactly the CSR adjacency position, so slots are
/// contiguous and cache-local per sender.
#[derive(Clone, Debug)]
pub struct LinkIndex {
    /// `offsets[i]..offsets[i+1]` spans node `i`'s slots in `targets`.
    offsets: Vec<u32>,
    /// Neighbour ids per node, sorted ascending (CSR order).
    targets: Vec<u32>,
}

impl LinkIndex {
    /// Builds the index from a graph's adjacency.
    pub fn from_graph(g: &owp_graph::Graph) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0);
        for i in g.nodes() {
            targets.extend(g.neighbor_ids(i).map(|j| j.0));
            offsets.push(targets.len() as u32);
        }
        LinkIndex { offsets, targets }
    }

    /// The dense slot of directed link `from → to`, or `None` if `to` is not
    /// a neighbour of `from`. O(log d_from) binary search.
    #[inline]
    pub fn slot(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let lo = self.offsets[from.index()] as usize;
        let hi = self.offsets[from.index() + 1] as usize;
        self.targets[lo..hi]
            .binary_search(&to.0)
            .ok()
            .map(|pos| lo + pos)
    }

    /// Total number of directed links (`2m`).
    #[inline]
    pub fn directed_link_count(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::generators::{complete, star};

    #[test]
    fn slots_are_dense_and_unique() {
        let g = complete(6);
        let idx = LinkIndex::from_graph(&g);
        assert_eq!(idx.directed_link_count(), 2 * g.edge_count());
        let mut seen = vec![false; idx.directed_link_count()];
        for i in g.nodes() {
            for j in g.neighbor_ids(i) {
                let s = idx.slot(i, j).expect("edge has a slot");
                assert!(!seen[s], "slot {s} assigned twice");
                seen[s] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn non_edges_have_no_slot() {
        let g = star(4); // hub 0, leaves 1..3: leaves are not adjacent
        let idx = LinkIndex::from_graph(&g);
        assert!(idx.slot(NodeId(1), NodeId(2)).is_none());
        assert!(idx.slot(NodeId(0), NodeId(0)).is_none());
        assert!(idx.slot(NodeId(0), NodeId(3)).is_some());
    }

    #[test]
    fn directions_get_distinct_slots() {
        let g = complete(3);
        let idx = LinkIndex::from_graph(&g);
        for i in g.nodes() {
            for j in g.neighbor_ids(i) {
                assert_ne!(idx.slot(i, j), idx.slot(j, i));
            }
        }
    }
}
