//! # owp-simnet — a discrete-event message-passing simulator
//!
//! The LID algorithm of Georgiadis & Papatriantafilou is *fully distributed*:
//! nodes exchange `PROP`/`REJ` messages with immediate neighbours over
//! reliable asynchronous point-to-point channels. The paper evaluates it only
//! analytically; this crate supplies the network such a protocol actually
//! needs, so the reproduction can measure message counts, convergence times
//! and robustness:
//!
//! * [`protocol`] — the [`protocol::Protocol`] trait every
//!   distributed node implements (`on_start` / `on_message`), plus the
//!   [`protocol::Context`] handle used to send messages;
//! * [`sim`] — the asynchronous event-driven [`sim::Simulator`]:
//!   a deterministic binary-heap event queue, per-link FIFO enforcement,
//!   message statistics and quiescence detection;
//! * [`latency`] — pluggable link-delay distributions (constant, uniform,
//!   exponential, log-normal) so asynchrony and message reordering across
//!   different links can be exercised (the condition Lemma 5's termination
//!   argument is about);
//! * [`sync`] — a synchronous-round engine over the same `Protocol` trait,
//!   used for deterministic round-complexity measurements;
//! * [`faults`] — fault injection (message loss, asymmetric per-link loss,
//!   duplication, FIFO-violating reordering, healing partitions, node
//!   crash/restart) for the robustness experiments and chaos campaigns that
//!   go beyond the paper's reliable-network assumption;
//! * [`stats`] — typed per-kind message counters ([`owp_telemetry::MessageKind`]);
//!   structured event traces live in the re-exported [`owp_telemetry`] layer
//!   (`EventLog` of typed `TelemetryEvent`s, enabled per run via
//!   [`sim::SimConfig::telemetry`]).
//!
//! Determinism: given the same seed, node set and configuration, a run
//! delivers exactly the same events in the same order. Every experiment in
//! `EXPERIMENTS.md` relies on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod latency;
pub mod link;
pub mod protocol;
pub mod sim;
pub mod stats;
pub mod sync;

pub use faults::{CompiledFaults, FaultPlan, LinkLoss, Partition};
pub use latency::LatencyModel;
pub use link::LinkIndex;
pub use owp_graph::NodeId;
pub use owp_telemetry::{EventLog, MessageKind, NodeEvent, Recorder, TelemetryEvent};
pub use protocol::{Context, Payload, Protocol};
pub use sim::{RunOutcome, SimConfig, Simulator};
pub use stats::NetStats;
pub use sync::SyncRunner;

/// Simulated time, in abstract integer ticks.
///
/// Ticks have no physical unit; latency models assign link delays in ticks
/// and the simulator reports completion times in ticks. Integer time keeps
/// event ordering exact and runs reproducible.
pub type SimTime = u64;
