//! Fault injection: message loss and node crashes.
//!
//! The paper assumes reliable channels and non-faulty peers; these knobs
//! exist for the robustness experiments (E11) that probe what happens when
//! that assumption is relaxed.

use crate::{NodeId, SimTime};

/// Declarative fault plan applied by the asynchronous simulator.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any given message is silently dropped.
    pub drop_probability: f64,
    /// Nodes that crash at a given time: messages delivered to them at or
    /// after that time are discarded and they take no further steps.
    pub crashes: Vec<(NodeId, SimTime)>,
}

impl FaultPlan {
    /// A plan with no faults (the paper's model).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform message-loss plan.
    pub fn with_drop_probability(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability {p} out of [0,1]");
        FaultPlan {
            drop_probability: p,
            crashes: Vec::new(),
        }
    }

    /// Adds a crash of `node` at `time`.
    pub fn crash(mut self, node: NodeId, time: SimTime) -> Self {
        self.crashes.push((node, time));
        self
    }

    /// Crash time of `node`, if scheduled.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.crashes
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, t)| t)
    }

    /// `true` iff the plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0 && self.crashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let plan = FaultPlan::with_drop_probability(0.1).crash(NodeId(3), 50);
        assert_eq!(plan.drop_probability, 0.1);
        assert_eq!(plan.crash_time(NodeId(3)), Some(50));
        assert_eq!(plan.crash_time(NodeId(4)), None);
        assert!(!plan.is_none());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_probability() {
        FaultPlan::with_drop_probability(1.5);
    }
}
