//! Fault injection: message loss, duplication, reordering, partitions and
//! node crash/restart.
//!
//! The paper assumes reliable FIFO channels and non-faulty peers; these knobs
//! exist for the robustness experiments (E11) and the chaos campaigns (E25)
//! that probe what happens when that assumption is relaxed. A [`FaultPlan`]
//! is declarative data; the simulator compiles it once at install time into
//! [`CompiledFaults`] so per-delivery queries are O(1) in the number of
//! scheduled crashes (the plan-side `crash_time` linear scan is never on the
//! delivery path).

use crate::{NodeId, SimTime};

/// Asymmetric per-link loss: probability in `[0, 1]` that a message sent
/// from `from` to `to` is silently dropped. The reverse direction is
/// unaffected unless it has its own entry.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkLoss {
    /// Sender whose messages are lossy.
    pub from: NodeId,
    /// Receiver the loss applies to.
    pub to: NodeId,
    /// Drop probability for this directed link (overrides the global one).
    pub probability: f64,
}

/// A network partition that heals: during `[start, heal)` no message crosses
/// between `side` and its complement. Messages within one side are
/// unaffected. Cut messages are counted as partition drops, not random loss.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Partition {
    /// Nodes on one side of the cut (the complement is the other side).
    pub side: Vec<NodeId>,
    /// First tick at which the cut is active.
    pub start: SimTime,
    /// First tick at which the cut is healed (exclusive end; must be > start).
    pub heal: SimTime,
}

/// Declarative fault plan applied by the asynchronous simulator.
///
/// Fault classes (all composable in one plan):
/// * uniform message loss (`drop_probability`),
/// * asymmetric per-link loss (`link_loss`),
/// * message duplication (`duplicate_probability`) — the copy gets an
///   independent latency draw, so duplicates may arrive out of order,
/// * message reordering (`reorder_probability`) — explicitly violates the
///   per-link FIFO assumption the paper's channels provide,
/// * partitions that heal (`partitions`),
/// * node crashes (`crashes`) and crash-*restarts* (`restarts`): a restarted
///   node loses all volatile state and re-enters the protocol via
///   [`crate::protocol::Protocol::on_restart`].
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any given message is silently dropped.
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a delivered message is duplicated.
    pub duplicate_probability: f64,
    /// Probability in `[0, 1]` that a message skips the per-link FIFO clamp
    /// and may overtake earlier traffic on the same link.
    pub reorder_probability: f64,
    /// Nodes that crash at a given time: messages delivered to them while
    /// down are discarded and their timers do not fire.
    pub crashes: Vec<(NodeId, SimTime)>,
    /// Nodes that come back up at a given time (must be after their crash).
    /// Restart wipes volatile protocol state; pre-crash timers stay dead.
    pub restarts: Vec<(NodeId, SimTime)>,
    /// Per-directed-link loss overrides.
    pub link_loss: Vec<LinkLoss>,
    /// Partitions that heal.
    pub partitions: Vec<Partition>,
}

fn prob_ok(p: f64) -> bool {
    p.is_finite() && (0.0..=1.0).contains(&p)
}

impl FaultPlan {
    /// A plan with no faults (the paper's model).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Uniform message-loss plan.
    pub fn with_drop_probability(p: f64) -> Self {
        assert!(prob_ok(p), "drop probability {p} out of [0,1]");
        FaultPlan {
            drop_probability: p,
            ..FaultPlan::default()
        }
    }

    /// Adds a crash of `node` at `time`.
    pub fn crash(mut self, node: NodeId, time: SimTime) -> Self {
        self.crashes.push((node, time));
        self
    }

    /// Adds a restart of `node` at `time` (the node must also crash earlier).
    pub fn restart(mut self, node: NodeId, time: SimTime) -> Self {
        self.restarts.push((node, time));
        self
    }

    /// Adds an asymmetric loss entry for the directed link `from -> to`.
    pub fn link_loss(mut self, from: NodeId, to: NodeId, probability: f64) -> Self {
        self.link_loss.push(LinkLoss { from, to, probability });
        self
    }

    /// Sets the message-duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.duplicate_probability = p;
        self
    }

    /// Sets the FIFO-violation (reordering) probability.
    pub fn reorder(mut self, p: f64) -> Self {
        self.reorder_probability = p;
        self
    }

    /// Adds a partition of `side` vs the rest during `[start, heal)`.
    pub fn partition(mut self, side: Vec<NodeId>, start: SimTime, heal: SimTime) -> Self {
        self.partitions.push(Partition { side, start, heal });
        self
    }

    /// Crash time of `node`, if scheduled.
    ///
    /// Convenience for plan inspection; the simulator's delivery path uses
    /// the O(1) dense lookup built by [`CompiledFaults::compile`] instead.
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.crashes
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, t)| t)
    }

    /// `true` iff the plan injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.reorder_probability == 0.0
            && self.crashes.is_empty()
            && self.restarts.is_empty()
            && self.link_loss.is_empty()
            && self.partitions.is_empty()
    }

    /// Structural validation: probability bounds, no duplicate crash /
    /// restart / link entries, restarts strictly after their crash,
    /// partitions non-empty with `heal > start`.
    pub fn validate(&self) -> Result<(), String> {
        if !prob_ok(self.drop_probability) {
            return Err(format!("drop probability {} out of [0,1]", self.drop_probability));
        }
        if !prob_ok(self.duplicate_probability) {
            return Err(format!(
                "duplicate probability {} out of [0,1]",
                self.duplicate_probability
            ));
        }
        if !prob_ok(self.reorder_probability) {
            return Err(format!(
                "reorder probability {} out of [0,1]",
                self.reorder_probability
            ));
        }
        for (i, &(node, _)) in self.crashes.iter().enumerate() {
            if self.crashes[..i].iter().any(|&(n, _)| n == node) {
                return Err(format!("duplicate crash entry for node {}", node.0));
            }
        }
        for (i, &(node, at)) in self.restarts.iter().enumerate() {
            if self.restarts[..i].iter().any(|&(n, _)| n == node) {
                return Err(format!("duplicate restart entry for node {}", node.0));
            }
            match self.crash_time(node) {
                None => {
                    return Err(format!(
                        "restart of node {} without a matching crash",
                        node.0
                    ));
                }
                Some(c) if at <= c => {
                    return Err(format!(
                        "restart of node {} at {at} not after its crash at {c}",
                        node.0
                    ));
                }
                Some(_) => {}
            }
        }
        for (i, l) in self.link_loss.iter().enumerate() {
            if !prob_ok(l.probability) {
                return Err(format!(
                    "link loss probability {} out of [0,1] on {}->{}",
                    l.probability, l.from.0, l.to.0
                ));
            }
            if self.link_loss[..i]
                .iter()
                .any(|e| e.from == l.from && e.to == l.to)
            {
                return Err(format!(
                    "duplicate link loss entry for {}->{}",
                    l.from.0, l.to.0
                ));
            }
        }
        for p in &self.partitions {
            if p.side.is_empty() {
                return Err("partition with empty side".to_string());
            }
            if p.heal <= p.start {
                return Err(format!(
                    "partition heal {} not after start {}",
                    p.heal, p.start
                ));
            }
        }
        Ok(())
    }

    /// Canonical single-line JSON rendering. Same plan ⇒ same bytes, so
    /// campaign reports that embed plans byte-compare across runs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str(&format!(
            "{{\"drop\":{},\"duplicate\":{},\"reorder\":{}",
            self.drop_probability, self.duplicate_probability, self.reorder_probability
        ));
        s.push_str(",\"crashes\":[");
        for (i, &(n, t)) in self.crashes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{t}]", n.0));
        }
        s.push_str("],\"restarts\":[");
        for (i, &(n, t)) in self.restarts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{t}]", n.0));
        }
        s.push_str("],\"link_loss\":[");
        for (i, l) in self.link_loss.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{},{}]", l.from.0, l.to.0, l.probability));
        }
        s.push_str("],\"partitions\":[");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"side\":[");
            for (j, n) in p.side.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}", n.0));
            }
            s.push_str(&format!("],\"start\":{},\"heal\":{}}}", p.start, p.heal));
        }
        s.push_str("]}");
        s
    }

    /// Parses the canonical JSON produced by [`FaultPlan::to_json`] (the
    /// vendored serde is a derive marker only, so parsing is hand-rolled).
    /// The parsed plan is [`FaultPlan::validate`]d before being returned.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut p = JsonCursor::new(text);
        let plan = parse_plan(&mut p)?;
        p.skip_ws();
        if !p.at_end() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn parse_plan(p: &mut JsonCursor<'_>) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    p.expect('{')?;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "drop" => plan.drop_probability = p.number()?,
            "duplicate" => plan.duplicate_probability = p.number()?,
            "reorder" => plan.reorder_probability = p.number()?,
            "crashes" => plan.crashes = p.pair_list()?,
            "restarts" => plan.restarts = p.pair_list()?,
            "link_loss" => {
                p.expect('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    p.expect('[')?;
                    let from = NodeId(p.number()? as u32);
                    p.expect(',')?;
                    let to = NodeId(p.number()? as u32);
                    p.expect(',')?;
                    let probability = p.number()?;
                    p.expect(']')?;
                    plan.link_loss.push(LinkLoss { from, to, probability });
                    p.skip_ws();
                    if !p.eat(',') {
                        p.expect(']')?;
                        break;
                    }
                }
            }
            "partitions" => {
                p.expect('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    let mut side = Vec::new();
                    let mut start = 0;
                    let mut heal = 0;
                    p.expect('{')?;
                    loop {
                        p.skip_ws();
                        if p.eat('}') {
                            break;
                        }
                        let k = p.string()?;
                        p.expect(':')?;
                        match k.as_str() {
                            "side" => {
                                p.expect('[')?;
                                loop {
                                    p.skip_ws();
                                    if p.eat(']') {
                                        break;
                                    }
                                    side.push(NodeId(p.number()? as u32));
                                    p.skip_ws();
                                    if !p.eat(',') {
                                        p.expect(']')?;
                                        break;
                                    }
                                }
                            }
                            "start" => start = p.number()? as SimTime,
                            "heal" => heal = p.number()? as SimTime,
                            other => return Err(format!("unknown partition key {other:?}")),
                        }
                        p.skip_ws();
                        if !p.eat(',') {
                            p.expect('}')?;
                            break;
                        }
                    }
                    plan.partitions.push(Partition { side, start, heal });
                    p.skip_ws();
                    if !p.eat(',') {
                        p.expect(']')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unknown fault plan key {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.expect('}')?;
            break;
        }
    }
    Ok(plan)
}

/// Minimal cursor over canonical JSON text (numbers, strings, punctuation).
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(text: &'a str) -> Self {
        JsonCursor { bytes: text.as_bytes(), pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == c as u8 {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return Err("unterminated string".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in string".to_string())?
            .to_string();
        self.pos += 1; // closing quote
        Ok(s)
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn pair_list(&mut self) -> Result<Vec<(NodeId, SimTime)>, String> {
        let mut out = Vec::new();
        self.expect('[')?;
        loop {
            self.skip_ws();
            if self.eat(']') {
                break;
            }
            self.expect('[')?;
            let n = NodeId(self.number()? as u32);
            self.expect(',')?;
            let t = self.number()? as SimTime;
            self.expect(']')?;
            out.push((n, t));
            self.skip_ws();
            if !self.eat(',') {
                self.expect(']')?;
                break;
            }
        }
        Ok(out)
    }
}

/// A [`FaultPlan`] compiled against a fixed node count for O(1) delivery-path
/// queries: dense per-node crash/restart times, per-sender link-loss lists
/// and partition membership bitmaps. Built once when the simulator installs
/// the plan (satellite fix for the old `crash_time` linear scan).
#[derive(Clone, Debug)]
pub struct CompiledFaults {
    /// Global drop probability.
    pub drop_probability: f64,
    /// Duplication probability.
    pub duplicate_probability: f64,
    /// FIFO-violation probability.
    pub reorder_probability: f64,
    crash_at: Vec<SimTime>,
    restart_at: Vec<SimTime>,
    /// Per-sender `(to, probability)` overrides; empty for most senders.
    link_loss: Vec<Vec<(NodeId, f64)>>,
    /// `(membership bitmap, start, heal)` per partition.
    partitions: Vec<(Vec<bool>, SimTime, SimTime)>,
    any_link_loss: bool,
}

impl CompiledFaults {
    /// Validates `plan` and compiles it against `n` nodes. Entries that name
    /// nodes `>= n` are rejected: a plan must match the topology it runs on.
    pub fn compile(plan: &FaultPlan, n: usize) -> Result<CompiledFaults, String> {
        plan.validate()?;
        let check = |node: NodeId, what: &str| -> Result<(), String> {
            if node.index() >= n {
                Err(format!("{what} names node {} but the run has {n} nodes", node.0))
            } else {
                Ok(())
            }
        };
        let mut crash_at = vec![SimTime::MAX; n];
        for &(node, t) in &plan.crashes {
            check(node, "crash")?;
            crash_at[node.index()] = t;
        }
        let mut restart_at = vec![SimTime::MAX; n];
        for &(node, t) in &plan.restarts {
            check(node, "restart")?;
            restart_at[node.index()] = t;
        }
        let mut link_loss = vec![Vec::new(); n];
        for l in &plan.link_loss {
            check(l.from, "link loss")?;
            check(l.to, "link loss")?;
            link_loss[l.from.index()].push((l.to, l.probability));
        }
        let mut partitions = Vec::with_capacity(plan.partitions.len());
        for p in &plan.partitions {
            let mut member = vec![false; n];
            for &node in &p.side {
                check(node, "partition")?;
                member[node.index()] = true;
            }
            partitions.push((member, p.start, p.heal));
        }
        Ok(CompiledFaults {
            drop_probability: plan.drop_probability,
            duplicate_probability: plan.duplicate_probability,
            reorder_probability: plan.reorder_probability,
            crash_at,
            restart_at,
            any_link_loss: !plan.link_loss.is_empty(),
            link_loss,
            partitions,
        })
    }

    /// Crash time of `node`, if scheduled. O(1).
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        match self.crash_at[node.index()] {
            SimTime::MAX => None,
            t => Some(t),
        }
    }

    /// Restart time of `node`, if scheduled. O(1).
    pub fn restart_time(&self, node: NodeId) -> Option<SimTime> {
        match self.restart_at[node.index()] {
            SimTime::MAX => None,
            t => Some(t),
        }
    }

    /// `true` iff `node` is down (crashed, not yet restarted) at `at`.
    pub fn down_at(&self, node: NodeId, at: SimTime) -> bool {
        at >= self.crash_at[node.index()] && at < self.restart_at[node.index()]
    }

    /// `true` iff an active partition separates `from` and `to` at `at`.
    pub fn cut_at(&self, from: NodeId, to: NodeId, at: SimTime) -> bool {
        self.partitions.iter().any(|(member, start, heal)| {
            at >= *start && at < *heal && member[from.index()] != member[to.index()]
        })
    }

    /// Effective loss probability on the directed link `from -> to`: the
    /// per-link override if one exists, else the global drop probability.
    pub fn loss(&self, from: NodeId, to: NodeId) -> f64 {
        if self.any_link_loss {
            if let Some(&(_, p)) = self.link_loss[from.index()].iter().find(|&&(t, _)| t == to) {
                return p;
            }
        }
        self.drop_probability
    }

    /// `true` iff any node has a scheduled restart.
    pub fn has_restarts(&self) -> bool {
        self.restart_at.iter().any(|&t| t != SimTime::MAX)
    }

    /// Iterator over `(node, restart time)` pairs, ascending by node id.
    pub fn restarts(&self) -> impl Iterator<Item = (NodeId, SimTime)> + '_ {
        self.restart_at
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != SimTime::MAX)
            .map(|(i, &t)| (NodeId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let plan = FaultPlan::with_drop_probability(0.1).crash(NodeId(3), 50);
        assert_eq!(plan.drop_probability, 0.1);
        assert_eq!(plan.crash_time(NodeId(3)), Some(50));
        assert_eq!(plan.crash_time(NodeId(4)), None);
        assert!(!plan.is_none());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_probability() {
        FaultPlan::with_drop_probability(1.5);
    }

    #[test]
    fn empty_plan_is_none_and_new_classes_are_not() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().duplicate(0.1).is_none());
        assert!(!FaultPlan::none().reorder(0.1).is_none());
        assert!(!FaultPlan::none().link_loss(NodeId(0), NodeId(1), 0.5).is_none());
        assert!(!FaultPlan::none().partition(vec![NodeId(0)], 5, 10).is_none());
        assert!(!FaultPlan::none()
            .crash(NodeId(0), 5)
            .restart(NodeId(0), 10)
            .is_none());
    }

    #[test]
    fn validate_probability_bounds() {
        let mut plan = FaultPlan::none();
        plan.drop_probability = -0.2;
        assert!(plan.validate().unwrap_err().contains("out of [0,1]"));
        let mut plan = FaultPlan::none();
        plan.duplicate_probability = 1.5;
        assert!(plan.validate().unwrap_err().contains("out of [0,1]"));
        let mut plan = FaultPlan::none();
        plan.reorder_probability = f64::NAN;
        assert!(plan.validate().unwrap_err().contains("out of [0,1]"));
        let plan = FaultPlan::none().link_loss(NodeId(0), NodeId(1), 2.0);
        assert!(plan.validate().unwrap_err().contains("link loss"));
    }

    #[test]
    fn validate_rejects_duplicate_crashes() {
        let plan = FaultPlan::none().crash(NodeId(2), 10).crash(NodeId(2), 20);
        let err = plan.validate().unwrap_err();
        assert!(err.contains("duplicate crash entry for node 2"), "{err}");
    }

    #[test]
    fn validate_restart_rules() {
        // Restart without a crash is meaningless.
        let plan = FaultPlan::none().restart(NodeId(1), 10);
        assert!(plan.validate().unwrap_err().contains("without a matching crash"));
        // Restart must be strictly after the crash.
        let plan = FaultPlan::none().crash(NodeId(1), 10).restart(NodeId(1), 10);
        assert!(plan.validate().unwrap_err().contains("not after its crash"));
        // Well-formed crash-restart passes.
        let plan = FaultPlan::none().crash(NodeId(1), 10).restart(NodeId(1), 30);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn validate_partitions_and_links() {
        let plan = FaultPlan::none().partition(vec![], 5, 10);
        assert!(plan.validate().unwrap_err().contains("empty side"));
        let plan = FaultPlan::none().partition(vec![NodeId(0)], 10, 10);
        assert!(plan.validate().unwrap_err().contains("not after start"));
        let plan = FaultPlan::none()
            .link_loss(NodeId(0), NodeId(1), 0.5)
            .link_loss(NodeId(0), NodeId(1), 0.7);
        assert!(plan.validate().unwrap_err().contains("duplicate link loss"));
    }

    #[test]
    fn json_round_trip_all_classes() {
        let plan = FaultPlan::with_drop_probability(0.125)
            .duplicate(0.25)
            .reorder(0.0625)
            .crash(NodeId(3), 50)
            .crash(NodeId(5), 70)
            .restart(NodeId(3), 90)
            .link_loss(NodeId(1), NodeId(2), 0.5)
            .partition(vec![NodeId(0), NodeId(1)], 10, 40);
        let json = plan.to_json();
        let parsed = FaultPlan::parse(&json).expect("round trip parses");
        assert_eq!(parsed, plan);
        // Canonical: re-rendering parses back to identical bytes.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn json_round_trip_empty_plan() {
        let plan = FaultPlan::none();
        let parsed = FaultPlan::parse(&plan.to_json()).expect("parses");
        assert!(parsed.is_none());
        assert_eq!(parsed, plan);
    }

    #[test]
    fn parse_rejects_garbage_and_invalid_plans() {
        assert!(FaultPlan::parse("not json").is_err());
        assert!(FaultPlan::parse("{\"nope\":1}").is_err());
        // Syntactically fine but semantically invalid: validation runs.
        let bad = FaultPlan::none().crash(NodeId(1), 5).crash(NodeId(1), 9);
        assert!(FaultPlan::parse(&bad.to_json())
            .unwrap_err()
            .contains("duplicate crash entry"));
        // Trailing garbage is rejected.
        let mut json = FaultPlan::none().to_json();
        json.push_str("x");
        assert!(FaultPlan::parse(&json).unwrap_err().contains("trailing"));
    }

    #[test]
    fn compiled_lookup_is_dense_and_correct() {
        let plan = FaultPlan::with_drop_probability(0.1)
            .crash(NodeId(2), 50)
            .restart(NodeId(2), 80)
            .link_loss(NodeId(0), NodeId(1), 0.9)
            .partition(vec![NodeId(0), NodeId(1)], 10, 40);
        let c = CompiledFaults::compile(&plan, 4).expect("compiles");
        assert_eq!(c.crash_time(NodeId(2)), Some(50));
        assert_eq!(c.crash_time(NodeId(0)), None);
        assert_eq!(c.restart_time(NodeId(2)), Some(80));
        assert!(!c.down_at(NodeId(2), 49));
        assert!(c.down_at(NodeId(2), 50));
        assert!(c.down_at(NodeId(2), 79));
        assert!(!c.down_at(NodeId(2), 80)); // restarted
        // Partition cuts only across the sides and only while active.
        assert!(c.cut_at(NodeId(0), NodeId(2), 10));
        assert!(c.cut_at(NodeId(2), NodeId(1), 39));
        assert!(!c.cut_at(NodeId(0), NodeId(1), 20)); // same side
        assert!(!c.cut_at(NodeId(2), NodeId(3), 20)); // same side
        assert!(!c.cut_at(NodeId(0), NodeId(2), 40)); // healed
        assert!(!c.cut_at(NodeId(0), NodeId(2), 9)); // not yet
        // Link loss overrides the global probability, one direction only.
        assert_eq!(c.loss(NodeId(0), NodeId(1)), 0.9);
        assert_eq!(c.loss(NodeId(1), NodeId(0)), 0.1);
        assert_eq!(c.loss(NodeId(2), NodeId(3)), 0.1);
        assert!(c.has_restarts());
        assert_eq!(c.restarts().collect::<Vec<_>>(), vec![(NodeId(2), 80)]);
    }

    #[test]
    fn compile_rejects_out_of_range_nodes() {
        let plan = FaultPlan::none().crash(NodeId(7), 5);
        let err = CompiledFaults::compile(&plan, 4).unwrap_err();
        assert!(err.contains("names node 7"), "{err}");
    }
}
