//! Link-delay distributions.
//!
//! Delays are strictly positive integer ticks. The interesting property for
//! the matching protocol is *asynchrony*: with non-constant models, messages
//! sent later on one link can overtake messages sent earlier on another,
//! which is exactly the scheduling freedom Lemma 5's termination proof and
//! the LIC ≡ LID equivalence (Theorem 3) must survive.

use crate::SimTime;
use rand::Rng;

/// A distribution of per-message link delays.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly `ticks` (≥ 1) ticks.
    Constant {
        /// The fixed delay.
        ticks: SimTime,
    },
    /// Uniform in `lo..=hi` ticks.
    Uniform {
        /// Minimum delay (≥ 1).
        lo: SimTime,
        /// Maximum delay.
        hi: SimTime,
    },
    /// Exponential with the given mean (ticks); heavy asynchrony, occasional
    /// stragglers. Sampled by inverse transform, rounded up to ≥ 1.
    Exponential {
        /// Mean delay in ticks.
        mean: f64,
    },
    /// Log-normal: `exp(N(mu, sigma²))` ticks, rounded up to ≥ 1. Models the
    /// long-tailed RTTs measured on real overlay links.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Convenience constant-delay model of 1 tick (a synchronous-ish network).
    pub fn unit() -> Self {
        LatencyModel::Constant { ticks: 1 }
    }

    /// Samples one delay. Always ≥ 1 tick so causality is strict.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            LatencyModel::Constant { ticks } => ticks.max(1),
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "empty latency range {lo}..={hi}");
                rng.gen_range(lo.max(1)..=hi.max(1))
            }
            LatencyModel::Exponential { mean } => {
                assert!(mean > 0.0, "exponential mean must be positive");
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-mean * u.ln()).ceil().max(1.0) as SimTime
            }
            LatencyModel::LogNormal { mu, sigma } => {
                assert!(sigma >= 0.0, "sigma must be non-negative");
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * z).exp().ceil().max(1.0) as SimTime
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Constant { ticks: 5 };
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 5);
        }
        assert_eq!(LatencyModel::Constant { ticks: 0 }.sample(&mut rng), 1);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform { lo: 3, hi: 9 };
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let s = m.sample(&mut rng);
            assert!((3..=9).contains(&s));
            seen.insert(s);
        }
        assert!(seen.len() >= 5, "should hit most of the range");
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::Exponential { mean: 20.0 };
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let avg = sum as f64 / n as f64;
        // ceil() biases up by ~0.5; accept a generous window.
        assert!((18.0..23.0).contains(&avg), "avg={avg}");
    }

    #[test]
    fn lognormal_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LatencyModel::LogNormal { mu: 2.0, sigma: 0.8 };
        let samples: Vec<u64> = (0..5_000).map(|_| m.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s >= 1));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > median, "log-normal is right-skewed");
    }

    #[test]
    fn unit_helper() {
        assert_eq!(LatencyModel::unit(), LatencyModel::Constant { ticks: 1 });
    }
}
