//! Event traces for debugging and for the termination/ordering tests.

use crate::{NodeId, SimTime};

/// One recorded network event.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TraceEvent {
    /// A message was handed to the network.
    Sent {
        /// Simulated send time.
        time: SimTime,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload kind label.
        kind: &'static str,
    },
    /// A message was delivered to its destination's handler.
    Delivered {
        /// Simulated delivery time.
        time: SimTime,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload kind label.
        kind: &'static str,
    },
    /// A message was dropped (loss or dead destination).
    Dropped {
        /// Time the drop was decided.
        time: SimTime,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload kind label.
        kind: &'static str,
    },
}

impl TraceEvent {
    /// The simulated time of the event.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Sent { time, .. }
            | TraceEvent::Delivered { time, .. }
            | TraceEvent::Dropped { time, .. } => time,
        }
    }
}

/// An append-only event log. Disabled by default (zero cost when off).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Creates a disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// The recorded events, in occurrence order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Delivered events only.
    pub fn deliveries(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceEvent::Sent {
            time: 1,
            from: NodeId(0),
            to: NodeId(1),
            kind: "X",
        });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.push(TraceEvent::Sent {
            time: 1,
            from: NodeId(0),
            to: NodeId(1),
            kind: "X",
        });
        t.push(TraceEvent::Delivered {
            time: 3,
            from: NodeId(0),
            to: NodeId(1),
            kind: "X",
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].time(), 1);
        assert_eq!(t.deliveries().count(), 1);
    }
}
