//! The steady-state zero-allocation contract (DESIGN.md §11, ISSUE 6):
//! after warm-up, a batch of **structural** events (join/leave, edge
//! add/remove) through `Engine::apply_batch_into` performs zero heap
//! allocations — all repair state lives in reusable arenas.
//!
//! The measurement instrument is a counting `#[global_allocator]`: the
//! engine crate itself is `#![forbid(unsafe_code)]`, so the shim lives
//! here, in the test binary (same pattern as `owp-bench`, which feeds
//! the `engine_allocations_per_batch` gauge from an identical shim; this
//! test feeds `owp_metrics::ALLOC_COUNT`-compatible counts directly).
//!
//! Protocol: run one full event cycle to reach the arenas' high-water
//! marks, then re-run the *same* cycle and assert the allocator was
//! never called. Weight events (quota/preference) are excluded — they
//! allocate inside the rank-splice kernel and are outside the contract.

use owp_engine::{DeltaReport, Engine, EngineEvent};
use owp_graph::NodeId;
use owp_matching::Problem;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator plus one relaxed counter bump per `alloc`/`realloc`.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A repeatable all-structural event cycle: every event is undone by a
/// later event in the same cycle, so consecutive cycles traverse
/// identical repair work and arena high-water marks.
fn structural_cycle(e: &Engine) -> Vec<Vec<EngineEvent>> {
    let g = e.dynamic().graph();
    let mut batches = Vec::new();
    for base in [0u32, 5, 11] {
        let node = NodeId(base % g.node_count() as u32);
        batches.push(vec![EngineEvent::NodeLeave { node }]);
        batches.push(vec![EngineEvent::NodeJoin { node }]);
    }
    let mut edges: Vec<_> = g.edges().take(4).collect();
    edges.reverse();
    for edge in edges {
        let (u, v) = g.endpoints(edge);
        batches.push(vec![
            EngineEvent::EdgeRemove { u, v },
            EngineEvent::EdgeAdd { u, v },
        ]);
    }
    batches
}

fn assert_zero_alloc_steady_state(mut e: Engine, label: &str) {
    let batches = structural_cycle(&e);
    let mut report = DeltaReport::default();
    // Warm-up: two full cycles reach (and then re-verify) the arenas'
    // high-water marks, including the report's delta Vec capacities.
    for _ in 0..2 {
        for b in &batches {
            e.apply_batch_into(b, &mut report).unwrap();
        }
    }
    e.certify().expect("warmed engine is canonical");

    let mark = ALLOCS.load(Ordering::Relaxed);
    for b in &batches {
        e.apply_batch_into(b, &mut report).unwrap();
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - mark;
    let per_batch = allocs as f64 / batches.len() as f64;
    assert_eq!(
        allocs, 0,
        "{label}: {allocs} allocations over {} structural batches \
         ({per_batch} per batch) — the steady-state arena contract is broken",
        batches.len(),
    );
    e.certify().expect("measured engine is canonical");
}

#[test]
fn unsharded_steady_state_allocates_nothing() {
    assert_zero_alloc_steady_state(
        Engine::new(Problem::random_gnp(48, 0.2, 2, 71)),
        "k=1",
    );
}

#[test]
fn sharded_steady_state_allocates_nothing() {
    assert_zero_alloc_steady_state(
        Engine::builder(Problem::random_gnp(48, 0.2, 2, 71))
            .shards(4)
            .threads(1)
            .build(),
        "k=4",
    );
}

/// The contract is scoped: weight events go through the rank-splice
/// kernel, which allocates by design. Pin that boundary so a future
/// "fix" doesn't silently widen or narrow the claim.
#[test]
fn weight_events_are_outside_the_contract() {
    let mut e = Engine::new(Problem::random_gnp(48, 0.2, 2, 71));
    let mut report = DeltaReport::default();
    for q in [1, 2, 1, 2] {
        e.apply_batch_into(
            &[EngineEvent::QuotaChange { node: NodeId(7), quota: q }],
            &mut report,
        )
        .unwrap();
    }
    let mark = ALLOCS.load(Ordering::Relaxed);
    e.apply_batch_into(
        &[EngineEvent::QuotaChange { node: NodeId(7), quota: 1 }],
        &mut report,
    )
    .unwrap();
    assert!(
        ALLOCS.load(Ordering::Relaxed) > mark,
        "quota events allocate in the splice kernel — if this now passes \
         allocation-free, extend the zero-alloc contract to weight events"
    );
    e.certify().expect("still canonical");
}
