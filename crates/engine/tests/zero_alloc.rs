//! The steady-state zero-allocation contract (DESIGN.md §11, ISSUE 6):
//! after warm-up, a batch of **structural** events (join/leave, edge
//! add/remove) through `Engine::apply_batch_into` performs zero heap
//! allocations — all repair state lives in reusable arenas.
//!
//! The measurement instrument is a counting `#[global_allocator]`: the
//! engine crate itself is `#![forbid(unsafe_code)]`, so the shim lives
//! here, in the test binary (same pattern as `owp-bench`, which feeds
//! the `engine_allocations_per_batch` gauge from an identical shim; this
//! test feeds `owp_metrics::ALLOC_COUNT`-compatible counts directly).
//!
//! Protocol: run the same event cycle until every arena — including the
//! forensic rings' slots — has reached its high-water mark, then re-run
//! the cycle and assert the allocator was never called. Weight events
//! (quota/preference) are excluded — they allocate inside the rank-splice
//! kernel and are outside the contract.
//!
//! Since ISSUE 7 the contract *includes* the always-on flight recorder
//! and black-box history: the telemetry ring records every batch's
//! engine events and the history ring records the batches themselves
//! (with checkpoint advancement on eviction), and none of it may
//! allocate once warm. The ring tests below force both rings through
//! wraparound during the measured window on purpose.

use owp_engine::{DeltaReport, Engine, EngineEvent};
use owp_graph::NodeId;
use owp_matching::Problem;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// System allocator plus one relaxed counter bump per `alloc`/`realloc`.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A repeatable all-structural event cycle: every event is undone by a
/// later event in the same cycle, so consecutive cycles traverse
/// identical repair work and arena high-water marks.
fn structural_cycle(e: &Engine) -> Vec<Vec<EngineEvent>> {
    let g = e.dynamic().graph();
    let mut batches = Vec::new();
    for base in [0u32, 5, 11] {
        let node = NodeId(base % g.node_count() as u32);
        batches.push(vec![EngineEvent::NodeLeave { node }]);
        batches.push(vec![EngineEvent::NodeJoin { node }]);
    }
    let mut edges: Vec<_> = g.edges().take(4).collect();
    edges.reverse();
    for edge in edges {
        let (u, v) = g.endpoints(edge);
        batches.push(vec![
            EngineEvent::EdgeRemove { u, v },
            EngineEvent::EdgeAdd { u, v },
        ]);
    }
    batches
}

fn assert_zero_alloc_steady_state(mut e: Engine, label: &str) {
    let batches = structural_cycle(&e);
    let mut report = DeltaReport::default();
    // Warm-up: cycle until one whole cycle allocates nothing — that is
    // steady state by definition. The arenas converge in a cycle or two;
    // the history ring takes longer because each slot's event buffer
    // grows on first contact with the cycle's largest batch, and slots
    // meet batches in a rotating alignment (ring capacity and cycle
    // length are coprime-ish by design here). Bounded so a regression
    // fails loudly instead of spinning.
    let mut warmed = false;
    for _ in 0..64 {
        let mark = ALLOCS.load(Ordering::Relaxed);
        for b in &batches {
            e.apply_batch_into(b, &mut report).unwrap();
        }
        if ALLOCS.load(Ordering::Relaxed) == mark {
            warmed = true;
            break;
        }
    }
    assert!(warmed, "{label}: no allocation-free cycle within 64 warm-up cycles");
    assert!(
        e.history().capacity() == 0 || e.history().evicted() > 0,
        "{label}: warm-up must wrap the history ring"
    );
    e.certify().expect("warmed engine is canonical");

    let mark = ALLOCS.load(Ordering::Relaxed);
    for b in &batches {
        e.apply_batch_into(b, &mut report).unwrap();
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - mark;
    let per_batch = allocs as f64 / batches.len() as f64;
    assert_eq!(
        allocs, 0,
        "{label}: {allocs} allocations over {} structural batches \
         ({per_batch} per batch) — the steady-state arena contract is broken",
        batches.len(),
    );
    e.certify().expect("measured engine is canonical");
}

#[test]
fn unsharded_steady_state_allocates_nothing() {
    assert_zero_alloc_steady_state(
        Engine::new(Problem::random_gnp(48, 0.2, 2, 71)),
        "k=1",
    );
}

#[test]
fn sharded_steady_state_allocates_nothing() {
    assert_zero_alloc_steady_state(
        Engine::builder(Problem::random_gnp(48, 0.2, 2, 71))
            .shards(4)
            .threads(1)
            .build(),
        "k=4",
    );
}

/// The flight recorder and history ring under *pressure*: capacities so
/// small that every measured batch overwrites ring slots and evicts
/// history steps (advancing the shadow checkpoint). Still zero
/// allocations — the black box must be free to leave always-on.
#[test]
fn wrapping_recorder_rings_allocate_nothing() {
    let e = Engine::builder(Problem::random_gnp(48, 0.2, 2, 71))
        .flight_capacity(16)
        .history_capacity(4)
        .build();
    assert_zero_alloc_steady_state(e, "flight=16 history=4");
}

#[test]
fn wrapping_recorder_rings_record_while_silent() {
    let mut e = Engine::builder(Problem::random_gnp(48, 0.2, 2, 71))
        .flight_capacity(16)
        .history_capacity(4)
        .build();
    let batches = structural_cycle(&e);
    let mut report = DeltaReport::default();
    for _ in 0..3 {
        for b in &batches {
            e.apply_batch_into(b, &mut report).unwrap();
        }
    }
    let mark = ALLOCS.load(Ordering::Relaxed);
    let dropped_before = e.flight().dropped();
    let evicted_before = e.history().evicted();
    for b in &batches {
        e.apply_batch_into(b, &mut report).unwrap();
    }
    assert_eq!(
        ALLOCS.load(Ordering::Relaxed) - mark,
        0,
        "recording through wraparound must not allocate"
    );
    assert!(e.flight().dropped() > dropped_before, "ring overwrote events");
    assert!(e.history().evicted() > evicted_before, "history slid its window");
    assert_eq!(e.flight().len(), e.flight().capacity(), "ring stays full");
    assert!((e.flight().occupancy() - 1.0).abs() < 1e-12);
    assert_eq!(
        e.checkpoint_epoch().0,
        e.history().steps().next().unwrap().epoch - 1,
        "checkpoint tracks the evicted prefix"
    );
    e.certify().expect("recording engine stays canonical");
}

/// The contract is scoped: weight events go through the rank-splice
/// kernel, which allocates by design. Pin that boundary so a future
/// "fix" doesn't silently widen or narrow the claim.
#[test]
fn weight_events_are_outside_the_contract() {
    let mut e = Engine::new(Problem::random_gnp(48, 0.2, 2, 71));
    let mut report = DeltaReport::default();
    for q in [1, 2, 1, 2] {
        e.apply_batch_into(
            &[EngineEvent::QuotaChange { node: NodeId(7), quota: q }],
            &mut report,
        )
        .unwrap();
    }
    let mark = ALLOCS.load(Ordering::Relaxed);
    e.apply_batch_into(
        &[EngineEvent::QuotaChange { node: NodeId(7), quota: 1 }],
        &mut report,
    )
    .unwrap();
    assert!(
        ALLOCS.load(Ordering::Relaxed) > mark,
        "quota events allocate in the splice kernel — if this now passes \
         allocation-free, extend the zero-alloc contract to weight events"
    );
    e.certify().expect("still canonical");
}
