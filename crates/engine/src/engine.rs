//! [`Engine`] — certified bounded repair of the locally-heaviest matching.
//!
//! ## Why a heap over final ranks is enough
//!
//! The maintained matching is the *canonical* greedy outcome: edge `e` is
//! selected iff it is alive and, at each endpoint `x`, fewer than `b_x`
//! **selected edges heavier than `e`** are incident to `x`. That
//! definition is self-referential only downward — `e`'s status depends on
//! strictly heavier edges alone (the confluence behind the paper's
//! Lemmas 3–6). So repair runs a min-heap keyed by rank (heaviest first):
//!
//! * it is seeded with every edge an event directly perturbs (see the
//!   per-variant notes on [`EngineEvent`] handling below);
//! * popping is monotone non-decreasing in rank, and when an edge's
//!   status *flips*, only the strictly lighter edges at its two endpoints
//!   whose status the flip can actually move are pushed: a flip **on**
//!   tightens the endpoints, so only lighter *selected* edges (at most
//!   `b` per node) can turn off; a flip **off** relaxes them, so only
//!   lighter *unselected* alive edges can turn on;
//! * each edge enters the heap at most once per batch (a `queued` bitmap;
//!   re-evaluation is never needed because everything heavier is already
//!   final when an edge is popped).
//!
//! Dirty-set seeding per event:
//!
//! * `EdgeAdd` / `EdgeRemove` — the edge itself. A removed edge evaluates
//!   to "must not be selected", and its un-selection cascades.
//! * `NodeJoin` / `NodeLeave` — all universe edges incident to the node:
//!   each may change aliveness. (Weights do not change — they live on the
//!   universe.)
//! * `QuotaChange` / `PreferenceUpdate` at `i` — these move *ranks*, so
//!   the "heavier than" context changes at `i` **and at every
//!   neighbour `j`**: the 2-hop seed is all edges incident to `i` plus
//!   all edges incident to each neighbour of `i`. Anything further is
//!   reachable only through a flip, which the cascade covers.
//!
//! During repair a node can transiently exceed its quota (a heavier edge
//! is selected before the displaced lighter one is popped), which is why
//! the engine writes through `BMatching::insert_unchecked`; the canonical
//! definition guarantees quotas hold again when the heap drains.

use crate::dynamic::DynamicProblem;
use crate::event::{EngineError, EngineEvent};
use crate::report::{DeltaReport, Epoch};
use owp_graph::{EdgeId, NodeId};
use owp_matching::satisfaction::node_satisfaction;
use owp_matching::{lic, BMatching, EdgeRank, Problem, SelectionPolicy};
use owp_telemetry::{NullRecorder, Recorder, TelemetryEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The event-driven engine: owns a [`DynamicProblem`] and keeps the exact
/// locally-heaviest matching of its alive sub-instance through every
/// applied batch ([`Engine::certify`] checks the invariant on demand).
#[derive(Clone, Debug)]
pub struct Engine {
    dp: DynamicProblem,
    matching: BMatching,
    /// Selected edge ids per node, mirroring `matching.connections` — the
    /// repair loop needs edge ids (for O(1) rank lookups) where
    /// [`BMatching`] stores matched neighbours, and resolving them through
    /// an adjacency scan is ruinous at scale-free hubs.
    sel: Vec<Vec<EdgeId>>,
    /// Per-node satisfaction under the universe convention; 0 while
    /// inactive. Only nodes a batch touches are recomputed.
    sat: Vec<f64>,
    total_sat: f64,
    epoch: Epoch,
}

/// Selected edges at `x` strictly heavier than rank `r` — the canonical
/// definition's per-endpoint counter (at most `b_x` candidates).
#[inline]
fn heavier_selected(order: &owp_matching::EdgeOrder, sel: &[Vec<EdgeId>], x: NodeId, r: EdgeRank) -> u32 {
    sel[x.index()].iter().filter(|&&f| order.rank(f) < r).count() as u32
}

impl Engine {
    /// Starts the engine over `problem` with every node active and every
    /// edge present, computing the canonical matching from scratch (epoch
    /// 0).
    pub fn new(problem: Problem) -> Self {
        let dp = DynamicProblem::new(problem);
        let g = dp.graph();
        let mut matching = BMatching::empty(g);
        let mut sel: Vec<Vec<EdgeId>> = vec![Vec::new(); g.node_count()];
        let mut slots: Vec<u32> = g.nodes().map(|i| dp.quotas().get(i)).collect();
        for &e in dp.order().heaviest_first() {
            let (u, v) = g.endpoints(e);
            if slots[u.index()] > 0 && slots[v.index()] > 0 {
                matching.insert_unchecked(g, e);
                sel[u.index()].push(e);
                sel[v.index()].push(e);
                slots[u.index()] -= 1;
                slots[v.index()] -= 1;
            }
        }
        let sat: Vec<f64> = g
            .nodes()
            .map(|i| node_satisfaction(dp.prefs(), dp.quotas(), i, matching.connections(i)))
            .collect();
        let total_sat = sat.iter().sum();
        Engine {
            dp,
            matching,
            sel,
            sat,
            total_sat,
            epoch: Epoch(0),
        }
    }

    /// The dynamic instance the engine maintains.
    pub fn dynamic(&self) -> &DynamicProblem {
        &self.dp
    }

    /// The maintained matching (edge ids are universe ids).
    pub fn matching(&self) -> &BMatching {
        &self.matching
    }

    /// The current epoch (one tick per applied batch, including empty
    /// ones).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Total satisfaction over active peers, maintained incrementally.
    pub fn total_satisfaction(&self) -> f64 {
        self.total_sat
    }

    /// Satisfaction of peer `i` (0 while inactive).
    pub fn satisfaction(&self, i: NodeId) -> f64 {
        self.sat[i.index()]
    }

    /// Applies one event. Equivalent to a one-element
    /// [`Engine::apply_batch`].
    pub fn apply(&mut self, event: EngineEvent) -> Result<DeltaReport, EngineError> {
        self.apply_batch(std::slice::from_ref(&event))
    }

    /// Applies a batch atomically: the whole batch is validated against a
    /// scratch copy of the membership flags first, so an `Err` leaves the
    /// engine untouched (same epoch, same matching). On success all
    /// events take effect together and **one** bounded repair restores
    /// the canonical matching.
    pub fn apply_batch(&mut self, events: &[EngineEvent]) -> Result<DeltaReport, EngineError> {
        self.apply_batch_traced(events, &mut NullRecorder)
    }

    /// [`Engine::apply_batch`] that also emits the `Engine*` telemetry
    /// branch: one `EngineReranked` per weight-changing event, one
    /// `EngineEdgeAdded`/`EngineEdgeRemoved` per matching flip, and a
    /// closing `EngineBatchApplied`, all stamped with the new epoch.
    pub fn apply_batch_traced<R: Recorder>(
        &mut self,
        events: &[EngineEvent],
        rec: &mut R,
    ) -> Result<DeltaReport, EngineError> {
        self.validate(events)?;
        let epoch = Epoch(self.epoch.0 + 1);
        let n = self.dp.graph().node_count();
        let m = self.dp.graph().edge_count();

        // ---- apply all events, collecting seeds (heap built afterwards,
        // once ranks are final) and the nodes whose satisfaction inputs
        // changed.
        let mut seeds: Vec<EdgeId> = Vec::new();
        let mut touched = vec![false; n];
        let mut touched_nodes: Vec<NodeId> = Vec::new();
        let touch = |i: NodeId, touched: &mut Vec<bool>, list: &mut Vec<NodeId>| {
            if !touched[i.index()] {
                touched[i.index()] = true;
                list.push(i);
            }
        };
        let mut reranked = 0usize;
        let mut rerank_list: Vec<EdgeId> = Vec::new();
        for ev in events {
            match ev {
                EngineEvent::NodeJoin { node } => {
                    self.dp.set_active(*node, true);
                    seeds.extend(self.dp.graph().neighbors(*node).iter().map(|&(_, e)| e));
                    touch(*node, &mut touched, &mut touched_nodes);
                }
                EngineEvent::NodeLeave { node } => {
                    self.dp.set_active(*node, false);
                    seeds.extend(self.dp.graph().neighbors(*node).iter().map(|&(_, e)| e));
                    touch(*node, &mut touched, &mut touched_nodes);
                }
                EngineEvent::EdgeAdd { u, v } => {
                    let e = self.dp.graph().edge_between(*u, *v).expect("validated");
                    self.dp.set_present(e, true);
                    seeds.push(e);
                }
                EngineEvent::EdgeRemove { u, v } => {
                    let e = self.dp.graph().edge_between(*u, *v).expect("validated");
                    self.dp.set_present(e, false);
                    seeds.push(e);
                }
                EngineEvent::QuotaChange { node, quota } => {
                    let changed = self.dp.apply_quota(*node, *quota);
                    reranked += changed.len();
                    if rec.is_enabled() {
                        rec.record(TelemetryEvent::EngineReranked {
                            epoch: epoch.0,
                            edges: changed.len() as u32,
                        });
                    }
                    rerank_list.extend(changed);
                    self.seed_two_hop(*node, &mut seeds);
                    touch(*node, &mut touched, &mut touched_nodes);
                }
                EngineEvent::PreferenceUpdate { node, list } => {
                    let changed = self.dp.apply_prefs(*node, list.clone());
                    reranked += changed.len();
                    if rec.is_enabled() {
                        rec.record(TelemetryEvent::EngineReranked {
                            epoch: epoch.0,
                            edges: changed.len() as u32,
                        });
                    }
                    rerank_list.extend(changed);
                    self.seed_two_hop(*node, &mut seeds);
                    touch(*node, &mut touched, &mut touched_nodes);
                }
            }
        }
        // One splice for the whole batch: `update_keys` recomputes the
        // moved keys from the *final* weights, so folding every event's
        // changed set into a single call is exact (and turns k weight
        // events from k O(m) splices into one).
        self.dp.rerank(&rerank_list);

        // ---- bounded repair over the dirty region, heaviest first.
        let mut queued = vec![false; m];
        let mut heap: BinaryHeap<Reverse<(EdgeRank, u32)>> = BinaryHeap::new();
        {
            let order = self.dp.order();
            for e in seeds {
                if !queued[e.index()] {
                    queued[e.index()] = true;
                    heap.push(Reverse((order.rank(e), e.0)));
                }
            }
        }

        let mut evaluated = 0usize;
        let mut edges_added: Vec<EdgeId> = Vec::new();
        let mut edges_removed: Vec<EdgeId> = Vec::new();
        let dp = &self.dp;
        let matching = &mut self.matching;
        let sel = &mut self.sel;
        let g = dp.graph();
        let order = dp.order();
        while let Some(Reverse((r, eid))) = heap.pop() {
            let e = EdgeId(eid);
            evaluated += 1;
            let (u, v) = g.endpoints(e);
            let desired = dp.is_alive(e)
                && heavier_selected(order, sel, u, r) < dp.quotas().get(u)
                && heavier_selected(order, sel, v, r) < dp.quotas().get(v);
            if desired == matching.contains(e) {
                continue;
            }
            touch(u, &mut touched, &mut touched_nodes);
            touch(v, &mut touched, &mut touched_nodes);
            if desired {
                // Turning `e` on tightens both endpoints: only strictly
                // lighter *selected* edges there (≤ b each) can flip off.
                for x in [u, v] {
                    for &f in &sel[x.index()] {
                        let rf = order.rank(f);
                        if rf > r && !queued[f.index()] {
                            queued[f.index()] = true;
                            heap.push(Reverse((rf, f.0)));
                        }
                    }
                }
                matching.insert_unchecked(g, e);
                sel[u.index()].push(e);
                sel[v.index()].push(e);
                edges_added.push(e);
                if rec.is_enabled() {
                    rec.record(TelemetryEvent::EngineEdgeAdded { epoch: epoch.0, edge: e });
                }
            } else {
                matching.remove(g, e);
                sel[u.index()].retain(|&f| f != e);
                sel[v.index()].retain(|&f| f != e);
                edges_removed.push(e);
                if rec.is_enabled() {
                    rec.record(TelemetryEvent::EngineEdgeRemoved { epoch: epoch.0, edge: e });
                }
                // Turning `e` off relaxes both endpoints: only strictly
                // lighter *unselected* alive edges there can flip on.
                for x in [u, v] {
                    for &(_, f) in g.neighbors(x) {
                        if !queued[f.index()] && !matching.contains(f) {
                            let rf = order.rank(f);
                            if rf > r && dp.is_alive(f) {
                                queued[f.index()] = true;
                                heap.push(Reverse((rf, f.0)));
                            }
                        }
                    }
                }
            }
        }

        // ---- refresh satisfaction of exactly the touched nodes.
        let old_total = self.total_sat;
        for &i in &touched_nodes {
            let new = if self.dp.is_active(i) {
                node_satisfaction(
                    self.dp.prefs(),
                    self.dp.quotas(),
                    i,
                    self.matching.connections(i),
                )
            } else {
                0.0
            };
            self.total_sat += new - self.sat[i.index()];
            self.sat[i.index()] = new;
        }

        self.epoch = epoch;
        if rec.is_enabled() {
            rec.record(TelemetryEvent::EngineBatchApplied {
                epoch: epoch.0,
                events: events.len() as u32,
                evaluated: evaluated as u32,
                added: edges_added.len() as u32,
                removed: edges_removed.len() as u32,
            });
        }
        Ok(DeltaReport {
            epoch,
            events: events.len(),
            edges_added,
            edges_removed,
            evaluated,
            reranked,
            delta_satisfaction: self.total_sat - old_total,
            total_satisfaction: self.total_sat,
            matching_size: self.matching.size(),
        })
    }

    /// The 2-hop dirty seed of a weight-changing event at `i`: edges
    /// incident to `i` and to each of `i`'s neighbours.
    fn seed_two_hop(&self, i: NodeId, seeds: &mut Vec<EdgeId>) {
        let g = self.dp.graph();
        for &(j, e) in g.neighbors(i) {
            seeds.push(e);
            seeds.extend(g.neighbors(j).iter().map(|&(_, f)| f));
        }
    }

    /// Whole-batch validation against scratch membership flags; `Err`
    /// means nothing was (or will be) applied.
    fn validate(&self, events: &[EngineEvent]) -> Result<(), EngineError> {
        let g = self.dp.graph();
        let n = g.node_count();
        let mut active = self.dp.active_flags().to_vec();
        let mut present = self.dp.present_flags().to_vec();
        let check_node = |i: NodeId| {
            if i.index() < n {
                Ok(())
            } else {
                Err(EngineError::UnknownNode(i))
            }
        };
        for ev in events {
            match ev {
                EngineEvent::NodeJoin { node } => {
                    check_node(*node)?;
                    if active[node.index()] {
                        return Err(EngineError::AlreadyActive(*node));
                    }
                    active[node.index()] = true;
                }
                EngineEvent::NodeLeave { node } => {
                    check_node(*node)?;
                    if !active[node.index()] {
                        return Err(EngineError::NotActive(*node));
                    }
                    active[node.index()] = false;
                }
                EngineEvent::EdgeAdd { u, v } => {
                    check_node(*u)?;
                    check_node(*v)?;
                    let e = g.edge_between(*u, *v).ok_or(EngineError::UnknownEdge(*u, *v))?;
                    if present[e.index()] {
                        return Err(EngineError::EdgePresent(*u, *v));
                    }
                    present[e.index()] = true;
                }
                EngineEvent::EdgeRemove { u, v } => {
                    check_node(*u)?;
                    check_node(*v)?;
                    let e = g.edge_between(*u, *v).ok_or(EngineError::UnknownEdge(*u, *v))?;
                    if !present[e.index()] {
                        return Err(EngineError::EdgeAbsent(*u, *v));
                    }
                    present[e.index()] = false;
                }
                EngineEvent::QuotaChange { node, .. } => check_node(*node)?,
                EngineEvent::PreferenceUpdate { node, list } => {
                    check_node(*node)?;
                    // A permutation of the universe neighbourhood: right
                    // length, no duplicates, all neighbours.
                    if list.len() != g.degree(*node) {
                        return Err(EngineError::InvalidPreferences(*node));
                    }
                    let mut sorted = list.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    if sorted.len() != list.len()
                        || !sorted.iter().zip(g.neighbor_ids(*node)).all(|(&a, b)| a == b)
                    {
                        return Err(EngineError::InvalidPreferences(*node));
                    }
                }
            }
        }
        Ok(())
    }

    /// Certified repair, checked: recomputes the matching **from scratch**
    /// (LIC on the current alive snapshot) and compares edge for edge.
    /// `Err` carries a description of the first divergence.
    pub fn certify(&self) -> Result<(), String> {
        let (snap, map) = self.dp.snapshot_with_map();
        let reference = lic(&snap, SelectionPolicy::InOrder);
        for (k, &ue) in map.iter().enumerate() {
            let se = EdgeId(k as u32);
            if reference.contains(se) != self.matching.contains(ue) {
                return Err(format!(
                    "{}: engine {} universe edge {ue:?} but the from-scratch run {} it",
                    self.epoch,
                    if self.matching.contains(ue) { "selects" } else { "omits" },
                    if reference.contains(se) { "selects" } else { "omits" },
                ));
            }
        }
        if reference.size() != self.matching.size() {
            return Err(format!(
                "{}: engine holds {} edges ({} alive from scratch) — a dead edge is still selected",
                self.epoch,
                self.matching.size(),
                reference.size(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(seed: u64) -> Engine {
        Engine::new(Problem::random_gnp(24, 0.3, 2, seed))
    }

    #[test]
    fn initial_state_is_canonical_and_certified() {
        let e = engine(1);
        assert_eq!(e.epoch(), Epoch(0));
        e.certify().expect("epoch 0");
        let reference = lic(
            &Problem::random_gnp(24, 0.3, 2, 1),
            SelectionPolicy::InOrder,
        );
        assert!(e.matching().same_edges(&reference));
        let direct: f64 = reference.total_satisfaction(&Problem::random_gnp(24, 0.3, 2, 1));
        assert!((e.total_satisfaction() - direct).abs() < 1e-9);
    }

    #[test]
    fn node_leave_seeds_its_neighbourhood() {
        let mut e = engine(2);
        let victim = NodeId(3);
        let deg = e.dynamic().graph().degree(victim);
        let r = e.apply(EngineEvent::NodeLeave { node: victim }).unwrap();
        // The dirty region starts from the victim's incident edges and only
        // grows by cascade — with nothing else perturbed it stays well under
        // the instance size.
        assert!(r.evaluated >= deg, "every incident edge re-examined");
        assert!(e.matching().connections(victim).is_empty());
        assert_eq!(e.satisfaction(victim), 0.0);
        e.certify().expect("after leave");
    }

    #[test]
    fn node_join_restores_participation() {
        let mut e = engine(3);
        let victim = NodeId(5);
        e.apply(EngineEvent::NodeLeave { node: victim }).unwrap();
        let r = e.apply(EngineEvent::NodeJoin { node: victim }).unwrap();
        assert!(r.evaluated >= e.dynamic().graph().degree(victim));
        e.certify().expect("after rejoin");
        // Rejoining everything returns to the original canonical matching.
        let fresh = engine(3);
        assert!(e.matching().same_edges(fresh.matching()));
        assert_eq!(e.epoch(), Epoch(2));
    }

    #[test]
    fn edge_remove_and_add_seed_the_edge() {
        let mut e = engine(4);
        let g = e.dynamic().graph();
        let edge = g.edges().next().unwrap();
        let (u, v) = g.endpoints(edge);
        let r = e.apply(EngineEvent::EdgeRemove { u, v }).unwrap();
        assert!(r.evaluated >= 1);
        assert!(!e.matching().contains(edge));
        assert!(!e.dynamic().is_present(edge));
        e.certify().expect("after remove");
        let r = e.apply(EngineEvent::EdgeAdd { u, v }).unwrap();
        assert!(r.evaluated >= 1);
        e.certify().expect("after re-add");
        assert!(e.matching().same_edges(engine(4).matching()));
    }

    #[test]
    fn quota_change_moves_weights_and_stays_certified() {
        let mut e = engine(5);
        let node = NodeId(7);
        let r = e.apply(EngineEvent::QuotaChange { node, quota: 1 }).unwrap();
        assert_eq!(r.reranked, e.dynamic().graph().degree(node));
        assert!(e.matching().degree(node) <= 1);
        e.certify().expect("after quota cut");
        // Weight maintenance: the stored weights equal a fresh eq. 9 pass.
        let dp = e.dynamic();
        let fresh = owp_matching::EdgeWeights::compute(dp.graph(), dp.prefs(), dp.quotas());
        for edge in dp.graph().edges() {
            assert_eq!(dp.weights().get(edge), fresh.get(edge));
        }
    }

    #[test]
    fn preference_update_moves_weights_and_stays_certified() {
        let mut e = engine(6);
        let node = NodeId(2);
        let mut list: Vec<NodeId> =
            e.dynamic().graph().neighbor_ids(node).collect();
        list.reverse();
        let r = e
            .apply(EngineEvent::PreferenceUpdate { node, list: list.clone() })
            .unwrap();
        assert_eq!(r.reranked, list.len());
        assert_eq!(e.dynamic().prefs().list(node), &list[..]);
        e.certify().expect("after preference update");
        let dp = e.dynamic();
        let fresh = owp_matching::EdgeWeights::compute(dp.graph(), dp.prefs(), dp.quotas());
        for edge in dp.graph().edges() {
            assert_eq!(dp.weights().get(edge), fresh.get(edge));
        }
    }

    #[test]
    fn batches_are_atomic_on_error() {
        let mut e = engine(7);
        let before = e.clone();
        let err = e.apply_batch(&[
            EngineEvent::NodeLeave { node: NodeId(1) },
            EngineEvent::NodeLeave { node: NodeId(1) }, // invalid: already gone
        ]);
        assert_eq!(err.unwrap_err(), EngineError::NotActive(NodeId(1)));
        assert_eq!(e.epoch(), before.epoch());
        assert!(e.matching().same_edges(before.matching()));
        assert!(e.dynamic().is_active(NodeId(1)));
    }

    #[test]
    fn validation_errors_cover_every_variant() {
        let mut e = engine(8);
        let (non_edge, first_edge_endpoints) = {
            let g = e.dynamic().graph();
            // A non-adjacent pair must exist in a sparse G(n, p).
            let mut pair = None;
            'outer: for a in g.nodes() {
                for b in g.nodes() {
                    if a < b && !g.has_edge(a, b) {
                        pair = Some((a, b));
                        break 'outer;
                    }
                }
            }
            let edge = g.edges().next().unwrap();
            (pair.expect("sparse graph has a non-edge"), g.endpoints(edge))
        };
        let far = NodeId(1000);
        assert_eq!(
            e.apply(EngineEvent::NodeJoin { node: far }).unwrap_err(),
            EngineError::UnknownNode(far)
        );
        assert_eq!(
            e.apply(EngineEvent::NodeJoin { node: NodeId(0) }).unwrap_err(),
            EngineError::AlreadyActive(NodeId(0))
        );
        let (u, v) = non_edge;
        assert_eq!(
            e.apply(EngineEvent::EdgeRemove { u, v }).unwrap_err(),
            EngineError::UnknownEdge(u, v)
        );
        let (a, b) = first_edge_endpoints;
        assert_eq!(
            e.apply(EngineEvent::EdgeAdd { u: a, v: b }).unwrap_err(),
            EngineError::EdgePresent(a, b)
        );
        assert_eq!(
            e.apply(EngineEvent::PreferenceUpdate { node: NodeId(0), list: vec![] })
                .unwrap_err(),
            EngineError::InvalidPreferences(NodeId(0))
        );
        assert_eq!(e.epoch(), Epoch(0), "failed singles never tick the epoch");
    }

    #[test]
    fn one_batch_repairs_many_events_at_once() {
        let mut e = engine(9);
        let r = e
            .apply_batch(&[
                EngineEvent::NodeLeave { node: NodeId(0) },
                EngineEvent::NodeLeave { node: NodeId(1) },
                EngineEvent::QuotaChange { node: NodeId(2), quota: 1 },
            ])
            .unwrap();
        assert_eq!(r.events, 3);
        assert_eq!(r.epoch, Epoch(1));
        assert_eq!(r.matching_size, e.matching().size());
        e.certify().expect("after mixed batch");
    }

    #[test]
    fn traced_batches_emit_the_engine_taxonomy() {
        use owp_telemetry::EventLog;
        let mut e = engine(10);
        let mut log = EventLog::enabled();
        e.apply_batch_traced(&[EngineEvent::NodeLeave { node: NodeId(4) }], &mut log)
            .unwrap();
        let tags: Vec<&str> = log.events().iter().map(|ev| ev.tag()).collect();
        assert_eq!(tags.last(), Some(&"engine_batch_applied"));
        assert!(tags
            .iter()
            .all(|t| t.starts_with("engine_")), "only engine events: {tags:?}");
    }

    #[test]
    fn empty_batch_is_a_quiescent_tick() {
        let mut e = engine(11);
        let r = e.apply_batch(&[]).unwrap();
        assert!(r.is_quiescent());
        assert_eq!(r.net_edges(), 0);
        assert_eq!(r.evaluated, 0);
        assert_eq!(e.epoch(), Epoch(1));
    }
}
