//! [`Engine`] — certified bounded repair of the locally-heaviest matching.
//!
//! ## Why a heap over final ranks is enough
//!
//! The maintained matching is the *canonical* greedy outcome: edge `e` is
//! selected iff it is alive and, at each endpoint `x`, fewer than `b_x`
//! **selected edges heavier than `e`** are incident to `x`. That
//! definition is self-referential only downward — `e`'s status depends on
//! strictly heavier edges alone (the confluence behind the paper's
//! Lemmas 3–6). So repair runs a min-heap keyed by rank (heaviest first):
//!
//! * it is seeded with every edge an event directly perturbs (see the
//!   per-variant notes on [`EngineEvent`] handling below);
//! * when an edge's status *flips*, only the strictly lighter edges at
//!   its two endpoints whose status the flip can actually move are
//!   pushed: a flip **on** tightens the endpoints, so only lighter
//!   *selected* edges (at most `b` per node) can turn off; a flip **off**
//!   relaxes them, so only lighter *unselected* alive edges can turn on;
//! * the `queued` bitmap is an *in-heap* marker (set on push, cleared on
//!   pop), so an edge whose heavier context changes again later in the
//!   batch re-enters the frontier and is re-evaluated. With a single
//!   shard pops are monotone in rank and each edge is evaluated exactly
//!   once, recovering the classic once-per-batch behaviour; with several
//!   shards the re-evaluation is what makes the two-phase rounds below
//!   converge to the same unique fixpoint.
//!
//! ## Sharded two-phase repair (DESIGN.md §11)
//!
//! Under a [`ShardMap`] the batch repair runs in rounds until quiescent:
//!
//! * **Phase 1 (parallel):** every shard with pending seeds repairs its
//!   *interior* edges with the heap above, reading boundary-edge statuses
//!   as frozen; any lighter boundary edge a flip would push is recorded
//!   as a rank-ordered *proposal* instead.
//! * **Phase 2 (sequential, deterministic):** all proposals plus any
//!   event-seeded boundary edges merge into one global frontier ordered
//!   by `EdgeOrder` rank. Boundary flips cascade to lighter boundary
//!   edges in-phase and re-seed the owning shard for lighter interior
//!   edges, starting the next round.
//!
//! Each round's frontier only ever moves to strictly lighter ranks, so by
//! induction on rank the statuses stabilize at the canonical fixpoint —
//! the same matching `lic()` computes from scratch, bit for bit, for any
//! shard count and any thread count ([`Engine::certify`] checks it).
//!
//! Dirty-set seeding per event:
//!
//! * `EdgeAdd` / `EdgeRemove` — the edge itself. A removed edge evaluates
//!   to "must not be selected", and its un-selection cascades.
//! * `NodeJoin` / `NodeLeave` — all universe edges incident to the node:
//!   each may change aliveness. (Weights do not change — they live on the
//!   universe.)
//! * `QuotaChange` / `PreferenceUpdate` at `i` — these move *ranks*, so
//!   the "heavier than" context changes at `i` **and at every
//!   neighbour `j`**: the 2-hop seed is all edges incident to `i` plus
//!   all edges incident to each neighbour of `i`. Anything further is
//!   reachable only through a flip, which the cascade covers.
//!
//! During repair a node can transiently exceed its quota (a heavier edge
//! is selected before the displaced lighter one is popped), which is why
//! the engine writes through `BMatching::insert_unchecked`; the canonical
//! definition guarantees quotas hold again when the repair converges.
//!
//! All repair state lives in reusable arenas ([`crate::scratch`]): after
//! warm-up a batch of structural events performs no heap allocation.

use crate::dynamic::DynamicProblem;
use crate::event::{EngineError, EngineEvent};
use crate::forensics::{self, InjectedFault, StepRing};
use crate::report::{DeltaReport, Epoch};
use crate::scratch::{EngineScratch, ShardState};
use crate::shard::{Partitioner, RangePartitioner, ShardMap, BOUNDARY};
use owp_graph::{EdgeId, Graph, NodeId};
use owp_matching::satisfaction::node_satisfaction;
use owp_matching::{lic, BMatching, EdgeOrder, EdgeRank, Problem, SelectionPolicy};
use owp_telemetry::{FlightRecorder, NullRecorder, Recorder, Tee, TelemetryEvent};
use std::cmp::Reverse;

/// Default flight-recorder capacity, in telemetry events. Sized so the
/// black box holds the last few hundred batches of structural churn
/// (~40 KiB) — "always-on" means the default build records.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Default black-box history depth, in batches. Bounds both the memory
/// held by recorded batches and the worst-case shrinker window.
pub const DEFAULT_HISTORY_CAPACITY: usize = 32;

/// The event-driven engine: owns a [`DynamicProblem`] and keeps the exact
/// locally-heaviest matching of its alive sub-instance through every
/// applied batch ([`Engine::certify`] checks the invariant on demand).
///
/// [`Engine::new`] runs single-sharded (the sequential fast path);
/// [`Engine::builder`] configures shard count, thread count and the
/// partitioner for the two-phase parallel mode.
#[derive(Clone, Debug)]
pub struct Engine {
    dp: DynamicProblem,
    matching: BMatching,
    /// Frozen partition of the universe graph (k=1 when unsharded).
    shard_map: ShardMap,
    /// Per-shard repair state: interior selected/queued bitmaps and the
    /// per-node selected-edge mirror (`FixedCsr` rows of global edge
    /// ids), which the repair needs for O(1) rank lookups where
    /// [`BMatching`] stores matched neighbours.
    shards: Vec<ShardState>,
    /// Engine-global arenas: boundary state, delta journal, validation
    /// scratch, touched tracking.
    scratch: EngineScratch,
    /// Worker budget for phase 1 (only meaningful with the `parallel`
    /// feature; clamped to the shard count).
    threads: usize,
    /// Per-node satisfaction under the universe convention; 0 while
    /// inactive. Only nodes a batch touches are recomputed.
    sat: Vec<f64>,
    total_sat: f64,
    epoch: Epoch,
    /// Always-on flight ring: every `Engine*` telemetry event of every
    /// applied batch, bounded, drop-counted (capacity 0 disables).
    flight: FlightRecorder,
    /// Black-box history of applied batches and injected faults.
    history: StepRing,
    /// Shadow membership state just *before* the oldest retained history
    /// step — the origin forensic replay starts from. Advanced lazily as
    /// the history ring evicts. `None` when history is disabled.
    checkpoint: Option<DynamicProblem>,
    /// Epoch the checkpoint corresponds to.
    checkpoint_epoch: Epoch,
    /// Boundary-merge rounds the last batch ran until quiescent.
    phase2_rounds: u64,
}

/// Configures an [`Engine`] before construction: shard count, thread
/// count, partitioner. Defaults: 1 shard, threads from `OWP_THREADS` or
/// the machine's available parallelism (clamped to the shard count),
/// [`RangePartitioner`].
pub struct EngineBuilder {
    problem: Problem,
    shards: usize,
    threads: Option<usize>,
    partitioner: Box<dyn Partitioner>,
    flight: usize,
    history: usize,
}

impl EngineBuilder {
    /// Number of shards `k ≥ 1` the universe graph is partitioned into.
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Phase-1 worker budget. An explicit value beats the `OWP_THREADS`
    /// environment variable, which beats the machine's available
    /// parallelism; all three are clamped to the shard count. Without
    /// the `parallel` feature the engine always repairs sequentially
    /// (the result is bit-identical either way).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = Some(t.max(1));
        self
    }

    /// Node-partitioning strategy (default: contiguous id ranges).
    pub fn partitioner(mut self, p: Box<dyn Partitioner>) -> Self {
        self.partitioner = p;
        self
    }

    /// Flight-recorder capacity in telemetry events
    /// ([`DEFAULT_FLIGHT_CAPACITY`] by default); 0 disables the ring.
    pub fn flight_capacity(mut self, events: usize) -> Self {
        self.flight = events;
        self
    }

    /// Black-box history depth in batches ([`DEFAULT_HISTORY_CAPACITY`]
    /// by default); 0 disables history, the shadow checkpoint and
    /// forensic replay.
    pub fn history_capacity(mut self, batches: usize) -> Self {
        self.history = batches;
        self
    }

    /// Builds the engine (computes the canonical matching from scratch).
    pub fn build(self) -> Engine {
        let threads = self
            .threads
            .unwrap_or_else(default_threads)
            .clamp(1, self.shards);
        Engine::layout(
            DynamicProblem::new(self.problem),
            self.shards,
            threads,
            self.partitioner.as_ref(),
            self.flight,
            self.history,
        )
    }
}

/// `OWP_THREADS` if set and parseable, else available parallelism.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("OWP_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            return t.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Selected edges in mirror row `row` strictly heavier than rank `r` —
/// the canonical definition's per-endpoint counter (at most `b_x`
/// candidates, since rows hold only selected edges).
#[inline]
fn heavier_selected(order: &EdgeOrder, row: &[u32], r: EdgeRank) -> u32 {
    row.iter().filter(|&&f| order.rank(EdgeId(f)) < r).count() as u32
}

/// Routes an event seed to its owner: interior edges to the shard's seed
/// list, boundary edges to the global phase-2 seed list.
#[inline]
fn route_seed(
    map: &ShardMap,
    shards: &mut [ShardState],
    scratch: &mut EngineScratch,
    e: EdgeId,
) {
    match map.edge_shard_raw(e) {
        BOUNDARY => scratch.bseeds.push(e),
        s => shards[s as usize].seeds.push(e),
    }
}

/// The 2-hop dirty seed of a weight-changing event at `i`: edges
/// incident to `i` and to each of `i`'s neighbours.
fn seed_two_hop(
    g: &Graph,
    map: &ShardMap,
    shards: &mut [ShardState],
    scratch: &mut EngineScratch,
    i: NodeId,
) {
    for &(j, e) in g.neighbors(i) {
        route_seed(map, shards, scratch, e);
        for &(_, f) in g.neighbors(j) {
            route_seed(map, shards, scratch, f);
        }
    }
}

/// Phase 1: repair the interior of every shard with pending seeds —
/// in parallel when the `parallel` feature is on and `threads > 1`.
fn run_phase1(
    dp: &DynamicProblem,
    map: &ShardMap,
    bsel: &[bool],
    shards: &mut [ShardState],
    threads: usize,
) {
    #[cfg(feature = "parallel")]
    if threads > 1 && shards.len() > 1 {
        par_phase1(dp, map, bsel, shards, threads);
        return;
    }
    let _ = threads;
    for st in shards.iter_mut() {
        if !st.seeds.is_empty() {
            repair_shard(dp, map, bsel, st);
        }
    }
}

/// Recursive binary fork over the shard slice: `threads` is the worker
/// budget, halved at each split, so thread count is controllable and
/// runs are reproducible (the split tree is deterministic; shard results
/// are independent, so scheduling cannot change the outcome).
#[cfg(feature = "parallel")]
fn par_phase1(
    dp: &DynamicProblem,
    map: &ShardMap,
    bsel: &[bool],
    shards: &mut [ShardState],
    threads: usize,
) {
    if threads <= 1 || shards.len() <= 1 {
        for st in shards.iter_mut() {
            if !st.seeds.is_empty() {
                repair_shard(dp, map, bsel, st);
            }
        }
        return;
    }
    let mid = shards.len() / 2;
    let (lo, hi) = shards.split_at_mut(mid);
    let t_hi = threads / 2;
    rayon::join(
        || par_phase1(dp, map, bsel, lo, threads - t_hi),
        || par_phase1(dp, map, bsel, hi, t_hi),
    );
}

/// Drains one shard's seed list through its rank-ordered heap, flipping
/// interior edges and recording rank-ordered proposals for any boundary
/// edge a flip would otherwise push. Boundary statuses (`bsel`) are
/// frozen for the whole phase — shards only read them, which is what
/// makes the phase race-free without locks.
fn repair_shard(dp: &DynamicProblem, map: &ShardMap, bsel: &[bool], st: &mut ShardState) {
    let g = dp.graph();
    let order = dp.order();
    let quotas = dp.quotas();

    for idx in 0..st.seeds.len() {
        let e = st.seeds[idx];
        let le = map.local_edge(e);
        if !st.queued[le] {
            st.queued[le] = true;
            st.heap.push(Reverse((order.rank(e), e.0)));
        }
    }
    st.seeds.clear();

    while let Some(Reverse((r, eid))) = st.heap.pop() {
        let e = EdgeId(eid);
        let le = map.local_edge(e);
        st.queued[le] = false;
        st.evaluated += 1;
        let (u, v) = g.endpoints(e);
        let (lu, lv) = (map.local_node(u), map.local_node(v));
        let desired = dp.is_alive(e)
            && heavier_selected(order, st.sel.row(lu), r) < quotas.get(u)
            && heavier_selected(order, st.sel.row(lv), r) < quotas.get(v);
        if desired == st.selected[le] {
            continue;
        }
        for lx in [lu, lv] {
            if !st.touched[lx] {
                st.touched[lx] = true;
                st.touched_nodes.push(lx as u32);
            }
        }
        if desired {
            // Turning `e` on tightens both endpoints: only strictly
            // lighter *selected* edges there (≤ b each) can flip off.
            for lx in [lu, lv] {
                for i in 0..st.sel.len(lx) {
                    let f = EdgeId(st.sel.row(lx)[i]);
                    let rf = order.rank(f);
                    if rf <= r {
                        continue;
                    }
                    if map.edge_shard_raw(f) == BOUNDARY {
                        st.proposals.push((rf, f.0));
                    } else {
                        let lf = map.local_edge(f);
                        if !st.queued[lf] {
                            st.queued[lf] = true;
                            st.heap.push(Reverse((rf, f.0)));
                        }
                    }
                }
            }
            st.selected[le] = true;
            st.sel.push(lu, e.0);
            st.sel.push(lv, e.0);
            st.flips.push((e.0, true));
        } else {
            st.selected[le] = false;
            st.sel.remove(lu, e.0);
            st.sel.remove(lv, e.0);
            st.flips.push((e.0, false));
            // Turning `e` off relaxes both endpoints: only strictly
            // lighter *unselected* alive edges there can flip on.
            for x in [u, v] {
                for &(_, f) in g.neighbors(x) {
                    let rf = order.rank(f);
                    if rf <= r || !dp.is_alive(f) {
                        continue;
                    }
                    if map.edge_shard_raw(f) == BOUNDARY {
                        if !bsel[map.local_edge(f)] {
                            st.proposals.push((rf, f.0));
                        }
                    } else {
                        let lf = map.local_edge(f);
                        if !st.selected[lf] && !st.queued[lf] {
                            st.queued[lf] = true;
                            st.heap.push(Reverse((rf, f.0)));
                        }
                    }
                }
            }
        }
    }
}

/// Phase 2: merges every shard's boundary proposals (plus event-seeded
/// boundary edges) into one global rank-ordered frontier and resolves
/// them sequentially — the deterministic commit. Lighter boundary
/// cascades stay in this frontier; lighter interior cascades re-seed the
/// owning shard for the next round.
fn merge_boundary(
    dp: &DynamicProblem,
    map: &ShardMap,
    shards: &mut [ShardState],
    scratch: &mut EngineScratch,
) {
    let g = dp.graph();
    let order = dp.order();
    let quotas = dp.quotas();

    for s in 0..shards.len() {
        for idx in 0..shards[s].proposals.len() {
            let (rf, f) = shards[s].proposals[idx];
            let b = map.local_edge(EdgeId(f));
            if !scratch.bqueued[b] {
                scratch.bqueued[b] = true;
                scratch.bheap.push(Reverse((rf, f)));
            }
        }
        shards[s].proposals.clear();
    }
    for idx in 0..scratch.bseeds.len() {
        let e = scratch.bseeds[idx];
        let b = map.local_edge(e);
        if !scratch.bqueued[b] {
            scratch.bqueued[b] = true;
            scratch.bheap.push(Reverse((order.rank(e), e.0)));
        }
    }
    scratch.bseeds.clear();

    while let Some(Reverse((r, eid))) = scratch.bheap.pop() {
        let e = EdgeId(eid);
        let be = map.local_edge(e);
        scratch.bqueued[be] = false;
        scratch.evaluated += 1;
        let (u, v) = g.endpoints(e);
        let (su, sv) = (map.shard_of_node(u), map.shard_of_node(v));
        let (lu, lv) = (map.local_node(u), map.local_node(v));
        let desired = dp.is_alive(e)
            && heavier_selected(order, shards[su].sel.row(lu), r) < quotas.get(u)
            && heavier_selected(order, shards[sv].sel.row(lv), r) < quotas.get(v);
        if desired == scratch.bselected[be] {
            continue;
        }
        scratch.touch(u);
        scratch.touch(v);
        if desired {
            for (sx, lx) in [(su, lu), (sv, lv)] {
                for i in 0..shards[sx].sel.len(lx) {
                    let f = EdgeId(shards[sx].sel.row(lx)[i]);
                    let rf = order.rank(f);
                    if rf <= r {
                        continue;
                    }
                    match map.edge_shard_raw(f) {
                        BOUNDARY => {
                            let bf = map.local_edge(f);
                            if !scratch.bqueued[bf] {
                                scratch.bqueued[bf] = true;
                                scratch.bheap.push(Reverse((rf, f.0)));
                            }
                        }
                        sf => shards[sf as usize].seeds.push(f),
                    }
                }
            }
            scratch.bselected[be] = true;
            shards[su].sel.push(lu, e.0);
            shards[sv].sel.push(lv, e.0);
            scratch.flips.push((e.0, true));
        } else {
            scratch.bselected[be] = false;
            shards[su].sel.remove(lu, e.0);
            shards[sv].sel.remove(lv, e.0);
            scratch.flips.push((e.0, false));
            for x in [u, v] {
                for &(_, f) in g.neighbors(x) {
                    let rf = order.rank(f);
                    if rf <= r || !dp.is_alive(f) {
                        continue;
                    }
                    match map.edge_shard_raw(f) {
                        BOUNDARY => {
                            let bf = map.local_edge(f);
                            if !scratch.bselected[bf] && !scratch.bqueued[bf] {
                                scratch.bqueued[bf] = true;
                                scratch.bheap.push(Reverse((rf, f.0)));
                            }
                        }
                        sf => {
                            let sf = sf as usize;
                            if !shards[sf].selected[map.local_edge(f)] {
                                shards[sf].seeds.push(f);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Engine {
    /// Starts the engine over `problem` with every node active and every
    /// edge present, computing the canonical matching from scratch (epoch
    /// 0). Single shard — the sequential fast path; use
    /// [`Engine::builder`] for the sharded parallel mode.
    pub fn new(problem: Problem) -> Self {
        Self::layout(
            DynamicProblem::new(problem),
            1,
            1,
            &RangePartitioner,
            DEFAULT_FLIGHT_CAPACITY,
            DEFAULT_HISTORY_CAPACITY,
        )
    }

    /// A configurable constructor: shard count, thread count,
    /// partitioner, forensic ring capacities. See [`EngineBuilder`].
    pub fn builder(problem: Problem) -> EngineBuilder {
        EngineBuilder {
            problem,
            shards: 1,
            threads: None,
            partitioner: Box::new(RangePartitioner),
            flight: DEFAULT_FLIGHT_CAPACITY,
            history: DEFAULT_HISTORY_CAPACITY,
        }
    }

    /// Starts an engine over an existing dynamic instance, membership
    /// flags and all — how forensic replay rebuilds the engine a recorded
    /// window ran against. Single shard, sequential, forensic rings
    /// disabled (a replay engine must not record itself).
    pub fn from_dynamic(dp: DynamicProblem) -> Self {
        Self::layout(dp, 1, 1, &RangePartitioner, 0, 0)
    }

    /// Rebuilds an engine from a durability snapshot taken at `epoch` —
    /// `matchd`'s crash-recovery path (DESIGN.md §13). The restored
    /// engine resumes the original epoch sequence, so WAL replay after it
    /// reproduces the pre-crash epochs exactly. Unlike
    /// [`Engine::from_dynamic`], the forensic rings run at their default
    /// capacities: a recovered daemon is a live engine, not a replay
    /// harness.
    pub fn from_snapshot(
        snapshot: &crate::forensics::OriginSnapshot,
        epoch: Epoch,
    ) -> Result<Self, String> {
        let dp = snapshot.restore()?;
        let mut e = Self::layout(
            dp,
            1,
            1,
            &RangePartitioner,
            DEFAULT_FLIGHT_CAPACITY,
            DEFAULT_HISTORY_CAPACITY,
        );
        e.epoch = epoch;
        e.checkpoint_epoch = epoch;
        Ok(e)
    }

    fn layout(
        dp: DynamicProblem,
        k: usize,
        threads: usize,
        partitioner: &dyn Partitioner,
        flight_cap: usize,
        history_cap: usize,
    ) -> Self {
        let checkpoint = (history_cap > 0).then(|| dp.clone());
        let g = dp.graph();
        let shard_map = ShardMap::new(g, k, partitioner);
        let mut shards: Vec<ShardState> =
            (0..k).map(|s| ShardState::new(g, &shard_map, s)).collect();
        let mut scratch =
            EngineScratch::new(g.node_count(), g.edge_count(), shard_map.boundary_count());
        let mut matching = BMatching::empty(g);
        let mut slots: Vec<u32> = g.nodes().map(|i| dp.quotas().get(i)).collect();
        for &e in dp.order().heaviest_first() {
            if !dp.is_alive(e) {
                continue;
            }
            let (u, v) = g.endpoints(e);
            if slots[u.index()] > 0 && slots[v.index()] > 0 {
                matching.insert_unchecked(g, e);
                slots[u.index()] -= 1;
                slots[v.index()] -= 1;
                let le = shard_map.local_edge(e);
                match shard_map.edge_shard_raw(e) {
                    BOUNDARY => scratch.bselected[le] = true,
                    s => shards[s as usize].selected[le] = true,
                }
                shards[shard_map.shard_of_node(u)]
                    .sel
                    .push(shard_map.local_node(u), e.0);
                shards[shard_map.shard_of_node(v)]
                    .sel
                    .push(shard_map.local_node(v), e.0);
            }
        }
        let sat: Vec<f64> = g
            .nodes()
            .map(|i| {
                if dp.is_active(i) {
                    node_satisfaction(dp.prefs(), dp.quotas(), i, matching.connections(i))
                } else {
                    0.0
                }
            })
            .collect();
        let total_sat = sat.iter().sum();
        Engine {
            dp,
            matching,
            shard_map,
            shards,
            scratch,
            threads: threads.max(1),
            sat,
            total_sat,
            epoch: Epoch(0),
            flight: FlightRecorder::new(flight_cap),
            history: StepRing::new(history_cap),
            checkpoint,
            checkpoint_epoch: Epoch(0),
            phase2_rounds: 0,
        }
    }

    /// The dynamic instance the engine maintains.
    pub fn dynamic(&self) -> &DynamicProblem {
        &self.dp
    }

    /// The maintained matching (edge ids are universe ids).
    pub fn matching(&self) -> &BMatching {
        &self.matching
    }

    /// The frozen shard partition (one shard when unsharded).
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_map.shard_count()
    }

    /// Phase-1 worker budget (1 = sequential).
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Interior edges shard `s` evaluated in the last applied batch.
    pub fn shard_evaluated(&self, s: usize) -> u64 {
        self.shards[s].evaluated
    }

    /// Boundary edges the phase-2 merge evaluated in the last applied
    /// batch.
    pub fn boundary_evaluated(&self) -> u64 {
        self.scratch.evaluated
    }

    /// Two-phase repair rounds the last applied batch ran until quiescent
    /// (1 when a single phase-1 pass settled everything; always 1
    /// unsharded).
    pub fn phase2_rounds(&self) -> u64 {
        self.phase2_rounds
    }

    /// The always-on flight ring (the telemetry black box).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The black-box history of recent batches and injected faults.
    pub fn history(&self) -> &StepRing {
        &self.history
    }

    /// The shadow membership checkpoint the retained history replays
    /// from; `None` when history is disabled.
    pub fn checkpoint(&self) -> Option<&DynamicProblem> {
        self.checkpoint.as_ref()
    }

    /// Epoch the checkpoint corresponds to — the state just before the
    /// oldest retained history step.
    pub fn checkpoint_epoch(&self) -> Epoch {
        self.checkpoint_epoch
    }

    /// The current epoch (one tick per applied batch, including empty
    /// ones).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Total satisfaction over active peers, maintained incrementally.
    pub fn total_satisfaction(&self) -> f64 {
        self.total_sat
    }

    /// Satisfaction of peer `i` (0 while inactive).
    pub fn satisfaction(&self, i: NodeId) -> f64 {
        self.sat[i.index()]
    }

    /// Applies one event. Equivalent to a one-element
    /// [`Engine::apply_batch`].
    pub fn apply(&mut self, event: EngineEvent) -> Result<DeltaReport, EngineError> {
        self.apply_batch(std::slice::from_ref(&event))
    }

    /// Applies a batch atomically: the whole batch is validated against a
    /// scratch copy of the membership flags first, so an `Err` leaves the
    /// engine untouched (same epoch, same matching). On success all
    /// events take effect together and **one** bounded repair restores
    /// the canonical matching.
    pub fn apply_batch(&mut self, events: &[EngineEvent]) -> Result<DeltaReport, EngineError> {
        let mut report = DeltaReport::default();
        self.apply_batch_traced_into(events, &mut NullRecorder, &mut report)?;
        Ok(report)
    }

    /// [`Engine::apply_batch`] writing into a caller-owned report, so the
    /// delta `Vec`s are reused across batches instead of reallocated —
    /// the steady-state zero-allocation entry point. The report's
    /// previous contents are overwritten (untouched on `Err`).
    pub fn apply_batch_into(
        &mut self,
        events: &[EngineEvent],
        report: &mut DeltaReport,
    ) -> Result<(), EngineError> {
        self.apply_batch_traced_into(events, &mut NullRecorder, report)
    }

    /// [`Engine::apply_batch`] that also emits the `Engine*` telemetry
    /// branch: one `EngineReranked` per weight-changing event, one
    /// `EngineEdgeAdded`/`EngineEdgeRemoved` per matching flip, and a
    /// closing `EngineBatchApplied`, all stamped with the new epoch.
    pub fn apply_batch_traced<R: Recorder>(
        &mut self,
        events: &[EngineEvent],
        rec: &mut R,
    ) -> Result<DeltaReport, EngineError> {
        let mut report = DeltaReport::default();
        self.apply_batch_traced_into(events, rec, &mut report)?;
        Ok(report)
    }

    /// The full entry point: traced **and** report-reusing. Everything
    /// else delegates here. The caller's recorder is teed with the
    /// engine's own flight ring, and every successful batch is appended
    /// to the black-box history — both allocation-free once warm.
    pub fn apply_batch_traced_into<R: Recorder>(
        &mut self,
        events: &[EngineEvent],
        rec: &mut R,
        out: &mut DeltaReport,
    ) -> Result<(), EngineError> {
        // The flight ring is moved out for the duration of the batch so
        // the tee can borrow it alongside `&mut self` (`take` swaps in a
        // capacity-0 ring: no allocation).
        let mut flight = std::mem::take(&mut self.flight);
        let res = {
            let mut tee = Tee::new(&mut flight, rec);
            self.apply_core(events, &mut tee, out)
        };
        if res.is_ok() {
            flight.stamp(self.epoch.0);
            self.record_step(events, None);
        }
        self.flight = flight;
        res
    }

    /// Crash-restart recovery hook for the chaos campaigns: node `node`
    /// went down and came back with no volatile state. Modelled as an
    /// atomic leave+join batch — the leave tears down the node's matched
    /// edges (repairing displaced neighbours), the join re-admits it and
    /// the same bounded repair re-acquires its locally-heaviest edges. The
    /// engine's certificates must hold across the transition exactly as
    /// across any other batch.
    pub fn restart_node(&mut self, node: NodeId) -> Result<DeltaReport, EngineError> {
        self.apply_batch(&[
            EngineEvent::NodeLeave { node },
            EngineEvent::NodeJoin { node },
        ])
    }

    /// Deliberately corrupts the engine — the chaos hook the forensic
    /// pipeline is proved against (experiment E22). The fault is applied
    /// *and* recorded as a history step, so a forensic replay reproduces
    /// it at the same point in the stream. The epoch does not tick:
    /// faults are not legitimate batches.
    pub fn inject_fault(&mut self, fault: InjectedFault) {
        self.apply_fault(&fault);
        self.record_step(&[], Some(fault));
    }

    /// Applies a fault's corruption without recording it (replay path).
    pub(crate) fn apply_fault(&mut self, fault: &InjectedFault) {
        match fault {
            // Force the edge into the matching behind the repair
            // machinery's back: mirrors and satisfaction are left stale
            // on purpose — this models external state corruption.
            InjectedFault::PhantomEdge { edge } => {
                self.matching.insert_unchecked(self.dp.graph(), *edge);
            }
            // Move the weights/ranks but skip the repair the engine
            // would normally run: the matching goes stale against eq. 9.
            InjectedFault::SkippedRepair { node, list } => {
                let changed = self.dp.apply_prefs(*node, list.clone());
                self.dp.rerank(&changed);
            }
        }
    }

    /// Appends one step to the black-box history, first advancing the
    /// shadow checkpoint past whatever the ring evicts.
    fn record_step(&mut self, events: &[EngineEvent], fault: Option<InjectedFault>) {
        if self.history.capacity() == 0 {
            return;
        }
        if let Some(step) = self.history.evicting() {
            if let Some(ck) = self.checkpoint.as_mut() {
                forensics::advance_membership(ck, &step.events, step.fault.as_ref());
                self.checkpoint_epoch = Epoch(step.epoch);
            }
        }
        self.history.push_step(self.epoch.0, events, fault);
    }

    fn apply_core<R: Recorder>(
        &mut self,
        events: &[EngineEvent],
        rec: &mut R,
        out: &mut DeltaReport,
    ) -> Result<(), EngineError> {
        self.validate(events)?;
        let epoch = Epoch(self.epoch.0 + 1);
        out.epoch = epoch;
        out.events = events.len();
        out.edges_added.clear();
        out.edges_removed.clear();

        self.scratch.evaluated = 0;
        for st in &mut self.shards {
            st.evaluated = 0;
        }

        // ---- apply all events, routing seeds to their owners (heaps are
        // built afterwards, once ranks are final) and marking the nodes
        // whose satisfaction inputs changed.
        let mut reranked = 0usize;
        {
            let dp = &mut self.dp;
            let map = &self.shard_map;
            let shards = &mut self.shards[..];
            let scratch = &mut self.scratch;
            for ev in events {
                match ev {
                    EngineEvent::NodeJoin { node } => {
                        dp.set_active(*node, true);
                        for &(_, e) in dp.graph().neighbors(*node) {
                            route_seed(map, shards, scratch, e);
                        }
                        scratch.touch(*node);
                    }
                    EngineEvent::NodeLeave { node } => {
                        dp.set_active(*node, false);
                        for &(_, e) in dp.graph().neighbors(*node) {
                            route_seed(map, shards, scratch, e);
                        }
                        scratch.touch(*node);
                    }
                    EngineEvent::EdgeAdd { u, v } => {
                        let e = dp.graph().edge_between(*u, *v).expect("validated");
                        dp.set_present(e, true);
                        route_seed(map, shards, scratch, e);
                    }
                    EngineEvent::EdgeRemove { u, v } => {
                        let e = dp.graph().edge_between(*u, *v).expect("validated");
                        dp.set_present(e, false);
                        route_seed(map, shards, scratch, e);
                    }
                    EngineEvent::QuotaChange { node, quota } => {
                        let changed = dp.apply_quota(*node, *quota);
                        reranked += changed.len();
                        if rec.is_enabled() {
                            rec.record(TelemetryEvent::EngineReranked {
                                epoch: epoch.0,
                                edges: changed.len() as u32,
                            });
                        }
                        scratch.rerank_list.extend(changed);
                        seed_two_hop(dp.graph(), map, shards, scratch, *node);
                        scratch.touch(*node);
                    }
                    EngineEvent::PreferenceUpdate { node, list } => {
                        let changed = dp.apply_prefs(*node, list.clone());
                        reranked += changed.len();
                        if rec.is_enabled() {
                            rec.record(TelemetryEvent::EngineReranked {
                                epoch: epoch.0,
                                edges: changed.len() as u32,
                            });
                        }
                        scratch.rerank_list.extend(changed);
                        seed_two_hop(dp.graph(), map, shards, scratch, *node);
                        scratch.touch(*node);
                    }
                }
            }
            // One splice for the whole batch: `update_keys` recomputes
            // the moved keys from the *final* weights, so folding every
            // event's changed set into a single call is exact (and turns
            // k weight events from k O(m) splices into one).
            dp.rerank(&scratch.rerank_list);
            scratch.rerank_list.clear();
        }

        // ---- two-phase repair rounds until quiescent. With one shard
        // this is a single phase-1 pass and an empty merge.
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            run_phase1(
                &self.dp,
                &self.shard_map,
                &self.scratch.bselected,
                &mut self.shards,
                self.threads,
            );
            merge_boundary(&self.dp, &self.shard_map, &mut self.shards, &mut self.scratch);
            if self.shards.iter().all(|s| s.seeds.is_empty()) {
                break;
            }
        }
        self.phase2_rounds = rounds;

        // ---- fold the flip journals into the public BMatching mirror
        // and the net-delta journal. An edge's flips live in exactly one
        // journal (its shard's, or the boundary one), in chronological
        // order, so per-edge insert/remove pairing is preserved.
        {
            let g = self.dp.graph();
            let matching = &mut self.matching;
            for st in &mut self.shards {
                for idx in 0..st.flips.len() {
                    let (eid, on) = st.flips[idx];
                    apply_flip(g, matching, &mut self.scratch, eid, on);
                }
                st.flips.clear();
            }
            let flips = std::mem::take(&mut self.scratch.flips);
            for &(eid, on) in &flips {
                apply_flip(g, matching, &mut self.scratch, eid, on);
            }
            self.scratch.flips = flips;
            self.scratch.flips.clear();
        }

        // ---- compact the delta journal into the report: net state per
        // touched edge, emitted heaviest-first.
        {
            let order = self.dp.order();
            let scratch = &mut self.scratch;
            for idx in 0..scratch.delta_edges.len() {
                let e = scratch.delta_edges[idx];
                let ds = scratch.delta_state[e.index()];
                scratch.delta_state[e.index()] = 0;
                match ds & 3 {
                    1 => out.edges_added.push(e),
                    2 => out.edges_removed.push(e),
                    _ => {}
                }
            }
            scratch.delta_edges.clear();
            out.edges_added.sort_unstable_by_key(|&e| order.rank(e));
            out.edges_removed.sort_unstable_by_key(|&e| order.rank(e));
        }
        if rec.is_enabled() {
            for &e in &out.edges_added {
                rec.record(TelemetryEvent::EngineEdgeAdded { epoch: epoch.0, edge: e });
            }
            for &e in &out.edges_removed {
                rec.record(TelemetryEvent::EngineEdgeRemoved { epoch: epoch.0, edge: e });
            }
        }

        // ---- merge per-shard touched nodes into the global set.
        for s in 0..self.shards.len() {
            for idx in 0..self.shards[s].touched_nodes.len() {
                let lx = self.shards[s].touched_nodes[idx] as usize;
                let i = self.shard_map.nodes(s)[lx];
                self.scratch.touch(i);
            }
            let st = &mut self.shards[s];
            for idx in 0..st.touched_nodes.len() {
                let lx = st.touched_nodes[idx] as usize;
                st.touched[lx] = false;
            }
            st.touched_nodes.clear();
        }

        // ---- refresh satisfaction of exactly the touched nodes.
        let old_total = self.total_sat;
        for idx in 0..self.scratch.touched_nodes.len() {
            let i = self.scratch.touched_nodes[idx];
            self.scratch.touched[i.index()] = false;
            let new = if self.dp.is_active(i) {
                node_satisfaction(
                    self.dp.prefs(),
                    self.dp.quotas(),
                    i,
                    self.matching.connections(i),
                )
            } else {
                0.0
            };
            self.total_sat += new - self.sat[i.index()];
            self.sat[i.index()] = new;
        }
        self.scratch.touched_nodes.clear();

        let evaluated = self.scratch.evaluated
            + self.shards.iter().map(|s| s.evaluated).sum::<u64>();
        self.epoch = epoch;
        if rec.is_enabled() {
            rec.record(TelemetryEvent::EngineBatchApplied {
                epoch: epoch.0,
                events: events.len() as u32,
                evaluated: evaluated as u32,
                added: out.edges_added.len() as u32,
                removed: out.edges_removed.len() as u32,
            });
        }
        out.evaluated = evaluated as usize;
        out.reranked = reranked;
        out.delta_satisfaction = self.total_sat - old_total;
        out.total_satisfaction = self.total_sat;
        out.matching_size = self.matching.size();
        Ok(())
    }

    /// Whole-batch validation against scratch membership flags; `Err`
    /// means nothing was (or will be) applied.
    fn validate(&mut self, events: &[EngineEvent]) -> Result<(), EngineError> {
        let g = self.dp.graph();
        let n = g.node_count();
        let scratch = &mut self.scratch;
        scratch.val_active.clear();
        scratch.val_active.extend_from_slice(self.dp.active_flags());
        scratch.val_present.clear();
        scratch.val_present.extend_from_slice(self.dp.present_flags());
        let active = &mut scratch.val_active;
        let present = &mut scratch.val_present;
        let check_node = |i: NodeId| {
            if i.index() < n {
                Ok(())
            } else {
                Err(EngineError::UnknownNode(i))
            }
        };
        for ev in events {
            match ev {
                EngineEvent::NodeJoin { node } => {
                    check_node(*node)?;
                    if active[node.index()] {
                        return Err(EngineError::AlreadyActive(*node));
                    }
                    active[node.index()] = true;
                }
                EngineEvent::NodeLeave { node } => {
                    check_node(*node)?;
                    if !active[node.index()] {
                        return Err(EngineError::NotActive(*node));
                    }
                    active[node.index()] = false;
                }
                EngineEvent::EdgeAdd { u, v } => {
                    check_node(*u)?;
                    check_node(*v)?;
                    let e = g.edge_between(*u, *v).ok_or(EngineError::UnknownEdge(*u, *v))?;
                    if present[e.index()] {
                        return Err(EngineError::EdgePresent(*u, *v));
                    }
                    present[e.index()] = true;
                }
                EngineEvent::EdgeRemove { u, v } => {
                    check_node(*u)?;
                    check_node(*v)?;
                    let e = g.edge_between(*u, *v).ok_or(EngineError::UnknownEdge(*u, *v))?;
                    if !present[e.index()] {
                        return Err(EngineError::EdgeAbsent(*u, *v));
                    }
                    present[e.index()] = false;
                }
                EngineEvent::QuotaChange { node, .. } => check_node(*node)?,
                EngineEvent::PreferenceUpdate { node, list } => {
                    check_node(*node)?;
                    // A permutation of the universe neighbourhood: right
                    // length, no duplicates, all neighbours.
                    if list.len() != g.degree(*node) {
                        return Err(EngineError::InvalidPreferences(*node));
                    }
                    let mut sorted = list.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    if sorted.len() != list.len()
                        || !sorted.iter().zip(g.neighbor_ids(*node)).all(|(&a, b)| a == b)
                    {
                        return Err(EngineError::InvalidPreferences(*node));
                    }
                }
            }
        }
        Ok(())
    }

    /// Certified repair, checked: recomputes the matching **from scratch**
    /// (LIC on the current alive snapshot) and compares edge for edge.
    /// `Err` carries a description of the first divergence.
    pub fn certify(&self) -> Result<(), String> {
        let (snap, map) = self.dp.snapshot_with_map();
        let reference = lic(&snap, SelectionPolicy::InOrder);
        for (k, &ue) in map.iter().enumerate() {
            let se = EdgeId(k as u32);
            if reference.contains(se) != self.matching.contains(ue) {
                return Err(format!(
                    "{}: engine {} universe edge {ue:?} but the from-scratch run {} it",
                    self.epoch,
                    if self.matching.contains(ue) { "selects" } else { "omits" },
                    if reference.contains(se) { "selects" } else { "omits" },
                ));
            }
        }
        if reference.size() != self.matching.size() {
            return Err(format!(
                "{}: engine holds {} edges ({} alive from scratch) — a dead edge is still selected",
                self.epoch,
                self.matching.size(),
                reference.size(),
            ));
        }
        Ok(())
    }
}

/// Syncs one journal flip into the [`BMatching`] mirror and the net-delta
/// journal. `delta_state` per edge: bits 0–1 hold the net state (0 none,
/// 1 added, 2 removed), bit 2 marks membership in `delta_edges` so an
/// edge that flips repeatedly is listed once.
fn apply_flip(
    g: &Graph,
    matching: &mut BMatching,
    scratch: &mut EngineScratch,
    eid: u32,
    on: bool,
) {
    let e = EdgeId(eid);
    if on {
        matching.insert_unchecked(g, e);
    } else {
        matching.remove(g, e);
    }
    let ds = &mut scratch.delta_state[e.index()];
    if *ds & 4 == 0 {
        *ds |= 4;
        scratch.delta_edges.push(e);
    }
    let state = match (*ds & 3, on) {
        (0, true) => 1,
        (0, false) => 2,
        (1, false) | (2, true) => 0,
        (s, _) => s, // same-direction double flip cannot happen
    };
    *ds = 4 | state;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(seed: u64) -> Engine {
        Engine::new(Problem::random_gnp(24, 0.3, 2, seed))
    }

    fn sharded(seed: u64, k: usize) -> Engine {
        Engine::builder(Problem::random_gnp(24, 0.3, 2, seed))
            .shards(k)
            .threads(1)
            .build()
    }

    #[test]
    fn initial_state_is_canonical_and_certified() {
        let e = engine(1);
        assert_eq!(e.epoch(), Epoch(0));
        e.certify().expect("epoch 0");
        let reference = lic(
            &Problem::random_gnp(24, 0.3, 2, 1),
            SelectionPolicy::InOrder,
        );
        assert!(e.matching().same_edges(&reference));
        let direct: f64 = reference.total_satisfaction(&Problem::random_gnp(24, 0.3, 2, 1));
        assert!((e.total_satisfaction() - direct).abs() < 1e-9);
    }

    #[test]
    fn node_leave_seeds_its_neighbourhood() {
        let mut e = engine(2);
        let victim = NodeId(3);
        let deg = e.dynamic().graph().degree(victim);
        let r = e.apply(EngineEvent::NodeLeave { node: victim }).unwrap();
        // The dirty region starts from the victim's incident edges and only
        // grows by cascade — with nothing else perturbed it stays well under
        // the instance size.
        assert!(r.evaluated >= deg, "every incident edge re-examined");
        assert!(e.matching().connections(victim).is_empty());
        assert_eq!(e.satisfaction(victim), 0.0);
        e.certify().expect("after leave");
    }

    #[test]
    fn node_join_restores_participation() {
        let mut e = engine(3);
        let victim = NodeId(5);
        e.apply(EngineEvent::NodeLeave { node: victim }).unwrap();
        let r = e.apply(EngineEvent::NodeJoin { node: victim }).unwrap();
        assert!(r.evaluated >= e.dynamic().graph().degree(victim));
        e.certify().expect("after rejoin");
        // Rejoining everything returns to the original canonical matching.
        let fresh = engine(3);
        assert!(e.matching().same_edges(fresh.matching()));
        assert_eq!(e.epoch(), Epoch(2));
    }

    #[test]
    fn edge_remove_and_add_seed_the_edge() {
        let mut e = engine(4);
        let g = e.dynamic().graph();
        let edge = g.edges().next().unwrap();
        let (u, v) = g.endpoints(edge);
        let r = e.apply(EngineEvent::EdgeRemove { u, v }).unwrap();
        assert!(r.evaluated >= 1);
        assert!(!e.matching().contains(edge));
        assert!(!e.dynamic().is_present(edge));
        e.certify().expect("after remove");
        let r = e.apply(EngineEvent::EdgeAdd { u, v }).unwrap();
        assert!(r.evaluated >= 1);
        e.certify().expect("after re-add");
        assert!(e.matching().same_edges(engine(4).matching()));
    }

    #[test]
    fn quota_change_moves_weights_and_stays_certified() {
        let mut e = engine(5);
        let node = NodeId(7);
        let r = e.apply(EngineEvent::QuotaChange { node, quota: 1 }).unwrap();
        assert_eq!(r.reranked, e.dynamic().graph().degree(node));
        assert!(e.matching().degree(node) <= 1);
        e.certify().expect("after quota cut");
        // Weight maintenance: the stored weights equal a fresh eq. 9 pass.
        let dp = e.dynamic();
        let fresh = owp_matching::EdgeWeights::compute(dp.graph(), dp.prefs(), dp.quotas());
        for edge in dp.graph().edges() {
            assert_eq!(dp.weights().get(edge), fresh.get(edge));
        }
    }

    #[test]
    fn preference_update_moves_weights_and_stays_certified() {
        let mut e = engine(6);
        let node = NodeId(2);
        let mut list: Vec<NodeId> =
            e.dynamic().graph().neighbor_ids(node).collect();
        list.reverse();
        let r = e
            .apply(EngineEvent::PreferenceUpdate { node, list: list.clone() })
            .unwrap();
        assert_eq!(r.reranked, list.len());
        assert_eq!(e.dynamic().prefs().list(node), &list[..]);
        e.certify().expect("after preference update");
        let dp = e.dynamic();
        let fresh = owp_matching::EdgeWeights::compute(dp.graph(), dp.prefs(), dp.quotas());
        for edge in dp.graph().edges() {
            assert_eq!(dp.weights().get(edge), fresh.get(edge));
        }
    }

    #[test]
    fn batches_are_atomic_on_error() {
        let mut e = engine(7);
        let before = e.clone();
        let err = e.apply_batch(&[
            EngineEvent::NodeLeave { node: NodeId(1) },
            EngineEvent::NodeLeave { node: NodeId(1) }, // invalid: already gone
        ]);
        assert_eq!(err.unwrap_err(), EngineError::NotActive(NodeId(1)));
        assert_eq!(e.epoch(), before.epoch());
        assert!(e.matching().same_edges(before.matching()));
        assert!(e.dynamic().is_active(NodeId(1)));
    }

    #[test]
    fn validation_errors_cover_every_variant() {
        let mut e = engine(8);
        let (non_edge, first_edge_endpoints) = {
            let g = e.dynamic().graph();
            // A non-adjacent pair must exist in a sparse G(n, p).
            let mut pair = None;
            'outer: for a in g.nodes() {
                for b in g.nodes() {
                    if a < b && !g.has_edge(a, b) {
                        pair = Some((a, b));
                        break 'outer;
                    }
                }
            }
            let edge = g.edges().next().unwrap();
            (pair.expect("sparse graph has a non-edge"), g.endpoints(edge))
        };
        let far = NodeId(1000);
        assert_eq!(
            e.apply(EngineEvent::NodeJoin { node: far }).unwrap_err(),
            EngineError::UnknownNode(far)
        );
        assert_eq!(
            e.apply(EngineEvent::NodeJoin { node: NodeId(0) }).unwrap_err(),
            EngineError::AlreadyActive(NodeId(0))
        );
        let (u, v) = non_edge;
        assert_eq!(
            e.apply(EngineEvent::EdgeRemove { u, v }).unwrap_err(),
            EngineError::UnknownEdge(u, v)
        );
        let (a, b) = first_edge_endpoints;
        assert_eq!(
            e.apply(EngineEvent::EdgeAdd { u: a, v: b }).unwrap_err(),
            EngineError::EdgePresent(a, b)
        );
        assert_eq!(
            e.apply(EngineEvent::PreferenceUpdate { node: NodeId(0), list: vec![] })
                .unwrap_err(),
            EngineError::InvalidPreferences(NodeId(0))
        );
        assert_eq!(e.epoch(), Epoch(0), "failed singles never tick the epoch");
    }

    #[test]
    fn one_batch_repairs_many_events_at_once() {
        let mut e = engine(9);
        let r = e
            .apply_batch(&[
                EngineEvent::NodeLeave { node: NodeId(0) },
                EngineEvent::NodeLeave { node: NodeId(1) },
                EngineEvent::QuotaChange { node: NodeId(2), quota: 1 },
            ])
            .unwrap();
        assert_eq!(r.events, 3);
        assert_eq!(r.epoch, Epoch(1));
        assert_eq!(r.matching_size, e.matching().size());
        e.certify().expect("after mixed batch");
    }

    #[test]
    fn traced_batches_emit_the_engine_taxonomy() {
        use owp_telemetry::EventLog;
        let mut e = engine(10);
        let mut log = EventLog::enabled();
        e.apply_batch_traced(&[EngineEvent::NodeLeave { node: NodeId(4) }], &mut log)
            .unwrap();
        let tags: Vec<&str> = log.events().iter().map(|ev| ev.tag()).collect();
        assert_eq!(tags.last(), Some(&"engine_batch_applied"));
        assert!(tags
            .iter()
            .all(|t| t.starts_with("engine_")), "only engine events: {tags:?}");
    }

    #[test]
    fn empty_batch_is_a_quiescent_tick() {
        let mut e = engine(11);
        let r = e.apply_batch(&[]).unwrap();
        assert!(r.is_quiescent());
        assert_eq!(r.net_edges(), 0);
        assert_eq!(r.evaluated, 0);
        assert_eq!(e.epoch(), Epoch(1));
    }

    #[test]
    fn sharded_build_matches_unsharded() {
        for k in [1, 2, 4, 8] {
            let s = sharded(12, k);
            let reference = engine(12);
            assert!(
                s.matching().same_edges(reference.matching()),
                "k={k} initial matching diverges"
            );
            s.certify().expect("sharded epoch 0");
        }
    }

    #[test]
    fn sharded_engines_stay_bit_identical_through_events() {
        let events = [
            EngineEvent::NodeLeave { node: NodeId(3) },
            EngineEvent::NodeLeave { node: NodeId(17) },
            EngineEvent::QuotaChange { node: NodeId(8), quota: 1 },
            EngineEvent::NodeJoin { node: NodeId(3) },
        ];
        let mut reference = engine(13);
        let mut engines: Vec<Engine> =
            [2, 4, 8].iter().map(|&k| sharded(13, k)).collect();
        for ev in events {
            let r0 = reference.apply(ev.clone()).unwrap();
            for e in &mut engines {
                let r = e.apply(ev.clone()).unwrap();
                assert!(e.matching().same_edges(reference.matching()));
                assert_eq!(r.edges_added, r0.edges_added);
                assert_eq!(r.edges_removed, r0.edges_removed);
                assert_eq!(r.matching_size, r0.matching_size);
                assert!((r.total_satisfaction - r0.total_satisfaction).abs() < 1e-9);
                e.certify().expect("sharded batch");
            }
        }
    }

    /// A path instance with quota 1 everywhere and id-order preferences —
    /// deterministic, so the cross-shard cascades below are hand-checkable.
    fn path_problem(n: u32) -> Problem {
        use owp_graph::{GraphBuilder, PreferenceTable, Quotas};
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        let g = b.build();
        let prefs = PreferenceTable::by_node_id(&g);
        let quotas = Quotas::uniform(&g, 1);
        Problem::new(g, prefs, quotas)
    }

    /// Hand-built cross-shard conflict: a 4-node path split 2|2, quota 1
    /// everywhere, so removing/re-adding the heaviest interior edge makes
    /// selection flip across the boundary edge in both directions.
    #[test]
    fn two_phase_merge_resolves_path_conflicts() {
        let problem = path_problem(4);
        let mut e = Engine::builder(problem).shards(2).threads(1).build();
        assert_eq!(e.shard_map().boundary_count(), 1, "edge (1,2) crosses");
        e.certify().expect("initial");
        let pairs = [
            (NodeId(0), NodeId(1)),
            (NodeId(2), NodeId(3)),
            (NodeId(1), NodeId(2)),
        ];
        for (u, v) in pairs {
            e.apply(EngineEvent::EdgeRemove { u, v }).unwrap();
            e.certify().expect("after cross-shard remove");
            e.apply(EngineEvent::EdgeAdd { u, v }).unwrap();
            e.certify().expect("after cross-shard re-add");
        }
    }

    /// A boundary flip must re-seed interior repair in *other* shards
    /// (the round loop), not just cascade along the boundary.
    #[test]
    fn boundary_flip_reseeds_interior_regions() {
        // Path 0—1—2—3—4—5 over three shards of two nodes; quota 1.
        let problem = path_problem(6);
        let mut e = Engine::builder(problem.clone()).shards(3).threads(1).build();
        let mut reference = Engine::new(problem);
        assert_eq!(e.shard_map().boundary_count(), 2);
        // Leaving and rejoining interior nodes forces alternating
        // selection waves across both boundary edges.
        for node in [NodeId(1), NodeId(4), NodeId(2)] {
            for ev in [
                EngineEvent::NodeLeave { node },
                EngineEvent::NodeJoin { node },
            ] {
                e.apply(ev.clone()).unwrap();
                reference.apply(ev).unwrap();
                assert!(e.matching().same_edges(reference.matching()));
                e.certify().expect("wave step");
            }
        }
    }

    #[test]
    fn reused_report_is_overwritten_each_batch() {
        let mut e = engine(16);
        let mut report = DeltaReport::default();
        e.apply_batch_into(&[EngineEvent::NodeLeave { node: NodeId(2) }], &mut report)
            .unwrap();
        let first_removed = report.edges_removed.clone();
        assert_eq!(report.epoch, Epoch(1));
        e.apply_batch_into(&[EngineEvent::NodeJoin { node: NodeId(2) }], &mut report)
            .unwrap();
        assert_eq!(report.epoch, Epoch(2));
        assert_eq!(report.edges_added, first_removed, "rejoin restores exactly");
        // Failed batches leave the report untouched.
        let before = report.clone();
        let err = e.apply_batch_into(
            &[EngineEvent::NodeJoin { node: NodeId(2) }],
            &mut report,
        );
        assert!(err.is_err());
        assert_eq!(report, before);
    }

    #[test]
    fn builder_knobs_are_observable() {
        let e = Engine::builder(Problem::random_gnp(12, 0.3, 2, 17))
            .shards(4)
            .threads(2)
            .build();
        assert_eq!(e.shard_count(), 4);
        assert_eq!(e.thread_count(), 2);
        // Per-shard instrumentation: the last batch's evaluated counts
        // decompose over shards plus the boundary merge.
        let mut e = e;
        let r = e.apply(EngineEvent::NodeLeave { node: NodeId(5) }).unwrap();
        let parts: u64 = (0..4).map(|s| e.shard_evaluated(s)).sum::<u64>()
            + e.boundary_evaluated();
        assert_eq!(parts as usize, r.evaluated);
    }
}
