//! # owp-engine — the event-driven dynamic overlay engine
//!
//! The paper's conclusion leaves dynamicity ("joins/leaves of peers") as
//! future work and conjectures the same greedy strategy extends to it. This
//! crate is that extension, built so the conjecture is *checkable*: an
//! [`Engine`] maintains the **exact** locally-heaviest-edge matching (the
//! unique greedy/LIC outcome under the strict `EdgeKey` order) while a
//! stream of [`EngineEvent`]s mutates the instance underneath it, and it
//! does so by repairing only a bounded *dirty region* around each event
//! instead of recomputing from scratch.
//!
//! ## The model: a universe with toggled membership
//!
//! A [`DynamicProblem`] wraps one fixed **universe** instance — the graph
//! of every connection that could ever exist, with preference lists and
//! quotas over full universe neighbourhoods. Events toggle membership:
//! nodes join and leave ([`EngineEvent::NodeJoin`] /
//! [`EngineEvent::NodeLeave`]), universe edges appear and disappear
//! ([`EngineEvent::EdgeAdd`] / [`EngineEvent::EdgeRemove`]). An edge is
//! *alive* iff it is present and both endpoints are active. Two event
//! kinds mutate the instance data itself — [`EngineEvent::QuotaChange`]
//! and [`EngineEvent::PreferenceUpdate`] — and because eq. 9 weights
//! depend on both the quota `b_i` and the ranks `R_i(·)`, these re-derive
//! the weights of the target's incident edges and splice them through the
//! integer rank kernel incrementally (`EdgeOrder::update_keys`).
//!
//! ## The invariant: certified repair
//!
//! After every batch the engine's matching equals, **edge for edge**, what
//! a from-scratch LIC run computes on the current alive sub-instance
//! ([`Engine::certify`], and the `engine_equivalence` suite at the
//! workspace root randomizes this over hundreds of event streams). The
//! repair exploits the confluence structure the paper's Lemmas 3–6 rest
//! on: the greedy decision of an edge depends only on *heavier selected*
//! edges at its endpoints, so a min-heap over final ranks, seeded with the
//! edges an event perturbs and expanded only toward strictly lighter
//! incident edges on each flip, visits every edge whose decision can have
//! changed — and each at most once per batch (see `DESIGN.md` §8).
//!
//! Each batch returns an [`Epoch`]-stamped [`DeltaReport`] (edges
//! added/removed, dirty-region size, ΔΣS) and can emit the `Engine*`
//! branch of the `owp-telemetry` event taxonomy through any
//! `Recorder` ([`Engine::apply_batch_traced`]).
//!
//! ## The black box: divergence forensics
//!
//! The engine also flies with two always-on, bounded recorders — a
//! telemetry flight ring and a batch-history ring backed by a shadow
//! membership checkpoint — so a certification failure or auditor
//! violation can be frozen into a self-contained, re-executable
//! [`ForensicBundle`] with a delta-debugged minimal reproducer
//! ([`forensics`], DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod engine;
pub mod event;
pub mod forensics;
pub mod report;
pub mod scratch;
pub mod shard;

pub use dynamic::DynamicProblem;
pub use engine::{Engine, EngineBuilder, DEFAULT_FLIGHT_CAPACITY, DEFAULT_HISTORY_CAPACITY};
pub use event::{EngineError, EngineEvent};
pub use forensics::{
    normalize_violation, replay, shrink, ForensicBundle, InjectedFault, OriginSnapshot,
    RecordedStep, ShrinkResult, StepRing,
};
pub use report::{DeltaReport, Epoch};
pub use shard::{Partitioner, RangePartitioner, ShardMap, BOUNDARY};
