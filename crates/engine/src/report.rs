//! Epoch-versioned change reports — what one applied batch did.

use owp_graph::EdgeId;

/// A monotone version counter: one tick per applied batch. Epoch 0 is the
/// engine's initial (from-scratch) state; the first batch produces epoch 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

impl std::fmt::Display for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// What one batch changed: the matching delta, the size of the dirty
/// region the repair actually evaluated, and the satisfaction movement.
/// Edge ids refer to the **universe** graph.
///
/// Reports are reusable: `Engine::apply_batch_into` overwrites one in
/// place (clearing, not reallocating, the delta `Vec`s), so a long-lived
/// caller-owned report keeps the steady-state batch path allocation-free.
/// `Default` gives the natural starting value for that pattern.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaReport {
    /// The epoch this batch produced.
    pub epoch: Epoch,
    /// Events in the batch.
    pub events: usize,
    /// Edges the repair added to the matching, in repair (rank) order.
    pub edges_added: Vec<EdgeId>,
    /// Edges the repair removed from the matching, in repair (rank) order.
    pub edges_removed: Vec<EdgeId>,
    /// Edges the bounded repair evaluated — the dirty region's size. The
    /// headline of E19: this stays near the event neighbourhood while a
    /// from-scratch run pays the whole instance.
    pub evaluated: usize,
    /// Edges whose rank keys were recomputed by weight-changing events.
    pub reranked: usize,
    /// Change in total satisfaction over active peers (ΔΣS).
    pub delta_satisfaction: f64,
    /// Total satisfaction over active peers after the batch.
    pub total_satisfaction: f64,
    /// Matching size after the batch.
    pub matching_size: usize,
}

impl DeltaReport {
    /// `true` iff the batch left the matching unchanged.
    pub fn is_quiescent(&self) -> bool {
        self.edges_added.is_empty() && self.edges_removed.is_empty()
    }

    /// Net matched-edge change (`added − removed`).
    pub fn net_edges(&self) -> i64 {
        self.edges_added.len() as i64 - self.edges_removed.len() as i64
    }
}
