//! The event vocabulary of the dynamic engine and its validation errors.

use owp_graph::NodeId;
use std::fmt;

/// One mutation of the dynamic instance.
///
/// Events address nodes and edges of the **universe** graph (see
/// [`crate::DynamicProblem`]); structural events toggle membership, the
/// last two mutate instance data (and hence eq. 9 weights). Batches are
/// validated as a whole before anything is applied — see
/// [`crate::Engine::apply_batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineEvent {
    /// An inactive peer (re)joins the overlay with empty connections.
    NodeJoin {
        /// The joining peer.
        node: NodeId,
    },
    /// An active peer leaves; all its connections dissolve.
    NodeLeave {
        /// The leaving peer.
        node: NodeId,
    },
    /// An absent universe edge becomes present (e.g. two peers discover
    /// each other). Both endpoints need not be active — the edge only
    /// becomes *alive* once they are.
    EdgeAdd {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A present universe edge disappears (e.g. a link becomes unusable).
    EdgeRemove {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Peer `node`'s connection quota becomes `quota` (clamped to its
    /// universe degree, like every quota constructor). Changes the eq. 9
    /// weights of all edges incident to `node`.
    QuotaChange {
        /// The peer whose quota changes.
        node: NodeId,
        /// The new quota (pre-clamp).
        quota: u32,
    },
    /// Peer `node` re-ranks its whole universe neighbourhood (e.g. after
    /// observing transaction history). `list` must be a permutation of the
    /// universe neighbourhood, best first. Changes the eq. 9 weights of
    /// all edges incident to `node`.
    PreferenceUpdate {
        /// The peer whose list changes.
        node: NodeId,
        /// The new preference list, most desirable neighbour first.
        list: Vec<NodeId>,
    },
}

/// Why a batch was rejected. Validation runs over the *whole* batch
/// against a scratch copy of the membership flags before any state is
/// touched, so a failed [`crate::Engine::apply_batch`] leaves the engine
/// exactly as it was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A node id outside the universe.
    UnknownNode(NodeId),
    /// `NodeJoin` for a node that is (or, mid-batch, became) active.
    AlreadyActive(NodeId),
    /// `NodeLeave` for a node that is not active.
    NotActive(NodeId),
    /// An edge event between nodes the universe graph does not connect.
    UnknownEdge(NodeId, NodeId),
    /// `EdgeAdd` for an edge that is already present.
    EdgePresent(NodeId, NodeId),
    /// `EdgeRemove` for an edge that is not present.
    EdgeAbsent(NodeId, NodeId),
    /// `PreferenceUpdate` whose list is not a permutation of the node's
    /// universe neighbourhood.
    InvalidPreferences(NodeId),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::UnknownNode(i) => write!(f, "{i:?} is not a universe node"),
            EngineError::AlreadyActive(i) => write!(f, "{i:?} is already active"),
            EngineError::NotActive(i) => write!(f, "{i:?} is not active"),
            EngineError::UnknownEdge(u, v) => {
                write!(f, "({u:?}, {v:?}) is not a universe edge")
            }
            EngineError::EdgePresent(u, v) => write!(f, "({u:?}, {v:?}) is already present"),
            EngineError::EdgeAbsent(u, v) => write!(f, "({u:?}, {v:?}) is not present"),
            EngineError::InvalidPreferences(i) => {
                write!(f, "preference list of {i:?} is not a permutation of its universe neighbourhood")
            }
        }
    }
}

impl std::error::Error for EngineError {}
