//! Graph sharding for parallel repair: [`Partitioner`], [`ShardMap`].
//!
//! The universe graph is partitioned into `k` shards by assigning every
//! **node** to exactly one shard; an edge is *interior* to shard `s` when
//! both endpoints live in `s`, and a *boundary* edge otherwise. Interior
//! edges of different shards are disjoint and the repair of one never
//! reads or writes another shard's state, so interior repair can run
//! shard-parallel without synchronization; boundary edges are reconciled
//! by a sequential, deterministic merge (see `engine.rs` and DESIGN.md
//! §11). E15's flat messages-per-node curve and Lemma 4's per-edge
//! locally-heaviest certificate are what make this sound: an edge's
//! canonical status depends only on strictly heavier edges at its own two
//! endpoints, so a shard boundary matters exactly where an edge crosses
//! it — nowhere else.
//!
//! The map also fixes a *shard-local numbering* of nodes and interior
//! edges, so per-shard state (selected bitmaps, queued bitmaps, the
//! selected-edge CSR mirror) lives in dense local arrays instead of
//! sparse global ones.

use owp_graph::{EdgeId, Graph, NodeId};

/// Shard id of boundary edges in [`ShardMap::edge_shard`] — they belong
/// to no single shard and are merged sequentially.
pub const BOUNDARY: u32 = u32::MAX;

/// A node-partitioning strategy. `assign` must return one shard id in
/// `0..k` per node.
///
/// The trait exists so smarter partitioners (BFS growing, METIS-style
/// refinement, geometry-aware striping) can slot in without touching the
/// engine; [`RangePartitioner`] is the contiguous-id-range default.
pub trait Partitioner {
    /// Shard id in `0..k` for every node of `g`, indexed by node id.
    fn assign(&self, g: &Graph, k: usize) -> Vec<u32>;
}

/// Contiguous id-range partitioning: shard `s` owns nodes
/// `[s·⌈n/k⌉, (s+1)·⌈n/k⌉)`. For generators that embed locality in the id
/// space (geometric graphs sorted by position, grid-ish overlays) this
/// keeps the boundary fraction low; for id-scrambled topologies it is the
/// neutral baseline smarter partitioners are measured against.
#[derive(Clone, Copy, Debug, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn assign(&self, g: &Graph, k: usize) -> Vec<u32> {
        let n = g.node_count();
        let span = n.div_ceil(k.max(1)).max(1);
        (0..n).map(|i| ((i / span) as u32).min(k as u32 - 1)).collect()
    }
}

/// The frozen outcome of partitioning one universe graph into `k` shards:
/// node → shard, edge → shard-or-boundary, and dense shard-local
/// numberings for nodes and interior edges.
#[derive(Clone, Debug)]
pub struct ShardMap {
    k: usize,
    /// Shard of each node.
    node_shard: Vec<u32>,
    /// Index of each node within its shard's node list.
    node_local: Vec<u32>,
    /// Shard of each edge, or [`BOUNDARY`].
    edge_shard: Vec<u32>,
    /// Interior edges: index within the shard's interior-edge list.
    /// Boundary edges: index within [`ShardMap::boundary_edges`].
    edge_local: Vec<u32>,
    /// Nodes per shard, in ascending id order.
    nodes: Vec<Vec<NodeId>>,
    /// Interior edges per shard, in ascending id order.
    interior: Vec<Vec<EdgeId>>,
    /// All boundary edges, in ascending id order.
    boundary: Vec<EdgeId>,
}

impl ShardMap {
    /// Partitions `g` into `k ≥ 1` shards with the given partitioner.
    ///
    /// # Panics
    /// Panics if `k == 0` or the partitioner emits a shard id `≥ k`.
    pub fn new(g: &Graph, k: usize, partitioner: &dyn Partitioner) -> Self {
        assert!(k >= 1, "at least one shard");
        let node_shard = partitioner.assign(g, k);
        assert_eq!(node_shard.len(), g.node_count(), "one shard per node");

        let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut node_local = vec![0u32; g.node_count()];
        for i in g.nodes() {
            let s = node_shard[i.index()] as usize;
            assert!(s < k, "partitioner emitted shard {s} for k={k}");
            node_local[i.index()] = nodes[s].len() as u32;
            nodes[s].push(i);
        }

        let mut interior: Vec<Vec<EdgeId>> = vec![Vec::new(); k];
        let mut boundary = Vec::new();
        let mut edge_shard = vec![0u32; g.edge_count()];
        let mut edge_local = vec![0u32; g.edge_count()];
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let su = node_shard[u.index()];
            if su == node_shard[v.index()] {
                edge_shard[e.index()] = su;
                edge_local[e.index()] = interior[su as usize].len() as u32;
                interior[su as usize].push(e);
            } else {
                edge_shard[e.index()] = BOUNDARY;
                edge_local[e.index()] = boundary.len() as u32;
                boundary.push(e);
            }
        }

        ShardMap {
            k,
            node_shard,
            node_local,
            edge_shard,
            edge_local,
            nodes,
            interior,
            boundary,
        }
    }

    /// Number of shards `k`.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.k
    }

    /// Shard owning node `i`.
    #[inline]
    pub fn shard_of_node(&self, i: NodeId) -> usize {
        self.node_shard[i.index()] as usize
    }

    /// Index of node `i` within its shard.
    #[inline]
    pub fn local_node(&self, i: NodeId) -> usize {
        self.node_local[i.index()] as usize
    }

    /// Shard owning edge `e`, or `None` for a boundary edge.
    #[inline]
    pub fn shard_of_edge(&self, e: EdgeId) -> Option<usize> {
        let s = self.edge_shard[e.index()];
        (s != BOUNDARY).then_some(s as usize)
    }

    /// Raw shard id of edge `e` ([`BOUNDARY`] for boundary edges) — the
    /// branch-free form the repair hot path uses.
    #[inline]
    pub fn edge_shard_raw(&self, e: EdgeId) -> u32 {
        self.edge_shard[e.index()]
    }

    /// Shard-local index of interior edge `e`, or boundary-list index of
    /// boundary edge `e`.
    #[inline]
    pub fn local_edge(&self, e: EdgeId) -> usize {
        self.edge_local[e.index()] as usize
    }

    /// Nodes of shard `s`, ascending.
    #[inline]
    pub fn nodes(&self, s: usize) -> &[NodeId] {
        &self.nodes[s]
    }

    /// Interior edges of shard `s`, ascending.
    #[inline]
    pub fn interior_edges(&self, s: usize) -> &[EdgeId] {
        &self.interior[s]
    }

    /// All boundary edges, ascending.
    #[inline]
    pub fn boundary_edges(&self) -> &[EdgeId] {
        &self.boundary
    }

    /// Number of boundary edges.
    #[inline]
    pub fn boundary_count(&self) -> usize {
        self.boundary.len()
    }

    /// Fraction of edges that are boundary (0 for an edgeless graph).
    pub fn boundary_fraction(&self) -> f64 {
        let m = self.edge_shard.len();
        if m == 0 {
            0.0
        } else {
            self.boundary.len() as f64 / m as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owp_graph::GraphBuilder;

    /// A 6-node path 0—1—2—3—4—5.
    fn path6() -> Graph {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(NodeId(i), NodeId(i + 1));
        }
        b.build()
    }

    #[test]
    fn range_partitioner_splits_contiguously() {
        let g = path6();
        let map = ShardMap::new(&g, 3, &RangePartitioner);
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.nodes(0), &[NodeId(0), NodeId(1)]);
        assert_eq!(map.nodes(1), &[NodeId(2), NodeId(3)]);
        assert_eq!(map.nodes(2), &[NodeId(4), NodeId(5)]);
        // Interior: (0,1), (2,3), (4,5); boundary: (1,2), (3,4).
        assert_eq!(map.boundary_count(), 2);
        for s in 0..3 {
            assert_eq!(map.interior_edges(s).len(), 1);
        }
        let e12 = g.edge_between(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(map.shard_of_edge(e12), None);
        assert_eq!(map.edge_shard_raw(e12), BOUNDARY);
        let e01 = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(map.shard_of_edge(e01), Some(0));
        assert!((map.boundary_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = path6();
        let map = ShardMap::new(&g, 1, &RangePartitioner);
        assert_eq!(map.shard_count(), 1);
        assert_eq!(map.boundary_count(), 0);
        assert_eq!(map.interior_edges(0).len(), g.edge_count());
        for i in g.nodes() {
            assert_eq!(map.shard_of_node(i), 0);
            assert_eq!(map.local_node(i), i.index());
        }
        for e in g.edges() {
            assert_eq!(map.local_edge(e), e.index());
        }
    }

    #[test]
    fn more_shards_than_nodes_degenerates_gracefully() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let map = ShardMap::new(&g, 8, &RangePartitioner);
        // Each node lands in its own shard; the lone edge is boundary.
        assert_eq!(map.boundary_count(), 1);
        assert_ne!(map.shard_of_node(NodeId(0)), map.shard_of_node(NodeId(1)));
    }

    #[test]
    fn local_numberings_are_dense_permutations() {
        let g = path6();
        let map = ShardMap::new(&g, 2, &RangePartitioner);
        for s in 0..2 {
            for (li, &i) in map.nodes(s).iter().enumerate() {
                assert_eq!(map.shard_of_node(i), s);
                assert_eq!(map.local_node(i), li);
            }
            for (le, &e) in map.interior_edges(s).iter().enumerate() {
                assert_eq!(map.shard_of_edge(e), Some(s));
                assert_eq!(map.local_edge(e), le);
            }
        }
        for (bi, &e) in map.boundary_edges().iter().enumerate() {
            assert_eq!(map.shard_of_edge(e), None);
            assert_eq!(map.local_edge(e), bi);
        }
    }
}
