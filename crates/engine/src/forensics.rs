//! Divergence forensics: the black-box batch history, the delta-debugging
//! shrinker and the self-contained post-mortem bundle (DESIGN.md §12).
//!
//! Live observability (telemetry, metrics, the auditor) answers *what is
//! happening*; this module answers *what happened* after the fact. The
//! engine keeps two always-on, bounded, allocation-free-in-steady-state
//! recorders:
//!
//! * a [`owp_telemetry::FlightRecorder`] ring of the `Engine*` telemetry
//!   events every batch emits (epoch-watermarked, drop-counted), and
//! * a [`StepRing`] of [`RecordedStep`]s — the applied event batches
//!   themselves, plus any [`InjectedFault`]s — backed by a shadow
//!   membership **checkpoint**: a [`DynamicProblem`] clone advanced by
//!   each step the ring evicts, so the retained window always replays
//!   from a known-good origin.
//!
//! When [`crate::Engine::certify`] fails (or an `owp-metrics` auditor
//! violation is reported by the caller), [`crate::Engine::capture_bundle`]
//! freezes everything into a [`ForensicBundle`]: ring contents, last-good
//! epoch, membership snapshots, provenance, and — via [`shrink`] — a
//! minimal reproducer. [`shrink`] is classic delta debugging specialised
//! to a suffix window: it bisects for the earliest failing step, then
//! bisects again to drop the longest clean prefix, re-certifying a fresh
//! engine ([`crate::Engine::from_dynamic`]) for every candidate.
//!
//! Bundles serialize to a single hand-rolled JSON object (the workspace
//! vendors no serde_json) and round-trip through [`ForensicBundle::parse`];
//! `owp-inspect forensics <bundle>` summarizes and re-executes them, and
//! [`ForensicBundle::verify`] is the library half of that command.

use crate::dynamic::DynamicProblem;
use crate::engine::Engine;
use crate::event::{EngineError, EngineEvent};
use owp_graph::{EdgeId, GraphBuilder, NodeId, PreferenceTable, Quotas};
use owp_matching::Problem;
use std::fmt::Write as _;

/// The rustc that compiled this engine (provenance for bundles); stamped
/// by `build.rs`, `"unknown"` if the probe failed.
pub const RUSTC_VERSION: &str = match option_env!("OWP_RUSTC_VERSION") {
    Some(v) => v,
    None => "unknown",
};

/// A deliberate corruption, injected through [`Engine::inject_fault`] —
/// the chaos hook the forensics pipeline is proved against (experiment
/// E22, `tests/forensics.rs`). Faults are recorded as history steps so a
/// replay reproduces them at the same point in the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Forces `edge` into the maintained matching without repair — the
    /// "forced quota overflow": the canonical matching cannot contain it,
    /// so `certify()` diverges (and the auditor's quota-feasibility
    /// invariant fires once an endpoint exceeds its quota).
    PhantomEdge {
        /// Universe edge forced into the matching.
        edge: EdgeId,
    },
    /// Applies a preference update (and the weight/rank re-derivation)
    /// **without** repairing the matching — the "tampered weight": the
    /// maintained matching goes stale against the new eq. 9 weights.
    /// `list` must be a permutation of `node`'s universe neighbourhood.
    SkippedRepair {
        /// Node whose preference list is tampered with.
        node: NodeId,
        /// The new (valid) preference list the repair never sees.
        list: Vec<NodeId>,
    },
}

/// One entry of the engine's black-box history: the batch applied at
/// `epoch` (or an injected fault, with `events` empty).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedStep {
    /// Engine epoch *after* the step was applied.
    pub epoch: u64,
    /// The applied event batch (empty for pure fault steps).
    pub events: Vec<EngineEvent>,
    /// The fault injected at this step, if any.
    pub fault: Option<InjectedFault>,
}

/// Fixed-capacity ring of [`RecordedStep`]s, oldest-first iteration,
/// slot reuse on overwrite (the inner event `Vec`s keep their capacity,
/// so recording a structural batch allocates nothing once warmed).
#[derive(Clone, Debug, Default)]
pub struct StepRing {
    cap: usize,
    slots: Vec<RecordedStep>,
    /// Oldest slot (== next overwrite target) once full.
    head: usize,
    evicted: u64,
}

impl StepRing {
    pub(crate) fn new(cap: usize) -> Self {
        StepRing {
            cap,
            slots: Vec::with_capacity(cap),
            head: 0,
            evicted: 0,
        }
    }

    /// The fixed step capacity (0 = history disabled).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Steps currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Steps evicted (overwritten) since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained steps, oldest first.
    pub fn steps(&self) -> impl Iterator<Item = &RecordedStep> {
        let (older, newer) = self.slots.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// The step the next push will overwrite, if the ring is full — the
    /// caller advances the shadow checkpoint past it first.
    pub(crate) fn evicting(&self) -> Option<&RecordedStep> {
        (self.cap > 0 && self.slots.len() == self.cap).then(|| &self.slots[self.head])
    }

    /// Records a step, reusing the oldest slot's buffers when full.
    pub(crate) fn push_step(
        &mut self,
        epoch: u64,
        events: &[EngineEvent],
        fault: Option<InjectedFault>,
    ) {
        if self.cap == 0 {
            return;
        }
        if self.slots.len() < self.cap {
            self.slots.push(RecordedStep {
                epoch,
                events: events.to_vec(),
                fault,
            });
        } else {
            let slot = &mut self.slots[self.head];
            slot.epoch = epoch;
            slot.events.clear();
            slot.events.extend_from_slice(events);
            slot.fault = fault;
            self.head = (self.head + 1) % self.cap;
            self.evicted += 1;
        }
    }
}

/// Applies one evicted step's *state* effects (membership flags, quotas,
/// preference lists — everything a fresh engine's construction reads) to
/// the shadow checkpoint. Matching-only corruption (`PhantomEdge`) has no
/// state to carry: once such a step leaves the window it is no longer
/// reproducible from the checkpoint, which the bundle verdict reports
/// honestly instead of papering over.
pub(crate) fn advance_membership(
    dp: &mut DynamicProblem,
    events: &[EngineEvent],
    fault: Option<&InjectedFault>,
) {
    for ev in events {
        match ev {
            EngineEvent::NodeJoin { node } => dp.set_active(*node, true),
            EngineEvent::NodeLeave { node } => dp.set_active(*node, false),
            EngineEvent::EdgeAdd { u, v } => {
                let e = dp.graph().edge_between(*u, *v).expect("recorded batch was validated");
                dp.set_present(e, true);
            }
            EngineEvent::EdgeRemove { u, v } => {
                let e = dp.graph().edge_between(*u, *v).expect("recorded batch was validated");
                dp.set_present(e, false);
            }
            EngineEvent::QuotaChange { node, quota } => {
                let changed = dp.apply_quota(*node, *quota);
                dp.rerank(&changed);
            }
            EngineEvent::PreferenceUpdate { node, list } => {
                let changed = dp.apply_prefs(*node, list.clone());
                dp.rerank(&changed);
            }
        }
    }
    if let Some(InjectedFault::SkippedRepair { node, list }) = fault {
        let changed = dp.apply_prefs(*node, list.clone());
        dp.rerank(&changed);
    }
}

/// Replays `steps` against a fresh engine built from `origin`.
///
/// Outer `Err` — the stream itself no longer applies (validation error);
/// inner result — [`Engine::certify`] after the last step.
pub fn replay(
    origin: &DynamicProblem,
    steps: &[RecordedStep],
) -> Result<Result<(), String>, EngineError> {
    let mut e = Engine::from_dynamic(origin.clone());
    for step in steps {
        if !step.events.is_empty() {
            e.apply_batch(&step.events)?;
        }
        if let Some(f) = &step.fault {
            e.apply_fault(f);
        }
    }
    Ok(e.certify())
}

/// What [`shrink`] found: `steps[start..=end]` of the original window
/// still fails certification when replayed from the checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShrinkResult {
    /// First step of the minimal reproducer (inclusive).
    pub start: usize,
    /// Last step of the minimal reproducer (inclusive) — the earliest
    /// step at which the prefix replay fails.
    pub end: usize,
    /// Fresh-engine replays the search spent (2·log₂ of the window plus
    /// bookkeeping).
    pub replays: u64,
    /// The certification error of the minimal reproducer.
    pub error: String,
}

impl ShrinkResult {
    /// Number of steps in the minimal reproducer.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Always `false` — a reproducer holds at least the failing step.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Delta-debugs the recorded window down to a minimal failing
/// prefix+batch: bisect for the earliest step index `end` whose prefix
/// replay `steps[0..=end]` fails certification, then scan for the largest
/// `start` such that `steps[start..=end]` still fails (candidates whose
/// truncated stream no longer validates count as non-failing, so
/// load-bearing prefix steps are kept). Every candidate is re-certified
/// against a fresh engine built from `origin`.
///
/// Returns `None` when the full window replays clean — the failure is not
/// reproducible from the retained history (e.g. the corrupting step was
/// evicted), which the bundle records rather than hides.
pub fn shrink(origin: &DynamicProblem, steps: &[RecordedStep]) -> Option<ShrinkResult> {
    let n = steps.len();
    if n == 0 {
        return None;
    }
    let mut replays = 0u64;
    let mut fails = |s: usize, f: usize| -> Option<String> {
        replays += 1;
        match replay(origin, &steps[s..=f]) {
            Ok(Err(msg)) => Some(msg),
            _ => None,
        }
    };
    let full_error = fails(0, n - 1)?;
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if fails(0, mid).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let end = hi;
    // Prefix trim: the largest `start` whose suffix still fails. This
    // predicate is *not* monotone in `start` — dropping half of a
    // leave/join pair makes the suffix fail validation, not
    // certification — so bisection is unsound here; scan down from the
    // failing step instead (≤ window-size replays, window ≤ history
    // capacity).
    let mut start = 0usize;
    let mut error = None;
    for s in (1..=end).rev() {
        if let Some(msg) = fails(s, end) {
            start = s;
            error = Some(msg);
            break;
        }
    }
    let error = match error {
        Some(msg) => msg,
        None => fails(0, end).unwrap_or(full_error),
    };
    Some(ShrinkResult { start, end, replays, error })
}

/// Strips the `"epoch N: "` prefix [`Engine::certify`] errors carry, so a
/// violation reproduced at a different replay epoch still compares equal
/// to the original.
pub fn normalize_violation(msg: &str) -> &str {
    if let Some(rest) = msg.strip_prefix("epoch ") {
        if let Some(pos) = rest.find(": ") {
            let (num, tail) = rest.split_at(pos);
            if num.chars().all(|c| c.is_ascii_digit()) {
                return &tail[2..];
            }
        }
    }
    msg
}

/// A self-contained serialization of the shadow checkpoint: enough to
/// rebuild the exact [`DynamicProblem`] with [`OriginSnapshot::restore`].
/// Weights and ranks are **not** stored — the engine maintains them equal
/// to a fresh eq. 9 derivation from the (serialized) preference lists and
/// quotas, so `Problem::new` re-derives them bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct OriginSnapshot {
    /// Universe node count.
    pub n: usize,
    /// Universe edges as endpoint pairs, in edge-id order.
    /// (`GraphBuilder` assigns ids canonically from the edge set, so the
    /// round trip preserves every edge id.)
    pub edges: Vec<(u32, u32)>,
    /// Per-node quotas at the checkpoint.
    pub quotas: Vec<u32>,
    /// Per-node preference lists at the checkpoint.
    pub prefs: Vec<Vec<u32>>,
    /// Node-activity flags at the checkpoint, as a `0`/`1` string.
    pub active: String,
    /// Edge-presence flags at the checkpoint, as a `0`/`1` string.
    pub present: String,
}

fn bits(flags: impl Iterator<Item = bool>) -> String {
    flags.map(|b| if b { '1' } else { '0' }).collect()
}

fn unbits(s: &str, expect: usize, what: &str) -> Result<Vec<bool>, String> {
    if s.len() != expect {
        return Err(format!("{what}: expected {expect} flag bits, got {}", s.len()));
    }
    s.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("{what}: invalid flag character {other:?}")),
        })
        .collect()
}

impl OriginSnapshot {
    /// Serializes a dynamic instance (the shadow checkpoint).
    pub fn capture(dp: &DynamicProblem) -> Self {
        let g = dp.graph();
        OriginSnapshot {
            n: g.node_count(),
            edges: g
                .edges()
                .map(|e| {
                    let (u, v) = g.endpoints(e);
                    (u.0, v.0)
                })
                .collect(),
            quotas: g.nodes().map(|i| dp.quotas().get(i)).collect(),
            prefs: g
                .nodes()
                .map(|i| dp.prefs().list(i).iter().map(|j| j.0).collect())
                .collect(),
            active: bits(g.nodes().map(|i| dp.is_active(i))),
            present: bits(g.edges().map(|e| dp.is_present(e))),
        }
    }

    /// Rebuilds just the static universe [`Problem`] — graph from the edge
    /// list, eq. 9 weights re-derived from the lists and quotas — without
    /// the membership flags or the [`DynamicProblem`] wrapper.
    ///
    /// This is the expensive, once-per-structure half of [`restore`]
    /// (`OriginSnapshot::restore`): callers that audit a stream of
    /// snapshots over an unchanging universe (matchd's continuous auditor)
    /// rebuild the universe only when [`same_structure`]
    /// (`OriginSnapshot::same_structure`) breaks, and re-parse just the
    /// [`flags`](OriginSnapshot::flags) per snapshot.
    pub fn restore_universe(&self) -> Result<Problem, String> {
        let mut b = GraphBuilder::new(self.n);
        for &(u, v) in &self.edges {
            if u as usize >= self.n || v as usize >= self.n || u == v {
                return Err(format!("origin edge ({u},{v}) out of range for n={}", self.n));
            }
            b.add_edge(NodeId(u), NodeId(v));
        }
        let g = b.build();
        if g.edge_count() != self.edges.len() {
            return Err("origin edge list contains duplicates".into());
        }
        if self.quotas.len() != self.n || self.prefs.len() != self.n {
            return Err("origin quota/preference table length mismatch".into());
        }
        let lists: Vec<Vec<NodeId>> = self
            .prefs
            .iter()
            .map(|l| l.iter().map(|&j| NodeId(j)).collect())
            .collect();
        let prefs = PreferenceTable::from_lists(&g, lists)
            .map_err(|e| format!("origin preference lists invalid: {e:?}"))?;
        let quotas = Quotas::from_vec(&g, self.quotas.clone());
        Ok(Problem::new(g, prefs, quotas))
    }

    /// Parses the membership flag strings into `(active, present)` bool
    /// vectors — the cheap, per-snapshot half of [`restore`]
    /// (`OriginSnapshot::restore`).
    pub fn flags(&self) -> Result<(Vec<bool>, Vec<bool>), String> {
        let active = unbits(&self.active, self.n, "origin active flags")?;
        let present = unbits(&self.present, self.edges.len(), "origin present flags")?;
        Ok((active, present))
    }

    /// `true` iff `other` describes the same universe *structure* — node
    /// count, edge list, quotas and preference lists — ignoring the
    /// membership flags. Two snapshots with equal structure restore to
    /// the same [`Problem`] via [`restore_universe`]
    /// (`OriginSnapshot::restore_universe`).
    pub fn same_structure(&self, other: &OriginSnapshot) -> bool {
        self.n == other.n
            && self.edges == other.edges
            && self.quotas == other.quotas
            && self.prefs == other.prefs
    }

    /// Rebuilds the dynamic instance: graph from the edge list, eq. 9
    /// weights re-derived from the lists and quotas, membership flags
    /// restored verbatim.
    pub fn restore(&self) -> Result<DynamicProblem, String> {
        let problem = self.restore_universe()?;
        let (active, present) = self.flags()?;
        Ok(DynamicProblem::from_parts(problem, active, present))
    }

    /// Serializes the snapshot as one self-contained JSON object — the
    /// same shape a [`ForensicBundle`]'s `origin` field embeds, and the
    /// payload `matchd`'s durability snapshots persist (DESIGN.md §13).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        let _ = write!(o, "{{\"n\":{}", self.n);
        o.push_str(",\"edges\":[");
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "[{u},{v}]");
        }
        o.push_str("],\"quotas\":[");
        for (i, q) in self.quotas.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{q}");
        }
        o.push_str("],\"prefs\":[");
        for (i, l) in self.prefs.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push('[');
            for (j, p) in l.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{p}");
            }
            o.push(']');
        }
        let _ = write!(o, "],\"active\":{}", jstr(&self.active));
        let _ = write!(o, ",\"present\":{}}}", jstr(&self.present));
        o
    }

    /// Parses a snapshot serialized by [`OriginSnapshot::to_json`].
    pub fn parse(doc: &str) -> Result<OriginSnapshot, String> {
        origin_from_json(&parse_json(doc)?)
    }
}

fn origin_from_json(v: &Json) -> Result<OriginSnapshot, String> {
    let or = as_obj(v, "origin")?;
    let edges = as_arr(field(or, "edges")?, "origin.edges")?
        .iter()
        .map(|pair| {
            let p = as_arr(pair, "origin edge")?;
            if p.len() != 2 {
                return Err("origin edge is not a pair".to_string());
            }
            Ok((
                as_u64(&p[0], "edge endpoint")? as u32,
                as_u64(&p[1], "edge endpoint")? as u32,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let quotas = as_arr(field(or, "quotas")?, "origin.quotas")?
        .iter()
        .map(|q| Ok(as_u64(q, "quota")? as u32))
        .collect::<Result<Vec<_>, String>>()?;
    let prefs = as_arr(field(or, "prefs")?, "origin.prefs")?
        .iter()
        .map(|l| {
            as_arr(l, "preference list")?
                .iter()
                .map(|p| Ok(as_u64(p, "preference entry")? as u32))
                .collect::<Result<Vec<_>, String>>()
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(OriginSnapshot {
        n: as_u64(field(or, "n")?, "origin.n")? as usize,
        edges,
        quotas,
        prefs,
        active: as_str(field(or, "active")?, "origin.active")?.to_string(),
        present: as_str(field(or, "present")?, "origin.present")?.to_string(),
    })
}

/// The self-contained post-mortem dump: everything needed to understand
/// and re-execute a divergence on another machine, in one JSON object.
/// Produced by [`Engine::capture_bundle`] / [`Engine::certify_with_forensics`],
/// consumed by `owp-inspect forensics` and [`ForensicBundle::verify`].
#[derive(Clone, Debug, PartialEq)]
pub struct ForensicBundle {
    /// What fired: `"certify"`, `"audit"`, or `"manual"`.
    pub trigger: String,
    /// The violation text (certification error or auditor violation).
    pub reason: String,
    /// Engine epoch when the bundle was captured.
    pub epoch: u64,
    /// Last epoch whose prefix replay certified clean (the capture epoch
    /// itself when nothing reproduces).
    pub last_good_epoch: u64,
    /// Compiler provenance ([`RUSTC_VERSION`]).
    pub rustc: String,
    /// Engine configuration (shards/threads/ring capacities).
    pub config: String,
    /// Workload seed, when the caller has one.
    pub seed: Option<u64>,
    /// Epoch the shadow checkpoint corresponds to (state *before* the
    /// first retained step).
    pub origin_epoch: u64,
    /// The shadow checkpoint (`None` when history was disabled).
    pub origin: Option<OriginSnapshot>,
    /// Node-activity flags at capture time (`0`/`1` string).
    pub cur_active: String,
    /// Edge-presence flags at capture time (`0`/`1` string).
    pub cur_present: String,
    /// The retained history window, oldest first.
    pub steps: Vec<RecordedStep>,
    /// The minimal reproducer within [`ForensicBundle::steps`], when the
    /// window reproduces the failure.
    pub shrunk: Option<ShrinkResult>,
    /// Flight-recorder capacity at capture time.
    pub ring_capacity: usize,
    /// Events the ring overwrote before capture.
    pub ring_dropped: u64,
    /// Events the ring ever saw.
    pub ring_seen: u64,
    /// Ring contents as telemetry JSONL (oldest first;
    /// `owp_telemetry::EventLog::parse_jsonl` reads it back).
    pub ring_jsonl: String,
    /// Epoch watermarks `(epoch, events_seen)`, oldest first.
    pub watermarks: Vec<(u64, u64)>,
    /// The span-carrying tail of the ring (causal-DAG fragment), as
    /// telemetry JSONL — empty unless span events were teed into the ring.
    pub causal_tail_jsonl: String,
    /// A metrics snapshot (JSON) the caller attached, if any.
    pub metrics_json: Option<String>,
}

impl ForensicBundle {
    /// The minimal reproducer: the shrunk range when the shrinker found
    /// one, otherwise the whole retained window.
    pub fn reproducer(&self) -> &[RecordedStep] {
        match &self.shrunk {
            Some(s) => &self.steps[s.start..=s.end],
            None => &self.steps,
        }
    }

    /// Re-executes the reproducer against a fresh engine restored from
    /// the bundled checkpoint.
    ///
    /// * `Ok(Some(violation))` — the reproducer still fails (the bundle
    ///   is live); the violation text is the replay's certify error.
    /// * `Ok(None)` — the reproducer replays clean.
    /// * `Err` — the bundle cannot be re-executed (no checkpoint, or the
    ///   recorded stream no longer validates).
    pub fn verify(&self) -> Result<Option<String>, String> {
        let origin = self
            .origin
            .as_ref()
            .ok_or("bundle carries no checkpoint (history ring was disabled)")?;
        let dp = origin.restore()?;
        match replay(&dp, self.reproducer()) {
            Ok(Ok(())) => Ok(None),
            Ok(Err(violation)) => Ok(Some(violation)),
            Err(e) => Err(format!("recorded stream no longer validates: {e}")),
        }
    }

    /// Writes the bundle into a spool directory and returns the final
    /// path. The file lands atomically (write to a `.tmp` sibling, fsync,
    /// rename), so a watcher polling the directory never observes a
    /// half-written bundle — the contract matchd's continuous auditor
    /// relies on when it escalates a live violation. Names are
    /// `bundle-e<epoch>-<n>.json` with `n` bumped past any collision, so
    /// repeated captures at one epoch all survive.
    pub fn spool(&self, dir: &std::path::Path) -> Result<std::path::PathBuf, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create spool dir: {e}"))?;
        let mut n = 0u32;
        let path = loop {
            let candidate = dir.join(format!("bundle-e{}-{n}.json", self.epoch));
            if !candidate.exists() {
                break candidate;
            }
            n += 1;
            if n > 10_000 {
                return Err("spool dir holds 10k bundles for this epoch".into());
            }
        };
        let tmp = path.with_extension("json.tmp");
        let doc = self.to_json();
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
            f.write_all(doc.as_bytes())
                .and_then(|()| f.sync_all())
                .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        }
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot publish {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Serializes the bundle as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\"format\":1");
        let _ = write!(o, ",\"trigger\":{}", jstr(&self.trigger));
        let _ = write!(o, ",\"reason\":{}", jstr(&self.reason));
        let _ = write!(o, ",\"epoch\":{}", self.epoch);
        let _ = write!(o, ",\"last_good_epoch\":{}", self.last_good_epoch);
        let _ = write!(o, ",\"rustc\":{}", jstr(&self.rustc));
        let _ = write!(o, ",\"config\":{}", jstr(&self.config));
        match self.seed {
            Some(s) => {
                let _ = write!(o, ",\"seed\":{s}");
            }
            None => o.push_str(",\"seed\":null"),
        }
        let _ = write!(o, ",\"origin_epoch\":{}", self.origin_epoch);
        match &self.origin {
            Some(or) => {
                o.push_str(",\"origin\":");
                o.push_str(&or.to_json());
            }
            None => o.push_str(",\"origin\":null"),
        }
        let _ = write!(o, ",\"cur_active\":{}", jstr(&self.cur_active));
        let _ = write!(o, ",\"cur_present\":{}", jstr(&self.cur_present));
        o.push_str(",\"steps\":[");
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"epoch\":{},\"fault\":", step.epoch);
            match &step.fault {
                Some(f) => o.push_str(&fault_to_json(f)),
                None => o.push_str("null"),
            }
            o.push_str(",\"events\":[");
            for (j, ev) in step.events.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str(&event_to_json(ev));
            }
            o.push_str("]}");
        }
        o.push(']');
        match &self.shrunk {
            Some(s) => {
                let _ = write!(
                    o,
                    ",\"shrunk\":{{\"start\":{},\"end\":{},\"replays\":{},\"error\":{}}}",
                    s.start,
                    s.end,
                    s.replays,
                    jstr(&s.error)
                );
            }
            None => o.push_str(",\"shrunk\":null"),
        }
        let _ = write!(o, ",\"ring_capacity\":{}", self.ring_capacity);
        let _ = write!(o, ",\"ring_dropped\":{}", self.ring_dropped);
        let _ = write!(o, ",\"ring_seen\":{}", self.ring_seen);
        let _ = write!(o, ",\"ring\":{}", jstr(&self.ring_jsonl));
        o.push_str(",\"watermarks\":[");
        for (i, &(e, s)) in self.watermarks.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "[{e},{s}]");
        }
        o.push(']');
        let _ = write!(o, ",\"causal_tail\":{}", jstr(&self.causal_tail_jsonl));
        match &self.metrics_json {
            Some(m) => {
                let _ = write!(o, ",\"metrics\":{}", jstr(m));
            }
            None => o.push_str(",\"metrics\":null"),
        }
        o.push('}');
        o
    }

    /// Parses a bundle written by [`ForensicBundle::to_json`].
    pub fn parse(doc: &str) -> Result<ForensicBundle, String> {
        let root = parse_json(doc)?;
        let top = as_obj(&root, "bundle")?;
        let format = as_u64(field(top, "format")?, "format")?;
        if format != 1 {
            return Err(format!("unsupported bundle format {format}"));
        }
        let origin = match field(top, "origin")? {
            Json::Null => None,
            v => Some(origin_from_json(v)?),
        };
        let steps = as_arr(field(top, "steps")?, "steps")?
            .iter()
            .map(|s| {
                let st = as_obj(s, "step")?;
                let fault = match field(st, "fault")? {
                    Json::Null => None,
                    v => Some(fault_from_json(v)?),
                };
                let events = as_arr(field(st, "events")?, "step events")?
                    .iter()
                    .map(event_from_json)
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(RecordedStep {
                    epoch: as_u64(field(st, "epoch")?, "step epoch")?,
                    events,
                    fault,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let shrunk = match field(top, "shrunk")? {
            Json::Null => None,
            v => {
                let sh = as_obj(v, "shrunk")?;
                let s = ShrinkResult {
                    start: as_u64(field(sh, "start")?, "shrunk.start")? as usize,
                    end: as_u64(field(sh, "end")?, "shrunk.end")? as usize,
                    replays: as_u64(field(sh, "replays")?, "shrunk.replays")?,
                    error: as_str(field(sh, "error")?, "shrunk.error")?.to_string(),
                };
                if s.start > s.end || s.end >= steps.len() {
                    return Err(format!(
                        "shrunk range {}..={} out of bounds for {} steps",
                        s.start,
                        s.end,
                        steps.len()
                    ));
                }
                Some(s)
            }
        };
        let watermarks = as_arr(field(top, "watermarks")?, "watermarks")?
            .iter()
            .map(|pair| {
                let p = as_arr(pair, "watermark")?;
                if p.len() != 2 {
                    return Err("watermark is not a pair".to_string());
                }
                Ok((
                    as_u64(&p[0], "watermark epoch")?,
                    as_u64(&p[1], "watermark seq")?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ForensicBundle {
            trigger: as_str(field(top, "trigger")?, "trigger")?.to_string(),
            reason: as_str(field(top, "reason")?, "reason")?.to_string(),
            epoch: as_u64(field(top, "epoch")?, "epoch")?,
            last_good_epoch: as_u64(field(top, "last_good_epoch")?, "last_good_epoch")?,
            rustc: as_str(field(top, "rustc")?, "rustc")?.to_string(),
            config: as_str(field(top, "config")?, "config")?.to_string(),
            seed: match field(top, "seed")? {
                Json::Null => None,
                v => Some(as_u64(v, "seed")?),
            },
            origin_epoch: as_u64(field(top, "origin_epoch")?, "origin_epoch")?,
            origin,
            cur_active: as_str(field(top, "cur_active")?, "cur_active")?.to_string(),
            cur_present: as_str(field(top, "cur_present")?, "cur_present")?.to_string(),
            steps,
            shrunk,
            ring_capacity: as_u64(field(top, "ring_capacity")?, "ring_capacity")? as usize,
            ring_dropped: as_u64(field(top, "ring_dropped")?, "ring_dropped")?,
            ring_seen: as_u64(field(top, "ring_seen")?, "ring_seen")?,
            ring_jsonl: as_str(field(top, "ring")?, "ring")?.to_string(),
            watermarks,
            causal_tail_jsonl: as_str(field(top, "causal_tail")?, "causal_tail")?.to_string(),
            metrics_json: match field(top, "metrics")? {
                Json::Null => None,
                v => Some(as_str(v, "metrics")?.to_string()),
            },
        })
    }
}

// ---------------------------------------------------------------------
// EngineEvent / InjectedFault (de)serialization
// ---------------------------------------------------------------------

fn event_to_json(ev: &EngineEvent) -> String {
    match ev {
        EngineEvent::NodeJoin { node } => format!("{{\"t\":\"join\",\"node\":{}}}", node.0),
        EngineEvent::NodeLeave { node } => format!("{{\"t\":\"leave\",\"node\":{}}}", node.0),
        EngineEvent::EdgeAdd { u, v } => format!("{{\"t\":\"eadd\",\"u\":{},\"v\":{}}}", u.0, v.0),
        EngineEvent::EdgeRemove { u, v } => {
            format!("{{\"t\":\"erem\",\"u\":{},\"v\":{}}}", u.0, v.0)
        }
        EngineEvent::QuotaChange { node, quota } => {
            format!("{{\"t\":\"quota\",\"node\":{},\"q\":{quota}}}", node.0)
        }
        EngineEvent::PreferenceUpdate { node, list } => {
            let items: Vec<String> = list.iter().map(|j| j.0.to_string()).collect();
            format!(
                "{{\"t\":\"prefs\",\"node\":{},\"list\":[{}]}}",
                node.0,
                items.join(",")
            )
        }
    }
}

fn event_from_json(v: &Json) -> Result<EngineEvent, String> {
    let o = as_obj(v, "event")?;
    let t = as_str(field(o, "t")?, "event type")?;
    let node = |k: &str| -> Result<NodeId, String> {
        Ok(NodeId(as_u64(field(o, k)?, k)? as u32))
    };
    Ok(match t {
        "join" => EngineEvent::NodeJoin { node: node("node")? },
        "leave" => EngineEvent::NodeLeave { node: node("node")? },
        "eadd" => EngineEvent::EdgeAdd { u: node("u")?, v: node("v")? },
        "erem" => EngineEvent::EdgeRemove { u: node("u")?, v: node("v")? },
        "quota" => EngineEvent::QuotaChange {
            node: node("node")?,
            quota: as_u64(field(o, "q")?, "quota")? as u32,
        },
        "prefs" => EngineEvent::PreferenceUpdate {
            node: node("node")?,
            list: as_arr(field(o, "list")?, "preference list")?
                .iter()
                .map(|p| Ok(NodeId(as_u64(p, "preference entry")? as u32)))
                .collect::<Result<Vec<_>, String>>()?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    })
}

fn fault_to_json(f: &InjectedFault) -> String {
    match f {
        InjectedFault::PhantomEdge { edge } => {
            format!("{{\"t\":\"phantom\",\"edge\":{}}}", edge.0)
        }
        InjectedFault::SkippedRepair { node, list } => {
            let items: Vec<String> = list.iter().map(|j| j.0.to_string()).collect();
            format!(
                "{{\"t\":\"skip\",\"node\":{},\"list\":[{}]}}",
                node.0,
                items.join(",")
            )
        }
    }
}

fn fault_from_json(v: &Json) -> Result<InjectedFault, String> {
    let o = as_obj(v, "fault")?;
    Ok(match as_str(field(o, "t")?, "fault type")? {
        "phantom" => InjectedFault::PhantomEdge {
            edge: EdgeId(as_u64(field(o, "edge")?, "fault edge")? as u32),
        },
        "skip" => InjectedFault::SkippedRepair {
            node: NodeId(as_u64(field(o, "node")?, "fault node")? as u32),
            list: as_arr(field(o, "list")?, "fault list")?
                .iter()
                .map(|p| Ok(NodeId(as_u64(p, "fault list entry")? as u32)))
                .collect::<Result<Vec<_>, String>>()?,
        },
        other => return Err(format!("unknown fault type {other:?}")),
    })
}

// ---------------------------------------------------------------------
// Minimal JSON reader/writer (the workspace vendors no serde_json)
// ---------------------------------------------------------------------

/// JSON string literal with the escapes the grammar requires.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn parse_json(doc: &str) -> Result<Json, String> {
    let mut p = JsonParser { b: doc.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.obj(),
            b'[' => self.arr(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.num(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            let c = self.peek().ok_or("unterminated string")?;
            self.i += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into())
                }
                b'\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            let ch = char::from_u32(cp).unwrap_or('\u{fffd}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        other => {
                            return Err(format!("unknown escape \\{} ", other as char))
                        }
                    }
                }
                raw => out.push(raw),
            }
        }
    }

    fn arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

fn as_obj<'a>(v: &'a Json, what: &str) -> Result<&'a [(String, Json)], String> {
    match v {
        Json::Obj(fields) => Ok(fields),
        _ => Err(format!("{what}: expected an object")),
    }
}

fn as_arr<'a>(v: &'a Json, what: &str) -> Result<&'a [Json], String> {
    match v {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("{what}: expected an array")),
    }
}

fn as_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, String> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(format!("{what}: expected a string")),
    }
}

fn as_u64(v: &Json, what: &str) -> Result<u64, String> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
            Ok(*n as u64)
        }
        _ => Err(format!("{what}: expected a non-negative integer")),
    }
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

// ---------------------------------------------------------------------
// Engine-side capture (lives here to keep engine.rs about repair)
// ---------------------------------------------------------------------

impl Engine {
    /// Freezes the engine's forensic state into a [`ForensicBundle`]:
    /// ring contents + watermarks, the retained history window and its
    /// checkpoint, membership snapshots, provenance, and — when the
    /// window reproduces a certification failure — the [`shrink`]-minimal
    /// reproducer. `trigger` is conventionally `"certify"`, `"audit"`, or
    /// `"manual"`; `seed`/`metrics_json` are caller-supplied provenance.
    pub fn capture_bundle(
        &self,
        trigger: &str,
        reason: &str,
        seed: Option<u64>,
        metrics_json: Option<&str>,
    ) -> ForensicBundle {
        let dp = self.dynamic();
        let g = dp.graph();
        let steps: Vec<RecordedStep> = self.history().steps().cloned().collect();
        let shrunk = self
            .checkpoint()
            .filter(|_| !steps.is_empty())
            .and_then(|ck| shrink(ck, &steps));
        let origin_epoch = self.checkpoint_epoch().0;
        let last_good_epoch = match &shrunk {
            Some(s) if s.end == 0 => origin_epoch,
            Some(s) => steps[s.end - 1].epoch,
            None => self.epoch().0,
        };
        let ring = self.flight();
        let causal_tail: Vec<String> = ring
            .iter()
            .filter(|ev| ev.tag().starts_with("span_"))
            .map(|ev| ev.to_json())
            .collect();
        let tail_start = causal_tail.len().saturating_sub(64);
        let mut causal_tail_jsonl = String::new();
        for line in &causal_tail[tail_start..] {
            causal_tail_jsonl.push_str(line);
            causal_tail_jsonl.push('\n');
        }
        ForensicBundle {
            trigger: trigger.to_string(),
            reason: reason.to_string(),
            epoch: self.epoch().0,
            last_good_epoch,
            rustc: RUSTC_VERSION.to_string(),
            config: format!(
                "shards={} threads={} flight={} history={}",
                self.shard_count(),
                self.thread_count(),
                ring.capacity(),
                self.history().capacity(),
            ),
            seed,
            origin_epoch,
            origin: self.checkpoint().map(OriginSnapshot::capture),
            cur_active: bits(g.nodes().map(|i| dp.is_active(i))),
            cur_present: bits(g.edges().map(|e| dp.is_present(e))),
            steps,
            shrunk,
            ring_capacity: ring.capacity(),
            ring_dropped: ring.dropped(),
            ring_seen: ring.seen(),
            ring_jsonl: ring.to_jsonl(),
            watermarks: ring.watermarks().collect(),
            causal_tail_jsonl,
            metrics_json: metrics_json.map(str::to_string),
        }
    }

    /// [`Engine::certify`] with an automatic forensic dump: on divergence
    /// the full bundle (shrunk reproducer included) comes back instead of
    /// a bare message. The happy path costs exactly one `certify()`.
    pub fn certify_with_forensics(
        &self,
        seed: Option<u64>,
        metrics_json: Option<&str>,
    ) -> Result<(), Box<ForensicBundle>> {
        match self.certify() {
            Ok(()) => Ok(()),
            Err(reason) => {
                Err(Box::new(self.capture_bundle("certify", &reason, seed, metrics_json)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EngineEvent;

    fn problem(seed: u64) -> Problem {
        Problem::random_gnp(24, 0.3, 2, seed)
    }

    fn structural_stream(e: &Engine, batches: usize) -> Vec<Vec<EngineEvent>> {
        // Leave/rejoin walk over distinct nodes: deterministic, always
        // valid, every batch undone by the next.
        let n = e.dynamic().graph().node_count() as u32;
        (0..batches)
            .map(|i| {
                let node = NodeId((i as u32 / 2) % n);
                if i % 2 == 0 {
                    vec![EngineEvent::NodeLeave { node }]
                } else {
                    vec![EngineEvent::NodeJoin { node }]
                }
            })
            .collect()
    }

    /// An alive universe edge the engine currently does not select.
    fn unselected_alive_edge(e: &Engine) -> EdgeId {
        let dp = e.dynamic();
        dp.graph()
            .edges()
            .find(|&ed| dp.is_alive(ed) && !e.matching().contains(ed))
            .expect("G(24, .3) under quota 2 leaves unselected edges")
    }

    #[test]
    fn step_ring_evicts_oldest_and_reuses_slots() {
        let mut ring = StepRing::new(2);
        assert_eq!(ring.capacity(), 2);
        assert!(ring.evicting().is_none());
        ring.push_step(1, &[EngineEvent::NodeLeave { node: NodeId(0) }], None);
        ring.push_step(2, &[EngineEvent::NodeJoin { node: NodeId(0) }], None);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicting().unwrap().epoch, 1);
        ring.push_step(3, &[], Some(InjectedFault::PhantomEdge { edge: EdgeId(7) }));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 1);
        let epochs: Vec<u64> = ring.steps().map(|s| s.epoch).collect();
        assert_eq!(epochs, vec![2, 3], "oldest first after wraparound");
        assert!(ring.steps().last().unwrap().fault.is_some());
    }

    #[test]
    fn phantom_edge_shrinks_to_the_fault_step() {
        let mut e = Engine::new(problem(21));
        for b in structural_stream(&e, 6) {
            e.apply_batch(&b).unwrap();
        }
        e.certify().expect("clean before injection");
        let edge = unselected_alive_edge(&e);
        e.inject_fault(InjectedFault::PhantomEdge { edge });
        let reason = e.certify().expect_err("phantom edge must diverge");
        let bundle = e.capture_bundle("certify", &reason, Some(21), None);

        let shrunk = bundle.shrunk.clone().expect("window reproduces the fault");
        assert_eq!(
            bundle.reproducer().len(),
            1,
            "a self-contained fault shrinks to a single step"
        );
        assert!(bundle.reproducer()[0].fault.is_some());
        assert!(shrunk.replays >= 2, "bisection replayed candidates");
        let replayed = bundle.verify().expect("bundle re-executes").expect("still fails");
        assert_eq!(
            normalize_violation(&replayed),
            normalize_violation(&reason),
            "replay reproduces the same violation"
        );
    }

    #[test]
    fn bundle_round_trips_through_json() {
        let mut e = Engine::new(problem(22));
        for b in structural_stream(&e, 4) {
            e.apply_batch(&b).unwrap();
        }
        let edge = unselected_alive_edge(&e);
        e.inject_fault(InjectedFault::PhantomEdge { edge });
        let reason = e.certify().unwrap_err();
        let bundle = e.certify_with_forensics(Some(22), Some("{\"counters\":[]}"))
            .expect_err("diverged");
        assert_eq!(bundle.trigger, "certify");
        assert_eq!(normalize_violation(&bundle.reason), normalize_violation(&reason));
        let parsed = ForensicBundle::parse(&bundle.to_json()).expect("bundle parses");
        assert_eq!(parsed, *bundle, "lossless round trip");
        assert!(parsed.verify().unwrap().is_some(), "parsed bundle still reproduces");
    }

    #[test]
    fn skipped_repair_reproduces_from_the_checkpoint() {
        let mut e = Engine::new(problem(23));
        for b in structural_stream(&e, 4) {
            e.apply_batch(&b).unwrap();
        }
        // Find a node whose preference reversal actually moves the
        // canonical matching (clone-probe; deterministic).
        let g_nodes = e.dynamic().graph().node_count() as u32;
        let fault = (0..g_nodes)
            .map(NodeId)
            .filter_map(|node| {
                let mut list: Vec<NodeId> =
                    e.dynamic().graph().neighbor_ids(node).collect();
                if list.len() < 2 {
                    return None;
                }
                list.reverse();
                let mut probe = e.clone();
                let f = InjectedFault::SkippedRepair { node, list };
                probe.apply_fault(&f);
                probe.certify().is_err().then_some(f)
            })
            .next()
            .expect("some reversal perturbs the matching");
        e.inject_fault(fault);
        let reason = e.certify().expect_err("tampered weights diverge");
        let bundle = e.capture_bundle("certify", &reason, None, None);
        assert!(bundle.shrunk.is_some());
        assert!(bundle.reproducer().len() <= bundle.steps.len());
        let replayed = bundle.verify().unwrap().expect("reproduces");
        assert_eq!(normalize_violation(&replayed), normalize_violation(&reason));
    }

    #[test]
    fn healthy_engine_captures_a_clean_bundle() {
        let mut e = Engine::new(problem(24));
        for b in structural_stream(&e, 4) {
            e.apply_batch(&b).unwrap();
        }
        e.certify_with_forensics(None, None).expect("healthy");
        let bundle = e.capture_bundle("manual", "snapshot for inspection", None, None);
        assert!(bundle.shrunk.is_none(), "nothing fails, nothing to shrink");
        assert_eq!(bundle.verify().unwrap(), None, "replay is clean");
        let parsed = ForensicBundle::parse(&bundle.to_json()).unwrap();
        assert_eq!(parsed, bundle);
    }

    #[test]
    fn eviction_advances_the_checkpoint() {
        // History capacity 3 over a longer stream: the window slides, the
        // checkpoint absorbs evicted steps, and a late fault still
        // reproduces from the advanced checkpoint.
        let mut e = Engine::builder(problem(25))
            .history_capacity(3)
            .build();
        for b in structural_stream(&e, 10) {
            e.apply_batch(&b).unwrap();
        }
        assert!(e.history().evicted() > 0, "window slid");
        assert_eq!(e.history().len(), 3);
        assert_eq!(
            e.checkpoint_epoch().0,
            e.history().steps().next().unwrap().epoch - 1,
            "checkpoint sits immediately before the oldest retained step"
        );
        let edge = unselected_alive_edge(&e);
        e.inject_fault(InjectedFault::PhantomEdge { edge });
        let reason = e.certify().unwrap_err();
        let bundle = e.capture_bundle("certify", &reason, None, None);
        assert!(bundle.shrunk.is_some(), "reproducible from the slid window");
        assert!(bundle.verify().unwrap().is_some());
    }

    #[test]
    fn normalization_strips_only_the_epoch_prefix() {
        assert_eq!(normalize_violation("epoch 12: engine selects X"), "engine selects X");
        assert_eq!(normalize_violation("epoch x: not a number"), "epoch x: not a number");
        assert_eq!(normalize_violation("no prefix"), "no prefix");
    }

    #[test]
    fn malformed_bundles_are_structured_errors() {
        assert!(ForensicBundle::parse("").is_err());
        assert!(ForensicBundle::parse("not json").is_err());
        assert!(ForensicBundle::parse("{\"format\":2}").is_err());
        assert!(ForensicBundle::parse("{\"format\":1}").unwrap_err().contains("missing field"));
    }
}
