//! [`DynamicProblem`] — a mutable membership overlay over one fixed
//! universe instance.
//!
//! The universe is an ordinary [`Problem`]: the graph of every connection
//! that could ever exist, preference lists over full universe
//! neighbourhoods, quotas, eq. 9 weights and the integer rank kernel.
//! Dynamics are two flag vectors on top — node activity and edge presence
//! — plus in-place mutation of quotas and preference lists (which
//! re-derives the affected weights and splices the rank kernel
//! incrementally instead of re-sorting the world).
//!
//! Satisfaction convention: lists and quotas stay defined over the
//! universe neighbourhood, so `L_i` (and hence per-connection
//! satisfaction increments) do **not** shrink when neighbours happen to
//! be offline — a peer that loses its top-ranked partner to churn is
//! *less satisfied*, not re-normalized into contentment. This is what
//! makes satisfaction comparable across epochs.

use owp_graph::{EdgeId, Graph, GraphBuilder, NodeId, PreferenceTable, Quotas};
use owp_matching::{EdgeOrder, EdgeWeights, Problem};

/// One universe [`Problem`] plus node-activity and edge-presence flags.
///
/// An edge is **alive** iff it is present and both endpoints are active;
/// the engine's maintained matching only ever selects alive edges.
#[derive(Clone, Debug)]
pub struct DynamicProblem {
    problem: Problem,
    active: Vec<bool>,
    present: Vec<bool>,
    active_nodes: usize,
    present_edges: usize,
}

impl DynamicProblem {
    /// Wraps a universe instance with every node active and every edge
    /// present.
    pub fn new(problem: Problem) -> Self {
        let n = problem.node_count();
        let m = problem.edge_count();
        DynamicProblem {
            problem,
            active: vec![true; n],
            present: vec![true; m],
            active_nodes: n,
            present_edges: m,
        }
    }

    /// Rewraps a universe instance with explicit membership flags — how a
    /// deserialized forensic bundle restores the checkpoint state
    /// (`crate::forensics`), and how audit harnesses build a known
    /// membership state directly. Flag lengths must match the instance.
    pub fn from_parts(problem: Problem, active: Vec<bool>, present: Vec<bool>) -> Self {
        assert_eq!(active.len(), problem.node_count(), "active flag length");
        assert_eq!(present.len(), problem.edge_count(), "present flag length");
        let active_nodes = active.iter().filter(|&&a| a).count();
        let present_edges = present.iter().filter(|&&p| p).count();
        DynamicProblem {
            problem,
            active,
            present,
            active_nodes,
            present_edges,
        }
    }

    /// The universe graph (fixed for the engine's lifetime).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.problem.graph
    }

    /// Current preference lists (mutated by `PreferenceUpdate`).
    #[inline]
    pub fn prefs(&self) -> &PreferenceTable {
        &self.problem.prefs
    }

    /// Current quotas (mutated by `QuotaChange`).
    #[inline]
    pub fn quotas(&self) -> &Quotas {
        &self.problem.quotas
    }

    /// Current eq. 9 weights over the universe edges.
    #[inline]
    pub fn weights(&self) -> &EdgeWeights {
        &self.problem.weights
    }

    /// Current integer edge ranks (kept consistent with the weights).
    #[inline]
    pub fn order(&self) -> &EdgeOrder {
        &self.problem.order
    }

    /// `true` iff peer `i` is active.
    #[inline]
    pub fn is_active(&self, i: NodeId) -> bool {
        self.active[i.index()]
    }

    /// `true` iff universe edge `e` is present.
    #[inline]
    pub fn is_present(&self, e: EdgeId) -> bool {
        self.present[e.index()]
    }

    /// `true` iff edge `e` can carry a connection right now: present, with
    /// both endpoints active.
    #[inline]
    pub fn is_alive(&self, e: EdgeId) -> bool {
        if !self.present[e.index()] {
            return false;
        }
        let (u, v) = self.problem.graph.endpoints(e);
        self.active[u.index()] && self.active[v.index()]
    }

    /// Number of active peers.
    pub fn active_count(&self) -> usize {
        self.active_nodes
    }

    /// Number of present universe edges.
    pub fn present_count(&self) -> usize {
        self.present_edges
    }

    /// Number of alive edges (present with both endpoints active).
    pub fn alive_count(&self) -> usize {
        self.problem.graph.edges().filter(|&e| self.is_alive(e)).count()
    }

    pub(crate) fn set_active(&mut self, i: NodeId, on: bool) {
        debug_assert_ne!(self.active[i.index()], on);
        self.active[i.index()] = on;
        if on {
            self.active_nodes += 1;
        } else {
            self.active_nodes -= 1;
        }
    }

    pub(crate) fn set_present(&mut self, e: EdgeId, on: bool) {
        debug_assert_ne!(self.present[e.index()], on);
        self.present[e.index()] = on;
        if on {
            self.present_edges += 1;
        } else {
            self.present_edges -= 1;
        }
    }

    pub(crate) fn active_flags(&self) -> &[bool] {
        &self.active
    }

    pub(crate) fn present_flags(&self) -> &[bool] {
        &self.present
    }

    /// Sets `i`'s quota and re-derives its incident eq. 9 weights. Returns
    /// the edges whose keys changed; the rank kernel is **stale** for them
    /// until [`DynamicProblem::rerank`] runs — the engine defers that to
    /// one splice per batch, since nothing between events reads ranks.
    pub(crate) fn apply_quota(&mut self, i: NodeId, quota: u32) -> Vec<EdgeId> {
        let p = &mut self.problem;
        p.quotas.set(&p.graph, i, quota);
        p.weights.recompute_incident(&p.graph, &p.prefs, &p.quotas, i)
    }

    /// Replaces `i`'s preference list (validated to be a universe-
    /// neighbourhood permutation by batch validation) and re-derives its
    /// incident weights. Same staleness contract as
    /// [`DynamicProblem::apply_quota`].
    pub(crate) fn apply_prefs(&mut self, i: NodeId, list: Vec<NodeId>) -> Vec<EdgeId> {
        let p = &mut self.problem;
        p.prefs
            .set_list(&p.graph, i, list)
            .expect("batch validation admits only permutations");
        p.weights.recompute_incident(&p.graph, &p.prefs, &p.quotas, i)
    }

    /// Splices the rank kernel after one or more weight mutations: one
    /// `O(|changed| log)` exact-key pass plus one `O(m)` integer pass,
    /// however many events contributed to `changed`.
    pub(crate) fn rerank(&mut self, changed: &[EdgeId]) {
        let p = &mut self.problem;
        p.order.update_keys(&p.graph, &p.weights, changed);
    }

    /// Freezes the current *alive* sub-instance into a standalone
    /// [`Problem`], plus the map from its edge ids back to universe edge
    /// ids — the from-scratch reference that certified repair is checked
    /// against.
    ///
    /// * Nodes keep their universe ids; inactive peers become isolated.
    /// * Preference lists are the universe lists restricted to alive
    ///   neighbours (order preserved); quotas carry over (the constructor
    ///   clamp to the smaller alive degree cannot change the greedy
    ///   outcome — a quota above the degree never binds).
    /// * Weights are **inherited**, not re-derived: the reference must
    ///   rank edges exactly as the engine does, and under the universe
    ///   satisfaction convention eq. 9 is evaluated on universe lists.
    ///
    /// The map is position-for-position: `map[k]` is the universe id of
    /// the snapshot's `EdgeId(k)`. (`GraphBuilder` assigns ids in
    /// canonical endpoint-pair order, so sorting the alive edges the same
    /// way lines the two id spaces up.)
    pub fn snapshot_with_map(&self) -> (Problem, Vec<EdgeId>) {
        let g = self.graph();
        let mut alive: Vec<(NodeId, NodeId, EdgeId)> = g
            .edges()
            .filter(|&e| self.is_alive(e))
            .map(|e| {
                let (u, v) = g.endpoints(e);
                (u, v, e)
            })
            .collect();
        alive.sort_unstable();

        let mut b = GraphBuilder::new(g.node_count());
        for &(u, v, _) in &alive {
            b.add_edge(u, v);
        }
        let sg = b.build();
        let map: Vec<EdgeId> = alive.iter().map(|&(_, _, e)| e).collect();

        let lists: Vec<Vec<NodeId>> = g
            .nodes()
            .map(|i| {
                if !self.is_active(i) {
                    return Vec::new();
                }
                self.prefs()
                    .list(i)
                    .iter()
                    .copied()
                    .filter(|&j| {
                        let e = g.edge_between(i, j).expect("preference over neighbours");
                        self.is_alive(e)
                    })
                    .collect()
            })
            .collect();
        let prefs = PreferenceTable::from_lists(&sg, lists)
            .expect("restricting universe lists to alive neighbours is a permutation");
        let quotas = Quotas::from_vec(&sg, g.nodes().map(|i| self.quotas().get(i)).collect());
        let weights =
            EdgeWeights::from_raw(map.iter().map(|&e| self.weights().get(e)).collect());
        (Problem::with_weights(sg, prefs, quotas, weights), map)
    }

    /// [`DynamicProblem::snapshot_with_map`] without the edge map.
    pub fn snapshot(&self) -> Problem {
        self.snapshot_with_map().0
    }
}
