//! Reusable repair arenas — the steady-state zero-allocation pass.
//!
//! Before this module the engine allocated fresh dirty sets, heap
//! frontiers, scratch validation flags and delta buffers on **every**
//! batch; profiled at n=10⁶ the allocator traffic dominated the repair
//! cost (ROADMAP item 5). All of that state now lives in arenas owned by
//! the [`crate::Engine`] and is *cleared*, never dropped:
//!
//! * [`ShardState`] — one per shard: the interior selected/queued bitmaps
//!   (shard-local edge indexing), the rank-ordered heap frontier, seed and
//!   boundary-proposal buffers, the structure-of-arrays selected-edge
//!   mirror ([`FixedCsr`], u32 edge ids), per-shard touched tracking and
//!   the flip journal.
//! * [`EngineScratch`] — engine-global: validation flag copies, the
//!   boundary merge heap/queued-bitmap/seed list, the delta compaction
//!   state and global touched tracking.
//!
//! Clearing discipline: bitmaps are cleared through the companion lists
//! that recorded which bits were set (O(touched), not O(n)), heaps drain
//! themselves to empty by the end of every batch, and `Vec`s are
//! `clear()`ed so their capacity survives. After warm-up a batch of
//! structural events (join/leave, edge add/remove) touches the allocator
//! zero times — asserted by `crates/engine/tests/zero_alloc.rs` with a
//! counting global allocator. Weight-changing events (`QuotaChange`,
//! `PreferenceUpdate`) still allocate inside the rank-kernel splice and
//! are outside the zero-allocation contract (DESIGN.md §11).

use crate::shard::ShardMap;
use owp_graph::{EdgeId, Graph, NodeId};
use owp_matching::{EdgeRank, FixedCsr};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap entry: `(rank, edge id)` behind [`Reverse`], so the globally
/// heaviest (lowest-rank) edge pops first. Plain `u32` pairs keep the
/// heap's backing array compact (8 bytes per entry) on the hot path.
pub(crate) type Frontier = BinaryHeap<Reverse<(EdgeRank, u32)>>;

/// Per-shard repair state and arenas. Interior edges and nodes are
/// addressed by their *shard-local* indices (see [`ShardMap`]); the
/// structure is `Send`, so disjoint shards repair on different threads.
#[derive(Clone, Debug)]
pub(crate) struct ShardState {
    /// Interior-edge selected bitmap, by local edge index — the
    /// authoritative status of this shard's interior edges during repair
    /// (the public [`owp_matching::BMatching`] mirror is synced from the
    /// flip journal once the batch's repair converges).
    pub selected: Vec<bool>,
    /// In-heap bitmap, by local edge index. Set on push, cleared on pop,
    /// so an edge re-seeded by a later round can re-enter the frontier.
    pub queued: Vec<bool>,
    /// The rank-ordered repair frontier.
    pub heap: Frontier,
    /// Interior edges (global ids) to seed the next phase-1 pass with;
    /// deduplicated against `queued` when the heap is built.
    pub seeds: Vec<EdgeId>,
    /// Boundary edges this shard's interior flips want re-evaluated:
    /// `(rank, edge id)`, collected race-free per shard and merged
    /// deterministically in phase 2.
    pub proposals: Vec<(EdgeRank, u32)>,
    /// Selected-edge mirror: row = local node, items = global edge ids of
    /// its currently selected incident edges (interior *and* boundary).
    pub sel: FixedCsr,
    /// Touched bitmap by local node index, cleared through
    /// `touched_nodes`.
    pub touched: Vec<bool>,
    /// Local indices of nodes touched by this shard's repair.
    pub touched_nodes: Vec<u32>,
    /// Flip journal: `(global edge id, now_selected)` in application
    /// order. An interior edge's flips all land here (and only here), so
    /// per-edge chronology is preserved for the mirror sync.
    pub flips: Vec<(u32, bool)>,
    /// Edges evaluated by this shard in the current batch.
    pub evaluated: u64,
}

impl ShardState {
    /// Empty state for shard `s` of `map`, with the selected-edge mirror
    /// sized to the shard's node degrees (a node can never have more
    /// selected incident edges than incident edges).
    pub fn new(g: &Graph, map: &ShardMap, s: usize) -> Self {
        ShardState {
            selected: vec![false; map.interior_edges(s).len()],
            queued: vec![false; map.interior_edges(s).len()],
            heap: BinaryHeap::new(),
            seeds: Vec::new(),
            proposals: Vec::new(),
            sel: FixedCsr::with_capacities(
                map.nodes(s).iter().map(|&i| g.degree(i) as u32),
            ),
            touched: vec![false; map.nodes(s).len()],
            touched_nodes: Vec::new(),
            flips: Vec::new(),
            evaluated: 0,
        }
    }
}

/// Engine-global arenas: everything the sequential parts of a batch
/// (validation, event application, boundary merge, delta compaction)
/// reuse across batches.
#[derive(Clone, Debug)]
pub(crate) struct EngineScratch {
    /// Global touched bitmap by node id, cleared through `touched_nodes`.
    pub touched: Vec<bool>,
    /// Nodes whose satisfaction inputs changed this batch.
    pub touched_nodes: Vec<NodeId>,
    /// Edges whose rank keys moved this batch (folded into one splice).
    pub rerank_list: Vec<EdgeId>,
    /// Boundary-edge selected bitmap, by boundary index — the
    /// authoritative status of boundary edges (mutated only by the
    /// sequential phase-2 merge, so phase-1 workers may read it freely).
    pub bselected: Vec<bool>,
    /// Boundary in-heap bitmap, by boundary index.
    pub bqueued: Vec<bool>,
    /// The boundary merge frontier.
    pub bheap: Frontier,
    /// Boundary edges seeded directly by events.
    pub bseeds: Vec<EdgeId>,
    /// Boundary flip journal (phase 2 only) — same role as
    /// [`ShardState::flips`].
    pub flips: Vec<(u32, bool)>,
    /// Delta compaction: 0 = untouched, 1 = net added, 2 = net removed,
    /// by global edge id; toggled per flip so an edge that flips on and
    /// back off reports no delta. Cleared through `delta_edges`.
    pub delta_state: Vec<u8>,
    /// Edges with a non-zero `delta_state` entry (may contain edges that
    /// toggled back to 0 — compaction skips them).
    pub delta_edges: Vec<EdgeId>,
    /// Batch-validation scratch copies of the membership flags.
    pub val_active: Vec<bool>,
    /// See `val_active`.
    pub val_present: Vec<bool>,
    /// Edges evaluated by the boundary merge in the current batch.
    pub evaluated: u64,
}

impl EngineScratch {
    /// Empty arenas for a universe with `n` nodes, `m` edges and
    /// `boundary` boundary edges.
    pub fn new(n: usize, m: usize, boundary: usize) -> Self {
        EngineScratch {
            touched: vec![false; n],
            touched_nodes: Vec::new(),
            rerank_list: Vec::new(),
            bselected: vec![false; boundary],
            bqueued: vec![false; boundary],
            bheap: BinaryHeap::new(),
            bseeds: Vec::new(),
            flips: Vec::new(),
            delta_state: vec![0; m],
            delta_edges: Vec::new(),
            val_active: Vec::with_capacity(n),
            val_present: Vec::with_capacity(m.max(1)),
            evaluated: 0,
        }
    }

    /// Marks node `i` touched (idempotent).
    #[inline]
    pub fn touch(&mut self, i: NodeId) {
        if !self.touched[i.index()] {
            self.touched[i.index()] = true;
            self.touched_nodes.push(i);
        }
    }
}
