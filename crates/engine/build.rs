//! Stamps the compiling rustc's version into `OWP_RUSTC_VERSION` so
//! forensic bundles carry compiler provenance.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    if !version.is_empty() {
        println!("cargo:rustc-env=OWP_RUSTC_VERSION={version}");
    }
    println!("cargo:rerun-if-changed=build.rs");
}
