//! The typed event vocabulary of the telemetry layer.
//!
//! One flat enum covers all three execution layers so a single recorder
//! can hold an interleaved trace of a whole run:
//!
//! * **transport** — what the simnet engines do with messages
//!   (send/deliver/drop/dead-letter, timer firings);
//! * **protocol** — per-node LID state transitions ([`NodeEvent`]),
//!   stamped with node and time by the engine when it drains a callback's
//!   context;
//! * **LIC** — centralized selection-loop decisions, where "time" is the
//!   selection step counter instead of simulated ticks.

use owp_graph::{EdgeId, NodeId};
use std::fmt::Write as _;

/// Identity of one in-flight message ("span"), unique within a run.
///
/// The engines assign span ids from a monotone per-run counter at *send*
/// time, so a child span's id is always greater than its causal parent's —
/// which is exactly why a live trace can never contain a causal cycle
/// (the empirical face of Lemma 5; see [`crate::causal`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Typed message classes, replacing the string labels the engines used to
/// aggregate on. The protocol kinds of Algorithm 1 get dedicated variants
/// so statistics index a flat array — no string hashing or tree lookup on
/// the send path; anything else carries its label in [`MessageKind::Other`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub enum MessageKind {
    /// "I propose we establish a connection" (Algorithm 1 `PROP`).
    Prop,
    /// "I will not connect to you" (Algorithm 1 `REJ`).
    Rej,
    /// Reliable-LID handshake confirmation (`ACK`).
    Ack,
    /// Any other protocol's message class, labelled for display.
    Other(&'static str),
}

impl MessageKind {
    /// Number of dedicated (array-indexable) kinds.
    pub const FIXED: usize = 3;

    /// The flat-array slot of a dedicated kind; `None` for [`MessageKind::Other`].
    #[inline]
    pub const fn fixed_slot(self) -> Option<usize> {
        match self {
            MessageKind::Prop => Some(0),
            MessageKind::Rej => Some(1),
            MessageKind::Ack => Some(2),
            MessageKind::Other(_) => None,
        }
    }

    /// The kind occupying a flat-array slot (inverse of [`MessageKind::fixed_slot`]).
    #[inline]
    pub const fn from_fixed_slot(slot: usize) -> Option<MessageKind> {
        match slot {
            0 => Some(MessageKind::Prop),
            1 => Some(MessageKind::Rej),
            2 => Some(MessageKind::Ack),
            _ => None,
        }
    }

    /// Human-readable label (what the old string keys were).
    #[inline]
    pub const fn label(self) -> &'static str {
        match self {
            MessageKind::Prop => "PROP",
            MessageKind::Rej => "REJ",
            MessageKind::Ack => "ACK",
            MessageKind::Other(s) => s,
        }
    }
}

impl std::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl MessageKind {
    /// Inverse of [`MessageKind::label`], for trace parsers. Unknown labels
    /// become [`MessageKind::Other`] backed by a process-wide interned
    /// string (the label set of any real trace is tiny, so the one-time
    /// leak per distinct label is bounded and lets parsed kinds compare
    /// equal to the engine-side constants).
    pub fn parse(label: &str) -> MessageKind {
        match label {
            "PROP" => MessageKind::Prop,
            "REJ" => MessageKind::Rej,
            "ACK" => MessageKind::Ack,
            other => MessageKind::Other(intern_label(other)),
        }
    }
}

/// Process-wide label interner: returns a `&'static str` equal to `s`,
/// leaking each distinct label at most once.
fn intern_label(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = INTERNED.get_or_init(|| Mutex::new(Vec::new()));
    let mut pool = pool.lock().expect("label interner poisoned");
    if let Some(hit) = pool.iter().find(|l| **l == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

/// A per-node protocol state transition, emitted from inside a protocol
/// callback via `Context::emit`. The engine stamps node id and time when it
/// drains the callback, turning each into a [`TelemetryEvent::Node`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NodeEvent {
    /// The node proposed a connection to `to` (Algorithm 1 lines 3 / 10).
    PropSent {
        /// Proposal receiver.
        to: NodeId,
    },
    /// The node rejected `to` (quota filled, better options won, or the
    /// termination broadcast of lines 15–16).
    RejSent {
        /// Rejection receiver.
        to: NodeId,
    },
    /// A mutual proposal locked the edge to `peer` on this side
    /// (Algorithm 1 lines 12–14).
    EdgeLocked {
        /// The partner at the other end of the locked edge.
        peer: NodeId,
    },
    /// The node's `U` set emptied: it has locally terminated (line 16).
    NodeTerminated,
    /// Reliable-LID only: a retransmission or handshake repair fired.
    Retransmit {
        /// Receiver of the retransmitted message.
        to: NodeId,
    },
}

/// One structured event. `time` is simulated ticks for asynchronous runs,
/// the round number for synchronous runs, and the selection-step counter
/// for the centralized LIC events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TelemetryEvent {
    /// A message was handed to the network (before loss).
    Sent {
        /// Send time.
        time: u64,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MessageKind,
    },
    /// A message was delivered to its destination's handler.
    Delivered {
        /// Delivery time.
        time: u64,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MessageKind,
    },
    /// A message was dropped by fault injection.
    Dropped {
        /// Time the drop was decided.
        time: u64,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MessageKind,
    },
    /// A message was discarded because its destination had crashed.
    DeadLettered {
        /// Time of the discard.
        time: u64,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MessageKind,
    },
    /// Causal identity of a send: the span id assigned to the message and
    /// the span of the delivery (if any) whose handler emitted it. Recorded
    /// alongside [`TelemetryEvent::Sent`] so legacy consumers that count
    /// `sent` tags keep working; `parent: None` marks a root span (a send
    /// from `on_start`).
    SpanSent {
        /// Send time.
        time: u64,
        /// The span id of this message.
        span: SpanId,
        /// Span of the causally preceding delivery, `None` for roots.
        parent: Option<SpanId>,
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Message class.
        kind: MessageKind,
    },
    /// The span's message reached its destination handler.
    SpanDelivered {
        /// Delivery time.
        time: u64,
        /// The delivered span.
        span: SpanId,
    },
    /// The span's message was dropped by fault injection.
    SpanDropped {
        /// Time the drop was decided.
        time: u64,
        /// The dropped span.
        span: SpanId,
    },
    /// The span's message was discarded at a crashed destination.
    SpanDeadLettered {
        /// Time of the discard.
        time: u64,
        /// The discarded span.
        span: SpanId,
    },
    /// A crashed node came back up (crash-restart fault plans): the engine
    /// is about to run the node's `on_restart` recovery hook. Timers armed
    /// before the crash are dead; sends from the recovery callback are new
    /// root spans.
    Restarted {
        /// Time the node came back up.
        time: u64,
        /// The restarted node.
        node: NodeId,
    },
    /// A local timer fired.
    TimerFired {
        /// Firing time.
        time: u64,
        /// Owner of the timer.
        node: NodeId,
        /// The tag the timer was armed with.
        tag: u64,
    },
    /// A per-node protocol state transition (see [`NodeEvent`]).
    Node {
        /// Time of the callback that emitted the transition.
        time: u64,
        /// The node the transition happened on.
        node: NodeId,
        /// The transition itself.
        event: NodeEvent,
    },
    /// LIC selected a locally heaviest edge (Algorithm 2 lines 5–7).
    LicEdgeSelected {
        /// Selection step (0-based position in the selection order).
        step: u32,
        /// The selected edge.
        edge: EdgeId,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A node's counter hit zero and its remaining pool edges were
    /// discarded (Algorithm 2 lines 8–9).
    LicNodeSaturated {
        /// Selection step at which saturation happened.
        step: u32,
        /// The saturated node.
        node: NodeId,
        /// Pool edges discarded by the saturation sweep.
        discarded: u32,
    },
    /// A node's rank cursor skipped past removed edges to find its current
    /// top pool edge.
    LicCursorAdvanced {
        /// The node whose cursor moved.
        node: NodeId,
        /// Removed entries skipped by this advance.
        skipped: u32,
    },
    /// The dynamic engine finished applying an event batch (owp-engine).
    /// "Time" for all `Engine*` events is the epoch the batch produced.
    EngineBatchApplied {
        /// Epoch after the batch (monotone, one per batch).
        epoch: u64,
        /// Events in the batch.
        events: u32,
        /// Edges evaluated by the bounded repair (the dirty region's size).
        evaluated: u32,
        /// Edges the repair added to the matching.
        added: u32,
        /// Edges the repair removed from the matching.
        removed: u32,
    },
    /// The repair selected an edge into the maintained matching.
    EngineEdgeAdded {
        /// Epoch of the batch making the change.
        epoch: u64,
        /// The edge that entered the matching.
        edge: EdgeId,
    },
    /// The repair evicted an edge from the maintained matching.
    EngineEdgeRemoved {
        /// Epoch of the batch making the change.
        epoch: u64,
        /// The edge that left the matching.
        edge: EdgeId,
    },
    /// A weight-changing event re-ranked part of the edge order
    /// incrementally (`EdgeOrder::update_keys`).
    EngineReranked {
        /// Epoch of the batch making the change.
        epoch: u64,
        /// Edges whose rank keys were recomputed.
        edges: u32,
    },
    /// A `matchd` wire frame crossed the codec boundary inbound: the
    /// daemon decoded one length-prefixed frame off a client connection.
    /// "Time" for the wire events is microseconds since the daemon
    /// started (a steady clock, not wall time).
    WireFrameReceived {
        /// Microseconds since daemon start.
        time: u64,
        /// Daemon-assigned connection id (monotone per accept).
        conn: u64,
        /// Daemon-wide request id (monotone per decoded frame) — the span
        /// key threading one request from accept through queue, engine
        /// apply, and ack.
        req: u64,
        /// The frame's message class (`SUBMIT`, `QUERY`, ...).
        kind: MessageKind,
        /// Decoded payload size in bytes (excludes the 8-byte header).
        bytes: u32,
    },
    /// A `matchd` wire frame crossed the codec boundary outbound: the
    /// daemon encoded one response frame onto a client connection.
    WireFrameSent {
        /// Microseconds since daemon start.
        time: u64,
        /// Daemon-assigned connection id (monotone per accept).
        conn: u64,
        /// Request id of the inbound frame this responds to (pairs the
        /// send with its [`TelemetryEvent::WireFrameReceived`] span).
        req: u64,
        /// The frame's message class (`ACK`, `BUSY`, ...).
        kind: MessageKind,
        /// Encoded payload size in bytes (excludes the 8-byte header).
        bytes: u32,
    },
}

impl TelemetryEvent {
    /// The event's time coordinate (ticks / rounds for the simulated
    /// events, the selection step for LIC events).
    pub fn time(&self) -> u64 {
        match *self {
            TelemetryEvent::Sent { time, .. }
            | TelemetryEvent::Delivered { time, .. }
            | TelemetryEvent::Dropped { time, .. }
            | TelemetryEvent::DeadLettered { time, .. }
            | TelemetryEvent::SpanSent { time, .. }
            | TelemetryEvent::SpanDelivered { time, .. }
            | TelemetryEvent::SpanDropped { time, .. }
            | TelemetryEvent::SpanDeadLettered { time, .. }
            | TelemetryEvent::Restarted { time, .. }
            | TelemetryEvent::TimerFired { time, .. }
            | TelemetryEvent::Node { time, .. }
            | TelemetryEvent::WireFrameReceived { time, .. }
            | TelemetryEvent::WireFrameSent { time, .. } => time,
            TelemetryEvent::LicEdgeSelected { step, .. }
            | TelemetryEvent::LicNodeSaturated { step, .. } => step as u64,
            TelemetryEvent::LicCursorAdvanced { .. } => 0,
            TelemetryEvent::EngineBatchApplied { epoch, .. }
            | TelemetryEvent::EngineEdgeAdded { epoch, .. }
            | TelemetryEvent::EngineEdgeRemoved { epoch, .. }
            | TelemetryEvent::EngineReranked { epoch, .. } => epoch,
        }
    }

    /// Short stable tag naming the variant — the `"ev"` field of the JSONL
    /// schema and the grouping key of summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            TelemetryEvent::Sent { .. } => "sent",
            TelemetryEvent::Delivered { .. } => "delivered",
            TelemetryEvent::Dropped { .. } => "dropped",
            TelemetryEvent::DeadLettered { .. } => "dead_lettered",
            TelemetryEvent::SpanSent { .. } => "span_sent",
            TelemetryEvent::SpanDelivered { .. } => "span_delivered",
            TelemetryEvent::SpanDropped { .. } => "span_dropped",
            TelemetryEvent::SpanDeadLettered { .. } => "span_dead_lettered",
            TelemetryEvent::Restarted { .. } => "restarted",
            TelemetryEvent::TimerFired { .. } => "timer_fired",
            TelemetryEvent::Node { event, .. } => match event {
                NodeEvent::PropSent { .. } => "prop_sent",
                NodeEvent::RejSent { .. } => "rej_sent",
                NodeEvent::EdgeLocked { .. } => "edge_locked",
                NodeEvent::NodeTerminated => "node_terminated",
                NodeEvent::Retransmit { .. } => "retransmit",
            },
            TelemetryEvent::LicEdgeSelected { .. } => "lic_edge_selected",
            TelemetryEvent::LicNodeSaturated { .. } => "lic_node_saturated",
            TelemetryEvent::LicCursorAdvanced { .. } => "lic_cursor_advanced",
            TelemetryEvent::EngineBatchApplied { .. } => "engine_batch_applied",
            TelemetryEvent::EngineEdgeAdded { .. } => "engine_edge_added",
            TelemetryEvent::EngineEdgeRemoved { .. } => "engine_edge_removed",
            TelemetryEvent::EngineReranked { .. } => "engine_reranked",
            TelemetryEvent::WireFrameReceived { .. } => "wire_received",
            TelemetryEvent::WireFrameSent { .. } => "wire_sent",
        }
    }

    /// One JSONL line (no trailing newline): `{"ev":...,"time":...,...}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64);
        let _ = write!(s, "{{\"ev\":\"{}\"", self.tag());
        match *self {
            TelemetryEvent::Sent { time, from, to, kind }
            | TelemetryEvent::Delivered { time, from, to, kind }
            | TelemetryEvent::Dropped { time, from, to, kind }
            | TelemetryEvent::DeadLettered { time, from, to, kind } => {
                let _ = write!(
                    s,
                    ",\"time\":{time},\"from\":{},\"to\":{},\"kind\":\"{}\"",
                    from.0,
                    to.0,
                    kind.label()
                );
            }
            TelemetryEvent::SpanSent { time, span, parent, from, to, kind } => {
                let _ = write!(s, ",\"time\":{time},\"span\":{}", span.0);
                match parent {
                    Some(p) => {
                        let _ = write!(s, ",\"parent\":{}", p.0);
                    }
                    None => s.push_str(",\"parent\":null"),
                }
                let _ = write!(
                    s,
                    ",\"from\":{},\"to\":{},\"kind\":\"{}\"",
                    from.0,
                    to.0,
                    kind.label()
                );
            }
            TelemetryEvent::SpanDelivered { time, span }
            | TelemetryEvent::SpanDropped { time, span }
            | TelemetryEvent::SpanDeadLettered { time, span } => {
                let _ = write!(s, ",\"time\":{time},\"span\":{}", span.0);
            }
            TelemetryEvent::Restarted { time, node } => {
                let _ = write!(s, ",\"time\":{time},\"node\":{}", node.0);
            }
            TelemetryEvent::TimerFired { time, node, tag } => {
                let _ = write!(s, ",\"time\":{time},\"node\":{},\"tag\":{tag}", node.0);
            }
            TelemetryEvent::Node { time, node, event } => {
                let _ = write!(s, ",\"time\":{time},\"node\":{}", node.0);
                match event {
                    NodeEvent::PropSent { to }
                    | NodeEvent::RejSent { to }
                    | NodeEvent::Retransmit { to } => {
                        let _ = write!(s, ",\"to\":{}", to.0);
                    }
                    NodeEvent::EdgeLocked { peer } => {
                        let _ = write!(s, ",\"peer\":{}", peer.0);
                    }
                    NodeEvent::NodeTerminated => {}
                }
            }
            TelemetryEvent::LicEdgeSelected { step, edge, a, b } => {
                let _ = write!(
                    s,
                    ",\"step\":{step},\"edge\":{},\"a\":{},\"b\":{}",
                    edge.0, a.0, b.0
                );
            }
            TelemetryEvent::LicNodeSaturated { step, node, discarded } => {
                let _ = write!(
                    s,
                    ",\"step\":{step},\"node\":{},\"discarded\":{discarded}",
                    node.0
                );
            }
            TelemetryEvent::LicCursorAdvanced { node, skipped } => {
                let _ = write!(s, ",\"node\":{},\"skipped\":{skipped}", node.0);
            }
            TelemetryEvent::EngineBatchApplied { epoch, events, evaluated, added, removed } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"events\":{events},\"evaluated\":{evaluated},\"added\":{added},\"removed\":{removed}"
                );
            }
            TelemetryEvent::EngineEdgeAdded { epoch, edge }
            | TelemetryEvent::EngineEdgeRemoved { epoch, edge } => {
                let _ = write!(s, ",\"epoch\":{epoch},\"edge\":{}", edge.0);
            }
            TelemetryEvent::EngineReranked { epoch, edges } => {
                let _ = write!(s, ",\"epoch\":{epoch},\"edges\":{edges}");
            }
            TelemetryEvent::WireFrameReceived { time, conn, req, kind, bytes }
            | TelemetryEvent::WireFrameSent { time, conn, req, kind, bytes } => {
                let _ = write!(
                    s,
                    ",\"time\":{time},\"conn\":{conn},\"req\":{req},\"kind\":\"{}\",\"bytes\":{bytes}",
                    kind.label()
                );
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_slots_round_trip() {
        for slot in 0..MessageKind::FIXED {
            let k = MessageKind::from_fixed_slot(slot).expect("slot populated");
            assert_eq!(k.fixed_slot(), Some(slot));
        }
        assert_eq!(MessageKind::from_fixed_slot(MessageKind::FIXED), None);
        assert_eq!(MessageKind::Other("X").fixed_slot(), None);
        assert_eq!(MessageKind::Prop.label(), "PROP");
        assert_eq!(MessageKind::Other("TOKEN").label(), "TOKEN");
        assert_eq!(format!("{}", MessageKind::Rej), "REJ");
    }

    #[test]
    fn time_coordinate_per_layer() {
        let sent = TelemetryEvent::Sent {
            time: 7,
            from: NodeId(0),
            to: NodeId(1),
            kind: MessageKind::Prop,
        };
        assert_eq!(sent.time(), 7);
        let lic = TelemetryEvent::LicEdgeSelected {
            step: 3,
            edge: EdgeId(9),
            a: NodeId(1),
            b: NodeId(2),
        };
        assert_eq!(lic.time(), 3);
        assert_eq!(lic.tag(), "lic_edge_selected");
    }

    #[test]
    fn json_lines_are_well_formed() {
        let events = [
            TelemetryEvent::Delivered {
                time: 2,
                from: NodeId(4),
                to: NodeId(5),
                kind: MessageKind::Rej,
            },
            TelemetryEvent::Node {
                time: 2,
                node: NodeId(5),
                event: NodeEvent::EdgeLocked { peer: NodeId(4) },
            },
            TelemetryEvent::Node {
                time: 3,
                node: NodeId(5),
                event: NodeEvent::NodeTerminated,
            },
            TelemetryEvent::LicNodeSaturated {
                step: 1,
                node: NodeId(0),
                discarded: 4,
            },
        ];
        for ev in events {
            let j = ev.to_json();
            assert!(j.starts_with("{\"ev\":\""), "{j}");
            assert!(j.ends_with('}'), "{j}");
            assert_eq!(j.matches('{').count(), j.matches('}').count());
        }
        assert_eq!(
            events[1].to_json(),
            "{\"ev\":\"edge_locked\",\"time\":2,\"node\":5,\"peer\":4}"
        );
    }

    #[test]
    fn span_events_time_tag_and_json() {
        let root = TelemetryEvent::SpanSent {
            time: 0,
            span: SpanId(0),
            parent: None,
            from: NodeId(3),
            to: NodeId(7),
            kind: MessageKind::Prop,
        };
        assert_eq!(root.time(), 0);
        assert_eq!(root.tag(), "span_sent");
        assert_eq!(
            root.to_json(),
            "{\"ev\":\"span_sent\",\"time\":0,\"span\":0,\"parent\":null,\"from\":3,\"to\":7,\"kind\":\"PROP\"}"
        );
        let child = TelemetryEvent::SpanSent {
            time: 2,
            span: SpanId(5),
            parent: Some(SpanId(0)),
            from: NodeId(7),
            to: NodeId(3),
            kind: MessageKind::Rej,
        };
        assert_eq!(
            child.to_json(),
            "{\"ev\":\"span_sent\",\"time\":2,\"span\":5,\"parent\":0,\"from\":7,\"to\":3,\"kind\":\"REJ\"}"
        );
        let delivered = TelemetryEvent::SpanDelivered { time: 3, span: SpanId(5) };
        assert_eq!(delivered.tag(), "span_delivered");
        assert_eq!(delivered.to_json(), "{\"ev\":\"span_delivered\",\"time\":3,\"span\":5}");
        let dropped = TelemetryEvent::SpanDropped { time: 1, span: SpanId(2) };
        assert_eq!(dropped.to_json(), "{\"ev\":\"span_dropped\",\"time\":1,\"span\":2}");
        let dead = TelemetryEvent::SpanDeadLettered { time: 4, span: SpanId(6) };
        assert_eq!(dead.tag(), "span_dead_lettered");
        assert_eq!(dead.to_json(), "{\"ev\":\"span_dead_lettered\",\"time\":4,\"span\":6}");
        assert_eq!(format!("{}", SpanId(9)), "s9");
    }

    #[test]
    fn engine_events_time_tag_and_json() {
        let batch = TelemetryEvent::EngineBatchApplied {
            epoch: 12,
            events: 3,
            evaluated: 40,
            added: 2,
            removed: 1,
        };
        assert_eq!(batch.time(), 12);
        assert_eq!(batch.tag(), "engine_batch_applied");
        assert_eq!(
            batch.to_json(),
            "{\"ev\":\"engine_batch_applied\",\"epoch\":12,\"events\":3,\"evaluated\":40,\"added\":2,\"removed\":1}"
        );
        let added = TelemetryEvent::EngineEdgeAdded { epoch: 12, edge: EdgeId(7) };
        assert_eq!(added.time(), 12);
        assert_eq!(added.to_json(), "{\"ev\":\"engine_edge_added\",\"epoch\":12,\"edge\":7}");
        let removed = TelemetryEvent::EngineEdgeRemoved { epoch: 13, edge: EdgeId(8) };
        assert_eq!(removed.tag(), "engine_edge_removed");
        assert_eq!(removed.to_json(), "{\"ev\":\"engine_edge_removed\",\"epoch\":13,\"edge\":8}");
        let rer = TelemetryEvent::EngineReranked { epoch: 13, edges: 5 };
        assert_eq!(rer.tag(), "engine_reranked");
        assert_eq!(rer.to_json(), "{\"ev\":\"engine_reranked\",\"epoch\":13,\"edges\":5}");
    }
}
