//! Event sinks: the [`Recorder`] trait and its two implementations.
//!
//! Hot loops are instrumented in one of two dispatch styles, both free of
//! `dyn`:
//!
//! * **generic** — `fn lic_traced<R: Recorder>(..., rec: &mut R)`: with
//!   [`NullRecorder`] every `record` call monomorphizes to nothing, so the
//!   untraced entry point compiles to the identical machine code it had
//!   before instrumentation;
//! * **enum-dispatched** — the engines own an [`EventLog`] whose disabled
//!   state is a single predictable branch per event and never allocates
//!   (the event vector is only created on first enabled push).

use crate::event::{MessageKind, NodeEvent, SpanId, TelemetryEvent};
use owp_graph::{EdgeId, NodeId};

/// A sink for [`TelemetryEvent`]s.
///
/// Call sites that would do extra work *building* an event (counting
/// skipped entries, cloning sets) should guard on [`Recorder::is_enabled`]
/// first; `record` itself must already be free when disabled.
pub trait Recorder {
    /// `true` iff recorded events are kept. Constant-foldable for
    /// [`NullRecorder`].
    fn is_enabled(&self) -> bool;

    /// Records one event. Must be a no-op when disabled.
    fn record(&mut self, ev: TelemetryEvent);
}

/// Forwarding impl so instrumented functions can be handed `&mut log`
/// without giving up the caller's ownership.
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline(always)]
    fn record(&mut self, ev: TelemetryEvent) {
        (**self).record(ev)
    }
}

/// The zero-cost disabled recorder: generic call sites instantiated with
/// `NullRecorder` compile to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: TelemetryEvent) {}
}

/// An append-only in-memory event log with a runtime on/off switch —
/// the enum-dispatched recorder the simulation engines own (they cannot be
/// generic over tracing without bifurcating every caller).
///
/// Disabled is the default and costs one branch per offered event; the
/// backing vector is not even allocated until the first enabled push, so a
/// disabled log performs **zero** heap allocation no matter how many
/// events are offered (asserted by the capacity test below).
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<TelemetryEvent>,
}

impl EventLog {
    /// Creates an enabled log.
    pub fn enabled() -> Self {
        EventLog {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Creates a disabled log (records nothing, allocates nothing).
    pub fn disabled() -> Self {
        EventLog::default()
    }

    /// The recorded events, in occurrence order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Capacity of the backing vector — 0 for a log that never recorded,
    /// which is how the zero-allocation guarantee is asserted in tests.
    pub fn events_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Delivered-message events only.
    pub fn deliveries(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Delivered { .. }))
    }

    /// Events matching a tag (see [`TelemetryEvent::tag`]).
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TelemetryEvent> {
        self.events.iter().filter(move |e| e.tag() == tag)
    }

    /// Serializes the whole log as JSONL (one event object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL document written by [`EventLog::to_jsonl`] back into
    /// an (enabled) log — the offline half of `owp-inspect causal`, which
    /// reconstructs happens-before DAGs from trace files on disk.
    ///
    /// The full event vocabulary round-trips: `parse_jsonl(log.to_jsonl())`
    /// reproduces `log.events()` exactly. Blank lines are skipped; any
    /// malformed line is an `Err` naming its line number.
    pub fn parse_jsonl(doc: &str) -> Result<EventLog, String> {
        let mut log = EventLog::enabled();
        for (idx, line) in doc.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ev = parse_event_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            log.events.push(ev);
        }
        Ok(log)
    }
}

/// One raw `"key":value` pair of a flat event object; the value keeps its
/// JSON spelling (`7`, `"PROP"`, `null`).
fn split_fields(line: &str) -> Result<Vec<(&str, &str)>, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not an object")?;
    let mut fields = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let after_quote = rest.strip_prefix('"').ok_or("expected key quote")?;
        let key_end = after_quote.find('"').ok_or("unterminated key")?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..]
            .strip_prefix(':')
            .ok_or("expected ':' after key")?;
        // Values are numbers, null, or label strings (which never contain
        // escapes), so the value ends at the first comma outside quotes.
        let mut in_str = false;
        let mut val_end = after_key.len();
        for (i, c) in after_key.char_indices() {
            match c {
                '"' => in_str = !in_str,
                ',' if !in_str => {
                    val_end = i;
                    break;
                }
                _ => {}
            }
        }
        let value = &after_key[..val_end];
        if value.is_empty() {
            return Err(format!("empty value for key {key:?}"));
        }
        fields.push((key, value));
        rest = &after_key[val_end..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Ok(fields)
}

fn lookup<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn num(fields: &[(&str, &str)], key: &str) -> Result<u64, String> {
    let raw = lookup(fields, key)?;
    raw.parse::<u64>().map_err(|_| format!("field {key:?} is not a u64: {raw:?}"))
}

fn num32(fields: &[(&str, &str)], key: &str) -> Result<u32, String> {
    let raw = lookup(fields, key)?;
    raw.parse::<u32>().map_err(|_| format!("field {key:?} is not a u32: {raw:?}"))
}

fn node(fields: &[(&str, &str)], key: &str) -> Result<NodeId, String> {
    Ok(NodeId(num32(fields, key)?))
}

fn string<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    let raw = lookup(fields, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("field {key:?} is not a string: {raw:?}"))
}

fn parse_event_line(line: &str) -> Result<TelemetryEvent, String> {
    let fields = split_fields(line)?;
    let tag = string(&fields, "ev")?;
    let kind = |f: &[(&str, &str)]| -> Result<MessageKind, String> {
        Ok(MessageKind::parse(string(f, "kind")?))
    };
    let ev = match tag {
        "sent" => TelemetryEvent::Sent {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "delivered" => TelemetryEvent::Delivered {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "dropped" => TelemetryEvent::Dropped {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "dead_lettered" => TelemetryEvent::DeadLettered {
            time: num(&fields, "time")?,
            from: node(&fields, "from")?,
            to: node(&fields, "to")?,
            kind: kind(&fields)?,
        },
        "span_sent" => {
            let parent = match lookup(&fields, "parent")? {
                "null" => None,
                raw => Some(SpanId(raw.parse::<u64>().map_err(|_| {
                    format!("field \"parent\" is not a u64 or null: {raw:?}")
                })?)),
            };
            TelemetryEvent::SpanSent {
                time: num(&fields, "time")?,
                span: SpanId(num(&fields, "span")?),
                parent,
                from: node(&fields, "from")?,
                to: node(&fields, "to")?,
                kind: kind(&fields)?,
            }
        }
        "span_delivered" => TelemetryEvent::SpanDelivered {
            time: num(&fields, "time")?,
            span: SpanId(num(&fields, "span")?),
        },
        "span_dropped" => TelemetryEvent::SpanDropped {
            time: num(&fields, "time")?,
            span: SpanId(num(&fields, "span")?),
        },
        "span_dead_lettered" => TelemetryEvent::SpanDeadLettered {
            time: num(&fields, "time")?,
            span: SpanId(num(&fields, "span")?),
        },
        "timer_fired" => TelemetryEvent::TimerFired {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            tag: num(&fields, "tag")?,
        },
        "prop_sent" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::PropSent { to: node(&fields, "to")? },
        },
        "rej_sent" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::RejSent { to: node(&fields, "to")? },
        },
        "retransmit" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::Retransmit { to: node(&fields, "to")? },
        },
        "edge_locked" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::EdgeLocked { peer: node(&fields, "peer")? },
        },
        "node_terminated" => TelemetryEvent::Node {
            time: num(&fields, "time")?,
            node: node(&fields, "node")?,
            event: NodeEvent::NodeTerminated,
        },
        "lic_edge_selected" => TelemetryEvent::LicEdgeSelected {
            step: num32(&fields, "step")?,
            edge: EdgeId(num32(&fields, "edge")?),
            a: node(&fields, "a")?,
            b: node(&fields, "b")?,
        },
        "lic_node_saturated" => TelemetryEvent::LicNodeSaturated {
            step: num32(&fields, "step")?,
            node: node(&fields, "node")?,
            discarded: num32(&fields, "discarded")?,
        },
        "lic_cursor_advanced" => TelemetryEvent::LicCursorAdvanced {
            node: node(&fields, "node")?,
            skipped: num32(&fields, "skipped")?,
        },
        "engine_batch_applied" => TelemetryEvent::EngineBatchApplied {
            epoch: num(&fields, "epoch")?,
            events: num32(&fields, "events")?,
            evaluated: num32(&fields, "evaluated")?,
            added: num32(&fields, "added")?,
            removed: num32(&fields, "removed")?,
        },
        "engine_edge_added" => TelemetryEvent::EngineEdgeAdded {
            epoch: num(&fields, "epoch")?,
            edge: EdgeId(num32(&fields, "edge")?),
        },
        "engine_edge_removed" => TelemetryEvent::EngineEdgeRemoved {
            epoch: num(&fields, "epoch")?,
            edge: EdgeId(num32(&fields, "edge")?),
        },
        "engine_reranked" => TelemetryEvent::EngineReranked {
            epoch: num(&fields, "epoch")?,
            edges: num32(&fields, "edges")?,
        },
        other => return Err(format!("unknown event tag {other:?}")),
    };
    Ok(ev)
}

impl Recorder for EventLog {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn record(&mut self, ev: TelemetryEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MessageKind, NodeEvent};
    use owp_graph::NodeId;

    fn sample(i: u32) -> TelemetryEvent {
        TelemetryEvent::Sent {
            time: i as u64,
            from: NodeId(i),
            to: NodeId(i + 1),
            kind: MessageKind::Prop,
        }
    }

    #[test]
    fn disabled_log_records_nothing_and_never_allocates() {
        let mut log = EventLog::disabled();
        assert!(!log.is_enabled());
        for i in 0..10_000 {
            log.record(sample(i));
        }
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        // The zero-allocation guarantee: the backing vector was never
        // created, so its capacity is still 0 after 10k offered events.
        assert_eq!(log.events_capacity(), 0);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.is_enabled());
        r.record(sample(1)); // no-op, nothing to observe — must not panic
    }

    #[test]
    fn enabled_log_keeps_order_and_filters() {
        let mut log = EventLog::enabled();
        assert!(log.is_enabled());
        log.record(sample(0));
        log.record(TelemetryEvent::Delivered {
            time: 2,
            from: NodeId(0),
            to: NodeId(1),
            kind: MessageKind::Prop,
        });
        log.record(TelemetryEvent::Node {
            time: 2,
            node: NodeId(1),
            event: NodeEvent::EdgeLocked { peer: NodeId(0) },
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.events()[0].time(), 0);
        assert_eq!(log.deliveries().count(), 1);
        assert_eq!(log.with_tag("edge_locked").count(), 1);
        assert_eq!(log.to_jsonl().lines().count(), 3);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        use crate::event::SpanId;
        use owp_graph::EdgeId;
        let mut log = EventLog::enabled();
        for ev in [
            TelemetryEvent::Sent { time: 0, from: NodeId(1), to: NodeId(2), kind: MessageKind::Prop },
            TelemetryEvent::SpanSent {
                time: 0,
                span: SpanId(0),
                parent: None,
                from: NodeId(1),
                to: NodeId(2),
                kind: MessageKind::Prop,
            },
            TelemetryEvent::Delivered { time: 1, from: NodeId(1), to: NodeId(2), kind: MessageKind::Prop },
            TelemetryEvent::SpanDelivered { time: 1, span: SpanId(0) },
            TelemetryEvent::Sent { time: 1, from: NodeId(2), to: NodeId(1), kind: MessageKind::Rej },
            TelemetryEvent::SpanSent {
                time: 1,
                span: SpanId(1),
                parent: Some(SpanId(0)),
                from: NodeId(2),
                to: NodeId(1),
                kind: MessageKind::Other("TOKEN"),
            },
            TelemetryEvent::SpanDropped { time: 2, span: SpanId(1) },
            TelemetryEvent::Dropped { time: 2, from: NodeId(2), to: NodeId(1), kind: MessageKind::Rej },
            TelemetryEvent::DeadLettered { time: 3, from: NodeId(0), to: NodeId(4), kind: MessageKind::Ack },
            TelemetryEvent::SpanDeadLettered { time: 3, span: SpanId(2) },
            TelemetryEvent::TimerFired { time: 4, node: NodeId(3), tag: 11 },
            TelemetryEvent::Node { time: 4, node: NodeId(3), event: NodeEvent::PropSent { to: NodeId(5) } },
            TelemetryEvent::Node { time: 4, node: NodeId(3), event: NodeEvent::RejSent { to: NodeId(6) } },
            TelemetryEvent::Node { time: 4, node: NodeId(3), event: NodeEvent::EdgeLocked { peer: NodeId(5) } },
            TelemetryEvent::Node { time: 5, node: NodeId(3), event: NodeEvent::NodeTerminated },
            TelemetryEvent::Node { time: 5, node: NodeId(3), event: NodeEvent::Retransmit { to: NodeId(5) } },
            TelemetryEvent::LicEdgeSelected { step: 0, edge: EdgeId(7), a: NodeId(1), b: NodeId(2) },
            TelemetryEvent::LicNodeSaturated { step: 1, node: NodeId(2), discarded: 3 },
            TelemetryEvent::LicCursorAdvanced { node: NodeId(2), skipped: 2 },
            TelemetryEvent::EngineBatchApplied { epoch: 9, events: 2, evaluated: 10, added: 1, removed: 0 },
            TelemetryEvent::EngineEdgeAdded { epoch: 9, edge: EdgeId(4) },
            TelemetryEvent::EngineEdgeRemoved { epoch: 10, edge: EdgeId(4) },
            TelemetryEvent::EngineReranked { epoch: 10, edges: 6 },
        ] {
            log.record(ev);
        }
        let parsed = EventLog::parse_jsonl(&log.to_jsonl()).expect("round trip parses");
        assert_eq!(parsed.events(), log.events());
        // Blank lines are tolerated; garbage is a structured error.
        assert!(EventLog::parse_jsonl("\n\n").expect("blank ok").is_empty());
        let err = EventLog::parse_jsonl("{\"ev\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut log = EventLog::enabled();
        fn takes_generic<R: Recorder>(rec: &mut R) {
            rec.record(TelemetryEvent::TimerFired {
                time: 1,
                node: NodeId(0),
                tag: 9,
            });
        }
        takes_generic(&mut &mut log);
        assert_eq!(log.len(), 1);
    }
}
